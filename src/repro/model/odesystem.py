"""Compiled ODE systems derived from reaction-based models.

Under mass-action kinetics the dynamics of an RBM are

    dX/dt = (B - A)^T [ K o X^A ]

where A, B are the stoichiometric matrices, K the kinetic constants, o
the Hadamard product and X^A the vector of reaction monomials. This
module compiles an RBM into index structures that evaluate the flux
vector, the right-hand side and the analytic Jacobian in vectorized form
over a *batch* of simulations — the coarse-grained axis of the
GPU-style substrate — and over species/reactions — the fine-grained
axis.

Three evaluation policies mirror the parallelization granularities of
the GPU simulator family (see DESIGN.md):

* ``"hybrid"``  - vectorized over both the batch and the reactions
  (fine + coarse grained, the paper's contribution);
* ``"coarse"``  - vectorized over the batch only, with a sequential
  sweep over reactions (cupSODA-style coarse-only analog);
* ``"fine"``    - vectorized within each simulation, with a sequential
  sweep over the batch (LASSIE-style fine-only analog).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import KineticsError, ModelError
from .kinetics import Hill, MassAction, MichaelisMenten
from .ratelaws import CustomLaw, Expression
from .rbm import ReactionBasedModel

POLICIES = ("hybrid", "coarse", "fine")

_PROBE_WIDTHS = (2, 3, 5, 9, 17)


def _gemm_rows_are_width_stable(net: np.ndarray) -> bool:
    """Check that each row of ``fluxes @ net`` is bit-independent of
    the number of rows in ``fluxes``.

    Integrators gather the active subset of a batch before every RHS
    call and the memory governor re-runs arbitrary sub-batches, so row
    results must not depend on array width.  Whether BLAS satisfies
    this depends on the library's row-blocking microkernels (it holds
    for small inner dimensions, breaks somewhere around 8 on common
    builds) — so measure the installed library against the model's own
    net matrix instead of assuming a threshold.
    """
    rng = np.random.default_rng(0x5EED)
    probe = rng.standard_normal((32, net.shape[0]))
    reference = probe @ net
    padded_single = np.concatenate([probe[:1], probe[:1]])
    if not np.array_equal(reference[:1], (padded_single @ net)[:1]):
        return False
    return all(np.array_equal(reference[:w], probe[:w] @ net)
               for w in _PROBE_WIDTHS)


@dataclass(frozen=True)
class _GenericMonomial:
    """A mass-action reaction of order > 2 (generic slow path)."""

    reaction: int
    species: np.ndarray   # distinct reactant indices
    powers: np.ndarray    # matching exponents (>= 1)


class ODESystem:
    """Vectorized evaluator of an RBM's flux, RHS and Jacobian.

    Build instances with :meth:`from_model`. All evaluators take the
    state with a leading batch axis: ``X`` of shape (B, N) and rate
    constants ``K`` of shape (B, M) or (M,) (broadcast over the batch).
    """

    def __init__(self, model: ReactionBasedModel) -> None:
        self.model = model
        matrices = model.matrices
        self.n_species = model.n_species
        self.n_reactions = model.n_reactions
        self._net = matrices.net.astype(np.float64)
        self._net_csc_t = matrices.net_csr.T.tocsr()  # (N, M) sparse
        # Small stoichiometries go through one BLAS matmul; very large
        # sparse ones through the CSR product.
        self._dense_stoichiometry = (
            self.n_species * self.n_reactions <= 4_000_000)
        # Memory-governed launch splits are only bit-identical if each
        # row's RHS is independent of how many rows share the array.
        # BLAS gemm blocks over rows once the inner dimension exceeds
        # its microkernel width, so probe the actual library with the
        # actual net matrix and fall back to the (row-deterministic)
        # CSR product when the dense path fails the probe.
        self._row_stable_gemm = (self._dense_stoichiometry
                                 and _gemm_rows_are_width_stable(self._net))
        self._compile()

    # ------------------------------------------------------------------
    # compilation

    def _compile(self) -> None:
        n = self.n_species
        one = n  # index of the synthetic "1.0" column in the extended state
        idx1 = np.full(self.n_reactions, one, dtype=np.intp)
        idx2 = np.full(self.n_reactions, one, dtype=np.intp)
        is_fast_ma = np.zeros(self.n_reactions, dtype=bool)
        generic: list[_GenericMonomial] = []
        mm_rows: list[tuple[int, int, float]] = []        # (reaction, substrate, km)
        hill_rows: list[tuple[int, int, float, float]] = []  # (+ n)
        custom_rows: list[tuple[int, CustomLaw, dict[str, Expression],
                                dict[str, int]]] = []

        species_index = self.model.species.index_of
        for i, reaction in enumerate(self.model.reactions):
            law = reaction.law
            if isinstance(law, CustomLaw):
                binding = {}
                for name in law.species_names():
                    if name not in self.model.species:
                        raise KineticsError(
                            f"custom rate law of reaction "
                            f"{reaction.name or i} references unknown "
                            f"species {name!r}")
                    binding[name] = species_index(name)
                custom_rows.append((i, law, law.gradient(), binding))
                continue
            if isinstance(law, MichaelisMenten):
                (substrate_name,) = reaction.reactants
                mm_rows.append((i, species_index(substrate_name), law.km))
                continue
            if isinstance(law, Hill):
                (substrate_name,) = reaction.reactants
                hill_rows.append((i, species_index(substrate_name), law.km, law.n))
                continue
            if not isinstance(law, MassAction):  # pragma: no cover - guard
                raise ModelError(f"unsupported kinetic law {law!r}")
            entries = sorted(
                (species_index(name), coefficient)
                for name, coefficient in reaction.reactants.items())
            order = sum(c for _, c in entries)
            if order == 0:
                is_fast_ma[i] = True
            elif order == 1:
                idx1[i] = entries[0][0]
                is_fast_ma[i] = True
            elif order == 2:
                if len(entries) == 1:       # 2 A -> ...
                    idx1[i] = idx2[i] = entries[0][0]
                else:                        # A + B -> ...
                    idx1[i], idx2[i] = entries[0][0], entries[1][0]
                is_fast_ma[i] = True
            else:
                generic.append(_GenericMonomial(
                    i,
                    np.array([j for j, _ in entries], dtype=np.intp),
                    np.array([c for _, c in entries], dtype=np.float64)))

        self._idx1 = idx1
        self._idx2 = idx2
        self._fast_rows = np.nonzero(is_fast_ma)[0]
        self._generic = generic
        self._mm = mm_rows
        self._hill = hill_rows
        self._custom = custom_rows
        self._compile_partials()

    def _compile_partials(self) -> None:
        """Precompute the Jacobian's sparse partial-derivative pattern.

        Each entry p describes one nonzero d(flux_r)/d(x_v); codes select
        the vectorized formula used to evaluate it:
          0: constant k              (order-1 monomial)
          1: k * x[other]            (order-2, distinct reactants)
          2: 2 k * x[v]              (order-2, repeated reactant)
        MM, Hill and generic monomial partials are evaluated separately.
        """
        react_idx: list[int] = []
        var_idx: list[int] = []
        other_idx: list[int] = []
        codes: list[int] = []
        one = self.n_species
        for i in self._fast_rows:
            j, l = int(self._idx1[i]), int(self._idx2[i])
            if j == one:                    # order 0: no partials
                continue
            if l == one:                    # order 1
                react_idx.append(i); var_idx.append(j)
                other_idx.append(one); codes.append(0)
            elif j == l:                    # 2 A -> ...
                react_idx.append(i); var_idx.append(j)
                other_idx.append(j); codes.append(2)
            else:                           # A + B -> ...
                react_idx.append(i); var_idx.append(j)
                other_idx.append(l); codes.append(1)
                react_idx.append(i); var_idx.append(l)
                other_idx.append(j); codes.append(1)
        self._p_react = np.array(react_idx, dtype=np.intp)
        self._p_var = np.array(var_idx, dtype=np.intp)
        self._p_other = np.array(other_idx, dtype=np.intp)
        self._p_code = np.array(codes, dtype=np.intp)
        self._compile_jacobian_operator()

    def _compile_jacobian_operator(self) -> None:
        """Sparse partials-to-Jacobian scatter operator.

        Maps the vector of partial values V (B, P) to the flattened
        Jacobian: J[b, n, m] = sum_p V[b, p] * S[react_p, n] * [m=var_p],
        i.e. J_flat = V @ Q with Q sparse of shape (P, N*N). Replaces
        the (slow) fancy-index scatter with one sparse matmul.
        """
        from scipy import sparse as _sparse
        n = self.n_species
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        net = self._net
        for p in range(self._p_react.shape[0]):
            reaction = self._p_react[p]
            var = self._p_var[p]
            for out in np.nonzero(net[reaction])[0]:
                rows.append(p)
                cols.append(int(out) * n + int(var))
                data.append(float(net[reaction, out]))
        self._jac_operator = _sparse.csr_matrix(
            (data, (rows, cols)),
            shape=(self._p_react.shape[0], n * n))

    # ------------------------------------------------------------------
    # flux evaluation

    def _extended(self, states: np.ndarray) -> np.ndarray:
        """Append the constant-1 column used by the index fast path."""
        batch = states.shape[0]
        extended = np.empty((batch, self.n_species + 1))
        extended[:, :self.n_species] = states
        extended[:, self.n_species] = 1.0
        return extended

    def flux(self, states: np.ndarray, constants: np.ndarray) -> np.ndarray:
        """Reaction flux vector, shape (B, M)."""
        states = np.atleast_2d(states)
        extended = self._extended(states)
        fluxes = extended[:, self._idx1] * extended[:, self._idx2]
        for monomial in self._generic:
            fluxes[:, monomial.reaction] = np.prod(
                states[:, monomial.species] ** monomial.powers, axis=1)
        for i, substrate, km in self._mm:
            s = states[:, substrate]
            fluxes[:, i] = s / (km + s)
        for i, substrate, km, hill_n in self._hill:
            s = np.maximum(states[:, substrate], 0.0)
            s_n = s ** hill_n
            fluxes[:, i] = s_n / (km ** hill_n + s_n)
        result = fluxes * constants
        if self._custom:
            batch = states.shape[0]
            constants_2d = np.broadcast_to(np.atleast_2d(constants),
                                           (batch, self.n_reactions))
            for i, law, _, binding in self._custom:
                environment = {name: states[:, j]
                               for name, j in binding.items()}
                environment["k"] = constants_2d[:, i]
                result[:, i] = np.broadcast_to(
                    law.expression.evaluate(environment), (batch,))
        return result

    # ------------------------------------------------------------------
    # right-hand side

    def rhs(self, states: np.ndarray, constants: np.ndarray,
            policy: str = "hybrid") -> np.ndarray:
        """dX/dt for a batch of states, shape (B, N)."""
        states = np.atleast_2d(states)
        if policy == "hybrid":
            return self._rhs_hybrid(states, constants)
        if policy == "coarse":
            return self._rhs_coarse(states, constants)
        if policy == "fine":
            return self._rhs_fine(states, constants)
        raise ModelError(f"unknown evaluation policy {policy!r}; "
                         f"expected one of {POLICIES}")

    def _rhs_hybrid(self, states: np.ndarray,
                    constants: np.ndarray) -> np.ndarray:
        fluxes = self.flux(states, constants)
        if self._row_stable_gemm:
            if fluxes.shape[0] == 1:
                # A single row dispatches to gemv, which rounds
                # differently from gemm; evaluate the duplicated
                # two-row product so a lone surviving simulation gets
                # the exact same bits it would inside a wider batch.
                return (np.concatenate([fluxes, fluxes]) @ self._net)[:1]
            return fluxes @ self._net                    # BLAS (B,M)@(M,N)
        # (N, M) sparse @ (M, B) -> (N, B); scipy's CSR product is a
        # fixed-order accumulation, so rows are width-independent.
        return self._net_csc_t.dot(fluxes.T).T

    def _rhs_coarse(self, states: np.ndarray,
                    constants: np.ndarray) -> np.ndarray:
        """Sequential sweep over reactions, vectorized over the batch.

        Models the coarse-grained-only execution in which each device
        thread walks the whole reaction list for its own simulation.
        """
        constants = np.broadcast_to(np.atleast_2d(constants),
                                    (states.shape[0], self.n_reactions))
        derivative = np.zeros_like(states)
        fluxes = self.flux(states, constants)
        net = self._net
        for i in range(self.n_reactions):
            row = net[i]
            for j in np.nonzero(row)[0]:
                derivative[:, j] += row[j] * fluxes[:, i]
        return derivative

    def _rhs_fine(self, states: np.ndarray,
                  constants: np.ndarray) -> np.ndarray:
        """Sequential sweep over the batch, vectorized within each sim."""
        constants = np.broadcast_to(np.atleast_2d(constants),
                                    (states.shape[0], self.n_reactions))
        derivative = np.empty_like(states)
        for b in range(states.shape[0]):
            derivative[b] = self._rhs_hybrid(states[b:b + 1],
                                             constants[b:b + 1])[0]
        return derivative

    def rhs_single(self, state: np.ndarray, constants: np.ndarray) -> np.ndarray:
        """dX/dt for one state vector, shape (N,)."""
        return self._rhs_hybrid(state[None, :], np.atleast_2d(constants))[0]

    # ------------------------------------------------------------------
    # Jacobian

    def jacobian(self, states: np.ndarray,
                 constants: np.ndarray) -> np.ndarray:
        """Batched analytic Jacobian d(dX/dt)/dX, shape (B, N, N)."""
        states = np.atleast_2d(states)
        batch = states.shape[0]
        n = self.n_species
        constants = np.broadcast_to(np.atleast_2d(constants),
                                    (batch, self.n_reactions))
        extended = self._extended(states)
        react = self._p_react
        # Partial values for the fast mass-action pattern (codes: 0 -> k,
        # 1 -> k * x_other, 2 -> 2 k * x_other).
        values = constants[:, react].copy()
        mask1 = self._p_code == 1
        if np.any(mask1):
            values[:, mask1] *= extended[:, self._p_other[mask1]]
        mask2 = self._p_code == 2
        if np.any(mask2):
            values[:, mask2] *= 2.0 * extended[:, self._p_other[mask2]]
        # One sparse matmul scatters all partials into the Jacobian.
        jac_flat = self._jac_operator.T.dot(values.T).T   # (B, N*N)
        jac = np.ascontiguousarray(jac_flat.reshape(batch, n, n))
        self._jacobian_slow_paths(jac, states, constants, self._net.T)
        return jac

    def _jacobian_slow_paths(self, jac: np.ndarray, states: np.ndarray,
                             constants: np.ndarray, net_t: np.ndarray) -> None:
        for monomial in self._generic:
            i = monomial.reaction
            column = net_t[:, i]                          # (N,)
            base = states[:, monomial.species] ** monomial.powers  # (B, d)
            for pos, j in enumerate(monomial.species):
                power = monomial.powers[pos]
                partial = constants[:, i] * power
                partial = partial * states[:, j] ** (power - 1.0)
                rest = np.prod(np.delete(base, pos, axis=1), axis=1)
                partial = partial * rest
                jac[:, :, j] += partial[:, None] * column[None, :]
        for i, substrate, km in self._mm:
            s = states[:, substrate]
            partial = constants[:, i] * km / (km + s) ** 2
            jac[:, :, substrate] += partial[:, None] * net_t[:, i][None, :]
        for i, substrate, km, hill_n in self._hill:
            s = np.maximum(states[:, substrate], 1e-300)
            s_n = s ** hill_n
            km_n = km ** hill_n
            partial = (constants[:, i] * hill_n * km_n * s ** (hill_n - 1.0)
                       / (km_n + s_n) ** 2)
            jac[:, :, substrate] += partial[:, None] * net_t[:, i][None, :]
        batch = states.shape[0]
        for i, _, gradient, binding in self._custom:
            environment = {name: states[:, j] for name, j in binding.items()}
            environment["k"] = constants[:, i]
            for name, j in binding.items():
                partial = np.broadcast_to(
                    gradient[name].evaluate(environment), (batch,))
                jac[:, :, j] += partial[:, None] * net_t[:, i][None, :]

    def jacobian_single(self, state: np.ndarray,
                        constants: np.ndarray) -> np.ndarray:
        """Analytic Jacobian for one state, shape (N, N)."""
        return self.jacobian(state[None, :], np.atleast_2d(constants))[0]

    # ------------------------------------------------------------------
    # adapters

    def as_scipy_rhs(self, constants: np.ndarray):
        """``f(t, y)`` callable for scipy-style scalar integrators."""
        constants = np.atleast_2d(np.asarray(constants, dtype=np.float64))

        def fun(t: float, y: np.ndarray) -> np.ndarray:
            return self._rhs_hybrid(np.asarray(y)[None, :], constants)[0]

        return fun

    def as_scipy_jacobian(self, constants: np.ndarray):
        """``jac(t, y)`` callable for scipy-style scalar integrators."""
        constants = np.atleast_2d(np.asarray(constants, dtype=np.float64))

        def jac(t: float, y: np.ndarray) -> np.ndarray:
            return self.jacobian(np.asarray(y)[None, :], constants)[0]

        return jac

    @classmethod
    def from_model(cls, model: ReactionBasedModel) -> "ODESystem":
        return cls(model)
