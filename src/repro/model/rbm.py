"""Reaction-based models (RBMs).

An RBM is the pair (S, R) of N molecular species and M biochemical
reactions. It is the single source of truth from which stoichiometric
matrices, ODE systems, parameterizations and file representations are
derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from ..errors import ModelError
from .kinetics import KineticLaw, MassAction
from .parameterization import Parameterization, ParameterizationBatch
from .reaction import Reaction, parse_reaction
from .species import Species, SpeciesRegistry
from .stoichiometry import (StoichiometricMatrices, build_matrices,
                            conservation_laws)


@dataclass
class ReactionBasedModel:
    """A reaction-based model of a biochemical network.

    Models are typically assembled through :meth:`add_species` and
    :meth:`add_reaction` (or the string-based :meth:`add`), then frozen
    implicitly the first time a derived artifact (matrices, ODE system)
    is requested.
    """

    name: str = "model"
    species: SpeciesRegistry = field(default_factory=SpeciesRegistry)
    reactions: list[Reaction] = field(default_factory=list)

    # ------------------------------------------------------------------
    # construction

    def add_species(self, name: str, initial_concentration: float = 0.0) -> Species:
        """Declare a species (idempotent for identical declarations)."""
        self._invalidate()
        species = Species(name, initial_concentration)
        self.species.add(species)
        return species

    def add_reaction(self, reaction: Reaction) -> Reaction:
        """Add a reaction; undeclared species are auto-registered at 0."""
        self._invalidate()
        for species_name in (*reaction.reactants, *reaction.products):
            if species_name not in self.species:
                self.species.add(Species(species_name, 0.0))
        self.reactions.append(reaction)
        return reaction

    def add(self, text: str, rate_constant: float | None = None,
            law: KineticLaw | None = None, name: str = "") -> Reaction:
        """Parse and add a reaction from ``"2 A + B -> C @ 0.5"`` syntax."""
        reaction = parse_reaction(
            text, rate_constant,
            law if law is not None else MassAction(), name)
        return self.add_reaction(reaction)

    def _invalidate(self) -> None:
        self.__dict__.pop("matrices", None)
        self.__dict__.pop("_conservation", None)

    # ------------------------------------------------------------------
    # shape

    @property
    def n_species(self) -> int:
        return len(self.species)

    @property
    def n_reactions(self) -> int:
        return len(self.reactions)

    @property
    def size(self) -> tuple[int, int]:
        """(N, M) = (number of species, number of reactions)."""
        return self.n_species, self.n_reactions

    def is_mass_action(self) -> bool:
        """True when every reaction uses the law of mass action."""
        return all(isinstance(r.law, MassAction) for r in self.reactions)

    def max_order(self) -> int:
        """Largest reaction order in the model."""
        return max((r.order for r in self.reactions), default=0)

    # ------------------------------------------------------------------
    # derived structure

    @cached_property
    def matrices(self) -> StoichiometricMatrices:
        """Stoichiometric matrices A, B and S = B - A."""
        self.validate()
        return build_matrices(self.species, self.reactions)

    @cached_property
    def _conservation(self) -> np.ndarray:
        return conservation_laws(self.matrices.net)

    def conservation_law_basis(self) -> np.ndarray:
        """Orthonormal basis (L, N) of conserved linear combinations."""
        return self._conservation

    def validate(self) -> None:
        """Raise :class:`ModelError` for structurally invalid models."""
        if self.n_species == 0:
            raise ModelError(f"model {self.name!r} has no species")
        if self.n_reactions == 0:
            raise ModelError(f"model {self.name!r} has no reactions")
        dynamic = set()
        for reaction in self.reactions:
            dynamic.update(reaction.species_names())
        # Species never touched by any reaction are allowed (their ODE is
        # dX/dt = 0) but a fully disconnected model is suspicious enough
        # to reject.
        if not dynamic:
            raise ModelError(f"model {self.name!r} has no reacting species")

    # ------------------------------------------------------------------
    # parameterizations

    def rate_constants(self) -> np.ndarray:
        return np.array([r.rate_constant for r in self.reactions])

    def initial_state(self) -> np.ndarray:
        return np.array(self.species.initial_concentrations())

    def nominal_parameterization(self) -> Parameterization:
        """The parameterization written in the model definition."""
        return Parameterization(self.rate_constants(), self.initial_state())

    def batch(self, count: int) -> ParameterizationBatch:
        """Batch of ``count`` copies of the nominal parameterization."""
        return ParameterizationBatch.replicate(
            self.nominal_parameterization(), count)

    def check_parameterization(self, parameterization: Parameterization) -> None:
        if parameterization.n_reactions != self.n_reactions:
            raise ModelError(
                f"parameterization has {parameterization.n_reactions} rate "
                f"constants, model has {self.n_reactions} reactions")
        if parameterization.n_species != self.n_species:
            raise ModelError(
                f"parameterization has {parameterization.n_species} initial "
                f"values, model has {self.n_species} species")

    # ------------------------------------------------------------------
    # rendering

    def summary(self) -> str:
        """One-paragraph human-readable description."""
        kind = "mass-action" if self.is_mass_action() else "mixed-kinetics"
        lines = [
            f"ReactionBasedModel {self.name!r}: N={self.n_species} species, "
            f"M={self.n_reactions} reactions ({kind}, max order "
            f"{self.max_order()})",
        ]
        lines.extend(f"  {r.text()}" for r in self.reactions)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ReactionBasedModel {self.name!r} N={self.n_species} "
                f"M={self.n_reactions}>")
