"""Kinetic laws for reactions.

The main law of this paper family is mass-action kinetics, which is what
the ODE generator compiles to its fast vectorized path. Michaelis-Menten
and Hill kinetics are supported as the extension the original tool lists
as future work; they get their own vectorized groups in the compiled
ODE system.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import KineticsError
from .ratelaws import CustomLaw


@dataclass(frozen=True)
class MassAction:
    """Law of mass action: flux = k * prod_j X_j^a_ij.

    The kinetic constant ``k`` lives on the reaction (so it can be swept
    and perturbed); the law itself is stateless.
    """

    def describe(self) -> str:
        return "mass-action"


@dataclass(frozen=True)
class MichaelisMenten:
    """Michaelis-Menten kinetics: flux = k * S / (km + S).

    ``k`` plays the role of Vmax and lives on the reaction. The reaction
    must have exactly one reactant (the substrate ``S``) with
    stoichiometric coefficient 1.
    """

    km: float

    def __post_init__(self) -> None:
        if not (self.km > 0.0):
            raise KineticsError(f"Michaelis constant must be > 0, got {self.km}")

    def describe(self) -> str:
        return f"michaelis-menten(km={self.km})"


@dataclass(frozen=True)
class Hill:
    """Hill kinetics: flux = k * S^n / (km^n + S^n).

    ``k`` plays the role of Vmax and lives on the reaction. The reaction
    must have exactly one reactant (the substrate ``S``) with
    stoichiometric coefficient 1. ``n`` is the Hill coefficient.
    """

    km: float
    n: float

    def __post_init__(self) -> None:
        if not (self.km > 0.0):
            raise KineticsError(f"Hill half-saturation must be > 0, got {self.km}")
        if not (self.n > 0.0):
            raise KineticsError(f"Hill coefficient must be > 0, got {self.n}")

    def describe(self) -> str:
        return f"hill(km={self.km}, n={self.n})"


KineticLaw = MassAction | MichaelisMenten | Hill | CustomLaw

MASS_ACTION = MassAction()


def validate_law_for_reaction(law: KineticLaw, n_reactants: int,
                              max_coefficient: int) -> None:
    """Check that a kinetic law is compatible with a reaction shape.

    Parameters
    ----------
    law:
        The kinetic law attached to the reaction.
    n_reactants:
        Number of distinct reactant species.
    max_coefficient:
        Largest reactant stoichiometric coefficient.
    """
    if isinstance(law, (MassAction, CustomLaw)):
        # Custom laws may reference any species; their symbols are
        # checked against the model when the ODE system is compiled.
        return
    if n_reactants != 1 or max_coefficient != 1:
        raise KineticsError(
            f"{law.describe()} kinetics requires exactly one reactant with "
            f"coefficient 1, got {n_reactants} reactant(s) with max "
            f"coefficient {max_coefficient}"
        )
