"""Molecular species of a reaction-based model."""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..errors import ModelError

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


@dataclass(frozen=True)
class Species:
    """A molecular species.

    Parameters
    ----------
    name:
        Identifier of the species. Must be a valid Python-style
        identifier so that species can be referenced from reaction
        strings such as ``"A + B -> C"``.
    initial_concentration:
        Default initial concentration (arbitrary units, >= 0). Individual
        simulations may override it through a
        :class:`~repro.model.parameterization.Parameterization`.
    """

    name: str
    initial_concentration: float = 0.0

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ModelError(
                f"invalid species name {self.name!r}: must match "
                "[A-Za-z_][A-Za-z0-9_]*"
            )
        if not (self.initial_concentration >= 0.0):
            raise ModelError(
                f"species {self.name!r}: initial concentration must be "
                f"non-negative, got {self.initial_concentration}"
            )

    def with_concentration(self, value: float) -> "Species":
        """Return a copy of this species with a new initial concentration."""
        return Species(self.name, value)


@dataclass
class SpeciesRegistry:
    """Ordered, name-indexed collection of species.

    The registry fixes the species ordering used for every vector and
    matrix in the package (state vectors, stoichiometric matrices, ...).
    """

    _species: list[Species] = field(default_factory=list)
    _index: dict[str, int] = field(default_factory=dict)

    def add(self, species: Species) -> int:
        """Register a species and return its index.

        Re-adding a species with the same name and concentration is a
        no-op; re-adding with a different concentration is an error.
        """
        existing = self._index.get(species.name)
        if existing is not None:
            if self._species[existing] != species:
                raise ModelError(
                    f"species {species.name!r} registered twice with "
                    "different initial concentrations"
                )
            return existing
        index = len(self._species)
        self._species.append(species)
        self._index[species.name] = index
        return index

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise ModelError(f"unknown species {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self._species)

    def __iter__(self):
        return iter(self._species)

    def __getitem__(self, index: int) -> Species:
        return self._species[index]

    @property
    def names(self) -> list[str]:
        return [s.name for s in self._species]

    def initial_concentrations(self) -> list[float]:
        return [s.initial_concentration for s in self._species]
