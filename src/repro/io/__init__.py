"""Model I/O: BioSimWare folder format, SBML subset, converters,
campaign checkpoint journals."""

from .biosimware import (REQUIRED_FILES, read_batch, read_model,
                         read_t_vector, write_model)
from .checkpoint import CampaignCheckpoint
from .convert import biosimware_to_sbml, sbml_to_biosimware
from .results import load_result, save_result
from .sbml import read_sbml, write_sbml

__all__ = [
    "REQUIRED_FILES", "read_batch", "read_model", "read_t_vector",
    "write_model",
    "CampaignCheckpoint",
    "biosimware_to_sbml", "sbml_to_biosimware",
    "load_result", "save_result",
    "read_sbml", "write_sbml",
]
