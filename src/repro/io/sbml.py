"""SBML-subset reader and writer.

Many Systems Biology tools exchange models as SBML; the simulator
family ships a converter between SBML and its folder format. This
module implements a pragmatic SBML Level-3-shaped subset with the
standard library's XML tooling:

* species with ``initialConcentration``;
* reactions with ``listOfReactants`` / ``listOfProducts`` and integer
  ``stoichiometry``;
* one kinetic constant per reaction, stored as a local parameter named
  ``k`` (mass-action is implied, matching the simulator's semantics).

Documents written by :func:`write_sbml` round-trip exactly through
:func:`read_sbml`; foreign documents are accepted as long as they stay
inside this subset.
"""

from __future__ import annotations

import math
import xml.etree.ElementTree as ElementTree
from pathlib import Path

from ..errors import FormatError
from ..model import Reaction, ReactionBasedModel

_NS = "http://www.sbml.org/sbml/level3/version2/core"


def _tag(name: str) -> str:
    return f"{{{_NS}}}{name}"


def write_sbml(model: ReactionBasedModel, path: str | Path) -> Path:
    """Serialize a mass-action model to an SBML-subset document."""
    if not model.is_mass_action():
        raise FormatError(
            "the SBML subset writer only represents mass-action models; "
            f"{model.name!r} uses other kinetic laws")
    root = ElementTree.Element(_tag("sbml"), {"level": "3", "version": "2"})
    model_el = ElementTree.SubElement(root, _tag("model"),
                                      {"id": model.name})
    species_list = ElementTree.SubElement(model_el, _tag("listOfSpecies"))
    for species in model.species:
        ElementTree.SubElement(species_list, _tag("species"), {
            "id": species.name,
            "initialConcentration": repr(species.initial_concentration),
            "hasOnlySubstanceUnits": "false",
            "boundaryCondition": "false",
            "constant": "false",
        })
    reaction_list = ElementTree.SubElement(model_el, _tag("listOfReactions"))
    for index, reaction in enumerate(model.reactions):
        reaction_el = ElementTree.SubElement(reaction_list, _tag("reaction"), {
            "id": reaction.name or f"R{index}",
            "reversible": "false",
        })
        _write_side(reaction_el, "listOfReactants", reaction.reactants)
        _write_side(reaction_el, "listOfProducts", reaction.products)
        law_el = ElementTree.SubElement(reaction_el, _tag("kineticLaw"))
        params = ElementTree.SubElement(law_el, _tag("listOfLocalParameters"))
        ElementTree.SubElement(params, _tag("localParameter"), {
            "id": "k", "value": repr(reaction.rate_constant),
        })
    tree = ElementTree.ElementTree(root)
    ElementTree.indent(tree)
    path = Path(path)
    tree.write(path, xml_declaration=True, encoding="unicode")
    return path


def read_sbml(path: str | Path) -> ReactionBasedModel:
    """Parse an SBML-subset document into a mass-action model."""
    path = Path(path)
    try:
        root = ElementTree.parse(path).getroot()
    except ElementTree.ParseError as error:
        raise FormatError(f"cannot parse {path}: {error}") from None
    model_el = root.find(_tag("model"))
    if model_el is None:
        # Tolerate documents without a namespace.
        model_el = root.find("model")
        if model_el is None:
            raise FormatError(f"{path} has no <model> element")
        return _read_model(model_el, namespaced=False, path=path)
    return _read_model(model_el, namespaced=True, path=path)


def _read_model(model_el, namespaced: bool, path) -> ReactionBasedModel:
    def tag(name: str) -> str:
        return _tag(name) if namespaced else name

    model = ReactionBasedModel(model_el.get("id") or "sbml-model")
    species_list = model_el.find(tag("listOfSpecies"))
    if species_list is None:
        raise FormatError(f"{path} has no listOfSpecies")
    for species_el in species_list.findall(tag("species")):
        identifier = species_el.get("id")
        if not identifier:
            raise FormatError(f"{path}: species without id")
        raw = species_el.get("initialConcentration", "0") or 0.0
        try:
            concentration = float(raw)
        except ValueError:
            raise FormatError(
                f"{path}: species {identifier!r} has unparseable "
                f"initialConcentration {raw!r}") from None
        if not math.isfinite(concentration):
            raise FormatError(
                f"{path}: species {identifier!r} has non-finite "
                f"initialConcentration {concentration}; fix the document "
                f"before simulating")
        if concentration < 0.0:
            raise FormatError(
                f"{path}: species {identifier!r} has negative "
                f"initialConcentration {concentration}; concentrations "
                f"must be >= 0")
        model.add_species(identifier, concentration)

    reaction_list = model_el.find(tag("listOfReactions"))
    if reaction_list is None:
        raise FormatError(f"{path} has no listOfReactions")
    for reaction_el in reaction_list.findall(tag("reaction")):
        reactants = _read_side(reaction_el, tag, "listOfReactants", path)
        products = _read_side(reaction_el, tag, "listOfProducts", path)
        rate = _read_rate(reaction_el, tag, path)
        model.add_reaction(Reaction(reactants, products, rate,
                                    name=reaction_el.get("id") or ""))
    return model


def _write_side(reaction_el, list_name: str, side: dict[str, int]) -> None:
    if not side:
        return
    side_el = ElementTree.SubElement(reaction_el, _tag(list_name))
    for species, coefficient in side.items():
        ElementTree.SubElement(side_el, _tag("speciesReference"), {
            "species": species,
            "stoichiometry": str(coefficient),
            "constant": "true",
        })


def _read_side(reaction_el, tag, list_name: str, path) -> dict[str, int]:
    side_el = reaction_el.find(tag(list_name))
    side: dict[str, int] = {}
    if side_el is None:
        return side
    for reference in side_el.findall(tag("speciesReference")):
        species = reference.get("species")
        if not species:
            raise FormatError(f"{path}: speciesReference without species")
        stoichiometry = float(reference.get("stoichiometry", "1"))
        if stoichiometry != int(stoichiometry) or stoichiometry < 1:
            raise FormatError(
                f"{path}: non-integer stoichiometry {stoichiometry} "
                f"for {species}")
        side[species] = side.get(species, 0) + int(stoichiometry)
    return side


def _read_rate(reaction_el, tag, path) -> float:
    law_el = reaction_el.find(tag("kineticLaw"))
    if law_el is None:
        raise FormatError(
            f"{path}: reaction {reaction_el.get('id')!r} has no kineticLaw")
    for params_name in ("listOfLocalParameters", "listOfParameters"):
        params_el = law_el.find(tag(params_name))
        if params_el is None:
            continue
        for parameter in params_el.findall(tag("localParameter")) + \
                params_el.findall(tag("parameter")):
            if parameter.get("id") == "k":
                raw = parameter.get("value")
                reaction_id = reaction_el.get("id")
                try:
                    rate = float(raw)
                except (TypeError, ValueError):
                    raise FormatError(
                        f"{path}: reaction {reaction_id!r} has "
                        f"unparseable rate constant {raw!r}") from None
                if not math.isfinite(rate):
                    raise FormatError(
                        f"{path}: reaction {reaction_id!r} has non-finite "
                        f"rate constant {rate}; fix the document before "
                        f"simulating")
                return rate
    raise FormatError(
        f"{path}: reaction {reaction_el.get('id')!r} has no local "
        "parameter 'k' (only mass-action subset documents are supported)")
