"""Converters between the SBML subset and the BioSimWare folder format.

Mirrors the conversion tool the simulator family ships alongside the
simulator: SBML documents can be turned into runnable model folders and
back without losing the mass-action parameterization.
"""

from __future__ import annotations

from pathlib import Path

from .biosimware import read_model as read_biosimware
from .biosimware import write_model as write_biosimware
from .sbml import read_sbml, write_sbml


def sbml_to_biosimware(sbml_path: str | Path,
                       folder: str | Path) -> Path:
    """Convert an SBML-subset document to a BioSimWare folder."""
    model = read_sbml(sbml_path)
    return write_biosimware(model, folder)


def biosimware_to_sbml(folder: str | Path,
                       sbml_path: str | Path) -> Path:
    """Convert a BioSimWare folder to an SBML-subset document."""
    model = read_biosimware(folder)
    return write_sbml(model, sbml_path)
