"""Persistence of simulation results (NumPy .npz archives).

Parameter-space analyses produce large trajectory tensors that users
archive and post-process elsewhere; this module round-trips
:class:`~repro.gpu.batch_result.BatchSolveResult` objects (plus the
species names needed to interpret them) through a single compressed
``.npz`` file.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from ..errors import FormatError
from ..gpu.batch_result import BatchSolveResult

_FORMAT_VERSION = 1


def save_result(path: str | Path, result: BatchSolveResult,
                species_names: list[str] | None = None) -> Path:
    """Write a batch result (and optional species labels) to ``path``.

    The write is atomic (temp file + ``os.replace``): readers — in
    particular a campaign resuming from its chunk journal — never see
    a truncated archive, only the old file or the complete new one.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    names = np.array(species_names if species_names is not None else [],
                     dtype=np.str_)
    temporary = path.with_suffix(path.suffix + ".tmp.npz")
    try:
        np.savez_compressed(
            temporary,
            format_version=np.array(_FORMAT_VERSION),
            t=result.t,
            y=result.y,
            status_codes=result.status_codes,
            method_codes=result.method_codes,
            n_steps=result.n_steps,
            n_accepted=result.n_accepted,
            n_rejected=result.n_rejected,
            elapsed_seconds=np.array(result.elapsed_seconds),
            species_names=names,
        )
        os.replace(temporary, path)
    finally:
        if temporary.is_file():
            temporary.unlink()
    return path


def load_result(path: str | Path
                ) -> tuple[BatchSolveResult, list[str]]:
    """Read a batch result; returns (result, species_names)."""
    path = Path(path)
    if not path.is_file():
        raise FormatError(f"no result archive at {path}")
    try:
        with np.load(path, allow_pickle=False) as archive:
            version = int(archive["format_version"])
            if version != _FORMAT_VERSION:
                raise FormatError(
                    f"unsupported result format version {version}")
            result = BatchSolveResult(
                t=archive["t"],
                y=archive["y"],
                status_codes=archive["status_codes"],
                method_codes=archive["method_codes"],
                n_steps=archive["n_steps"],
                n_accepted=archive["n_accepted"],
                n_rejected=archive["n_rejected"],
                elapsed_seconds=float(archive["elapsed_seconds"]),
            )
            names = [str(name) for name in archive["species_names"]]
    except (KeyError, ValueError) as error:
        raise FormatError(f"cannot read {path}: {error}") from None
    return result, names
