"""Campaign checkpoint journal (JSON + per-chunk npz archives).

A chunked campaign (see :func:`repro.resilience.run_campaign`) records
every completed launch chunk so a crash, ``KeyboardInterrupt`` or
deadline does not force a full re-run. The journal is one JSON file::

    {
      "format_version": 1,
      "fingerprint": {...},          # identity of the campaign
      "chunks": {"0": {"file": "...", "quarantine": [...]}, ...},
      "payloads": {"start-0": {...}, ...}
    }

Chunk trajectories live in sibling ``<stem>.chunk<index>.npz`` archives
(the :mod:`repro.io.results` format); ``payloads`` carries small
free-form JSON entries (parameter-estimation restarts journal their
per-start optima there). The fingerprint is compared on open: resuming
a journal that belongs to a *different* campaign raises
:class:`~repro.errors.ResilienceError` instead of silently splicing
mismatched trajectories.
"""

from __future__ import annotations

import json
import os
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import FormatError, ResilienceError
from ..gpu.batch_result import BatchSolveResult
from .results import load_result, save_result

_JOURNAL_VERSION = 1


@dataclass
class CampaignCheckpoint:
    """One campaign's resumable journal."""

    path: Path
    fingerprint: dict
    chunks: dict[int, dict] = field(default_factory=dict)
    payloads: dict[str, dict] = field(default_factory=dict)

    # -- lifecycle -------------------------------------------------------

    @classmethod
    def open(cls, path: str | Path,
             fingerprint: dict) -> "CampaignCheckpoint":
        """Load an existing journal (verifying identity) or create one."""
        path = Path(path)
        if path.is_file():
            try:
                with path.open("r", encoding="utf-8") as handle:
                    data = json.load(handle)
            except (OSError, json.JSONDecodeError) as error:
                raise ResilienceError(
                    f"cannot read campaign journal {path}: {error}") \
                    from None
            version = data.get("format_version")
            if version != _JOURNAL_VERSION:
                raise ResilienceError(
                    f"unsupported journal format version {version!r} "
                    f"in {path}")
            recorded = data.get("fingerprint", {})
            if recorded != fingerprint:
                raise ResilienceError(
                    f"journal {path} belongs to a different campaign: "
                    f"recorded fingerprint {recorded!r} does not match "
                    f"{fingerprint!r}")
            chunks = {int(k): v for k, v in data.get("chunks", {}).items()}
            return cls(path, fingerprint, chunks,
                       dict(data.get("payloads", {})))
        checkpoint = cls(path, fingerprint)
        checkpoint._write()
        return checkpoint

    def _write(self) -> None:
        """Atomic journal rewrite (write temp, rename over)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format_version": _JOURNAL_VERSION,
            "fingerprint": self.fingerprint,
            "chunks": {str(k): v for k, v in sorted(self.chunks.items())},
            "payloads": self.payloads,
        }
        temporary = self.path.with_suffix(self.path.suffix + ".tmp")
        with temporary.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        os.replace(temporary, self.path)

    # -- chunk results ---------------------------------------------------

    def chunk_file(self, index: int) -> Path:
        return self.path.parent / f"{self.path.stem}.chunk{index:05d}.npz"

    def has_chunk(self, index: int) -> bool:
        return index in self.chunks and self.chunk_file(index).is_file()

    def completed_indices(self) -> list[int]:
        return sorted(self.chunks)

    def save_chunk(self, index: int, result: BatchSolveResult,
                   quarantine: list[dict] | None = None) -> None:
        """Persist one completed chunk and journal it durably."""
        file = save_result(self.chunk_file(index), result)
        self.chunks[index] = {"file": file.name,
                              "quarantine": quarantine or []}
        self._write()

    def load_chunk(self, index: int) -> tuple[BatchSolveResult, list[dict]]:
        """Reload a completed chunk's result and quarantine entries.

        A corrupt or truncated chunk archive raises
        :class:`~repro.errors.ResilienceError` naming the file: delete
        it (the journal entry is then ignored by :meth:`has_chunk`) and
        re-run the campaign to re-execute just that chunk.
        """
        if index not in self.chunks:
            raise ResilienceError(
                f"journal {self.path} has no chunk {index}")
        file = self.chunk_file(index)
        try:
            result, _ = load_result(file)
        except (FormatError, OSError, EOFError,
                zipfile.BadZipFile) as error:
            raise ResilienceError(
                f"chunk archive {file} is corrupt or truncated "
                f"({error}); delete {file.name} and re-run the campaign "
                f"to re-execute chunk {index}") from None
        return result, list(self.chunks[index].get("quarantine", []))

    # -- free-form payloads ---------------------------------------------

    def set_payload(self, key: str, value: dict) -> None:
        self.payloads[key] = value
        self._write()

    def get_payload(self, key: str) -> dict | None:
        return self.payloads.get(key)

    # -- cleanup ---------------------------------------------------------

    def cleanup(self) -> None:
        """Delete the journal and every chunk archive it references."""
        for index in list(self.chunks):
            file = self.chunk_file(index)
            if file.is_file():
                file.unlink()
        if self.path.is_file():
            self.path.unlink()
        self.chunks.clear()
        self.payloads.clear()
