"""BioSimWare-style folder model format.

The simulator family's native input format is a folder of plain-text
matrices. This module reads and writes that layout:

``alphabet``
    Tab-separated species names (one line).
``left_side`` / ``right_side``
    The reactant matrix A and product matrix B, one reaction per line,
    tab-separated integer coefficients (N columns).
``c_vector``
    One kinetic constant per line (M lines).
``M_0``
    Tab-separated initial concentrations (one line, N columns).
``cs_vector`` (optional)
    One *parameterization* per line: M tab-separated constants. Used to
    ship a whole sweep batch with the model.
``MX_0`` (optional)
    One initial state per line: N tab-separated concentrations.
``t_vector`` (optional)
    One save time per line.

Only mass-action models can be represented (matching the original
format's expressiveness).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import FormatError
from ..model import (ParameterizationBatch, Reaction, ReactionBasedModel)

REQUIRED_FILES = ("alphabet", "left_side", "right_side", "c_vector", "M_0")


def write_model(model: ReactionBasedModel, folder: str | Path,
                batch: ParameterizationBatch | None = None,
                t_vector: np.ndarray | None = None) -> Path:
    """Write a model (and optionally a sweep batch) to a folder."""
    if not model.is_mass_action():
        raise FormatError(
            "the BioSimWare folder format only represents mass-action "
            f"models; {model.name!r} uses other kinetic laws")
    folder = Path(folder)
    folder.mkdir(parents=True, exist_ok=True)
    matrices = model.matrices

    (folder / "alphabet").write_text(
        "\t".join(model.species.names) + "\n")
    _write_matrix(folder / "left_side", matrices.reactants)
    _write_matrix(folder / "right_side", matrices.products)
    (folder / "c_vector").write_text(
        "".join(f"{k:.17g}\n" for k in model.rate_constants()))
    (folder / "M_0").write_text(
        "\t".join(f"{x:.17g}" for x in model.initial_state()) + "\n")
    if batch is not None:
        _write_matrix(folder / "cs_vector", batch.rate_constants,
                      fmt="%.17g")
        _write_matrix(folder / "MX_0", batch.initial_states, fmt="%.17g")
    if t_vector is not None:
        (folder / "t_vector").write_text(
            "".join(f"{t:.17g}\n" for t in np.asarray(t_vector)))
    return folder


def read_model(folder: str | Path) -> ReactionBasedModel:
    """Read a model from a BioSimWare-style folder."""
    folder = Path(folder)
    for name in REQUIRED_FILES:
        if not (folder / name).is_file():
            raise FormatError(f"missing required file {name!r} in {folder}")
    names = (folder / "alphabet").read_text().split()
    left = _read_matrix(folder / "left_side")
    right = _read_matrix(folder / "right_side")
    constants = np.loadtxt(folder / "c_vector", ndmin=1)
    initial = np.loadtxt(folder / "M_0", ndmin=1)

    n_species = len(names)
    if left.shape != right.shape:
        raise FormatError(
            f"left_side {left.shape} and right_side {right.shape} disagree")
    if left.shape[1] != n_species:
        raise FormatError(
            f"stoichiometry has {left.shape[1]} columns for "
            f"{n_species} species")
    if constants.shape[0] != left.shape[0]:
        raise FormatError(
            f"c_vector has {constants.shape[0]} entries for "
            f"{left.shape[0]} reactions")
    if initial.shape[0] != n_species:
        raise FormatError(
            f"M_0 has {initial.shape[0]} entries for {n_species} species")
    if np.any(left < 0) or np.any(right < 0):
        raise FormatError("stoichiometric coefficients must be >= 0")
    bad = ~np.isfinite(initial)
    if np.any(bad):
        culprit = names[int(np.flatnonzero(bad)[0])]
        raise FormatError(
            f"M_0 in {folder}: species {culprit!r} has non-finite initial "
            f"amount {initial[bad][0]}; fix the file before simulating")
    bad = initial < 0.0
    if np.any(bad):
        culprit = names[int(np.flatnonzero(bad)[0])]
        raise FormatError(
            f"M_0 in {folder}: species {culprit!r} has negative initial "
            f"amount {initial[bad][0]}; amounts must be >= 0")
    bad = ~np.isfinite(constants)
    if np.any(bad):
        index = int(np.flatnonzero(bad)[0])
        raise FormatError(
            f"c_vector in {folder}: reaction 'R{index}' has non-finite "
            f"rate constant {constants[index]}; fix the file before "
            f"simulating")

    model = ReactionBasedModel(folder.name or "biosimware-model")
    for name, concentration in zip(names, initial):
        model.add_species(name, float(concentration))
    for i in range(left.shape[0]):
        reactants = {names[j]: int(left[i, j])
                     for j in np.nonzero(left[i])[0]}
        products = {names[j]: int(right[i, j])
                    for j in np.nonzero(right[i])[0]}
        model.add_reaction(Reaction(reactants, products,
                                    float(constants[i]), name=f"R{i}"))
    return model


def read_batch(folder: str | Path) -> ParameterizationBatch:
    """Read the sweep batch (cs_vector / MX_0) shipped with a model.

    Missing files fall back to the nominal constants / initial state
    replicated to match the present file's row count.
    """
    folder = Path(folder)
    model = read_model(folder)
    cs_path = folder / "cs_vector"
    mx_path = folder / "MX_0"
    if not cs_path.is_file() and not mx_path.is_file():
        raise FormatError(f"{folder} contains neither cs_vector nor MX_0")
    constants = (_read_matrix(cs_path, dtype=np.float64)
                 if cs_path.is_file() else None)
    states = (_read_matrix(mx_path, dtype=np.float64)
              if mx_path.is_file() else None)
    if constants is None:
        constants = np.tile(model.rate_constants(), (states.shape[0], 1))
    if states is None:
        states = np.tile(model.initial_state(), (constants.shape[0], 1))
    if constants.shape[0] != states.shape[0]:
        raise FormatError(
            f"cs_vector has {constants.shape[0]} rows but MX_0 has "
            f"{states.shape[0]}")
    names = model.species.names
    bad = ~np.isfinite(constants)
    if np.any(bad):
        row, reaction = map(int, np.argwhere(bad)[0])
        raise FormatError(
            f"cs_vector in {folder}: row {row} has non-finite rate "
            f"constant {constants[row, reaction]} for reaction "
            f"'R{reaction}'; fix the file before simulating")
    bad = ~np.isfinite(states)
    if np.any(bad):
        row, column = map(int, np.argwhere(bad)[0])
        raise FormatError(
            f"MX_0 in {folder}: row {row} has non-finite initial amount "
            f"{states[row, column]} for species {names[column]!r}; fix "
            f"the file before simulating")
    bad = states < 0.0
    if np.any(bad):
        row, column = map(int, np.argwhere(bad)[0])
        raise FormatError(
            f"MX_0 in {folder}: row {row} has negative initial amount "
            f"{states[row, column]} for species {names[column]!r}; "
            f"amounts must be >= 0")
    return ParameterizationBatch(constants, states)


def read_t_vector(folder: str | Path) -> np.ndarray:
    path = Path(folder) / "t_vector"
    if not path.is_file():
        raise FormatError(f"missing t_vector in {folder}")
    return np.loadtxt(path, ndmin=1)


def _write_matrix(path: Path, matrix: np.ndarray, fmt: str = "%d") -> None:
    np.savetxt(path, np.atleast_2d(matrix), fmt=fmt, delimiter="\t")


def _read_matrix(path: Path, dtype=np.int64) -> np.ndarray:
    try:
        return np.loadtxt(path, dtype=dtype, ndmin=2)
    except ValueError as error:
        raise FormatError(f"cannot parse {path}: {error}") from None
