"""Morris elementary-effects screening.

The cheap companion of the variance-based Sobol analysis: Morris's
one-at-a-time trajectory design estimates, per input factor, the mean
absolute elementary effect mu* (overall influence) and the standard
deviation sigma (nonlinearity / interactions) from r trajectories of
D+1 model runs each — r (D+1) simulations instead of the Saltelli
design's N (D+2). All trajectories are simulated as ONE batch on the
accelerated engine, which is exactly the workload shape the paper
family accelerates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import AnalysisError
from ..model import ReactionBasedModel
from ..solvers.base import DEFAULT_OPTIONS, SolverOptions
from .psa import SweepTarget, build_sweep_batch
from .sa import OutputFunction, deviation_from_reference
from .simulate import SimulationResult, simulate


@dataclass
class MorrisResult:
    """Elementary-effects screening statistics per target."""

    labels: list[str]
    mu: np.ndarray             # mean elementary effect (signed)
    mu_star: np.ndarray        # mean |elementary effect|
    sigma: np.ndarray          # std of elementary effects
    n_trajectories: int
    n_simulations: int
    simulation: SimulationResult

    def ranking(self) -> list[tuple[str, float]]:
        order = np.argsort(self.mu_star)[::-1]
        return [(self.labels[i], float(self.mu_star[i])) for i in order]

    def table(self) -> str:
        lines = [f"{'target':24s} {'mu':>10s} {'mu*':>10s} {'sigma':>10s}"]
        for i, label in enumerate(self.labels):
            lines.append(f"{label:24s} {self.mu[i]:10.4f} "
                         f"{self.mu_star[i]:10.4f} {self.sigma[i]:10.4f}")
        return "\n".join(lines)


def morris_design(dimension: int, n_trajectories: int, n_levels: int,
                  rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Morris trajectories in the unit cube.

    Returns (points, deltas): ``points`` of shape
    (n_trajectories, D+1, D) and per-trajectory signed step sizes
    ``deltas`` of shape (n_trajectories, D) in factor order of the
    moves (move j changes factor ``order[j]``; the order is encoded by
    comparing consecutive points).
    """
    if n_levels < 2 or n_levels % 2:
        raise AnalysisError(f"n_levels must be even and >= 2, "
                            f"got {n_levels}")
    delta = n_levels / (2.0 * (n_levels - 1))
    grid = np.arange(n_levels // 2) / (n_levels - 1)
    points = np.empty((n_trajectories, dimension + 1, dimension))
    deltas = np.empty((n_trajectories, dimension))
    for t in range(n_trajectories):
        base = rng.choice(grid, size=dimension)
        directions = rng.choice([-1.0, 1.0], size=dimension)
        # Keep every point inside [0, 1].
        directions = np.where(base + directions * delta <= 1.0 + 1e-12,
                              directions, -directions)
        directions = np.where(base + directions * delta >= -1e-12,
                              directions, -directions)
        order = rng.permutation(dimension)
        current = base.copy()
        points[t, 0] = current
        for step, factor in enumerate(order):
            current = current.copy()
            current[factor] += directions[factor] * delta
            points[t, step + 1] = current
        deltas[t] = directions * delta
    return points, deltas


def run_morris_screening(model: ReactionBasedModel,
                         targets: Sequence[SweepTarget],
                         output: OutputFunction | None = None,
                         output_species: str | None = None,
                         n_trajectories: int = 16,
                         n_levels: int = 4,
                         t_span: tuple[float, float] = (0.0, 10.0),
                         t_eval: np.ndarray | None = None,
                         engine: str = "batched",
                         options: SolverOptions = DEFAULT_OPTIONS,
                         seed: int = 0,
                         **engine_kwargs) -> MorrisResult:
    """Elementary-effects screening over the given sweep targets."""
    targets = list(targets)
    dimension = len(targets)
    if dimension < 1:
        raise AnalysisError("Morris screening needs >= 1 target")
    if output is None:
        if output_species is None:
            raise AnalysisError("pass either output= or output_species=")
        reference = simulate(model, t_span, t_eval, None, engine, options,
                             **engine_kwargs)
        ref_value = float(
            reference.y[0, -1, model.species.index_of(output_species)])
        output = deviation_from_reference(model, output_species, ref_value)

    rng = np.random.default_rng(seed)
    points, _ = morris_design(dimension, n_trajectories, n_levels, rng)
    flat_unit = points.reshape(-1, dimension)
    values = np.stack([targets[d].range.from_unit(flat_unit[:, d])
                       for d in range(dimension)], axis=1)
    batch = build_sweep_batch(model, targets, values)
    result = simulate(model, t_span, t_eval, batch, engine, options,
                      **engine_kwargs)
    outputs = np.asarray(output(result.t, result.y), dtype=np.float64)
    outputs = outputs.reshape(n_trajectories, dimension + 1)

    effects = np.full((n_trajectories, dimension), np.nan)
    for t in range(n_trajectories):
        for step in range(dimension):
            before = points[t, step]
            after = points[t, step + 1]
            moved = int(np.argmax(np.abs(after - before)))
            span_unit = after[moved] - before[moved]
            effects[t, moved] = (outputs[t, step + 1]
                                 - outputs[t, step]) / span_unit

    mu = np.nanmean(effects, axis=0)
    mu_star = np.nanmean(np.abs(effects), axis=0)
    sigma = np.nanstd(effects, axis=0)
    return MorrisResult([t.label for t in targets], mu, mu_star, sigma,
                        n_trajectories, flat_unit.shape[0], result)
