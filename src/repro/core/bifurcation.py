"""One-parameter bifurcation scans.

Combines the steady-state solver with the sweep machinery: for every
value of a swept parameter, the steady state on the initial
conservation manifold is located and classified as stable or unstable,
and the long-run oscillation amplitude is measured from a batched
simulation — enough to localize Hopf bifurcations (stable fixed point
-> unstable fixed point + limit cycle), as in the Brusselator at
b = 1 + a^2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..model import Parameterization, ReactionBasedModel
from ..solvers.base import DEFAULT_OPTIONS, SolverOptions
from .analysis import batch_oscillation_amplitudes
from .psa import SweepTarget, build_sweep_batch
from .simulate import simulate
from .steadystate import find_steady_state


@dataclass
class BifurcationScan:
    """Result of a one-parameter bifurcation scan.

    Attributes
    ----------
    values:
        Swept parameter values, shape (B,).
    steady_states:
        Steady state per value, shape (B, N); NaN rows mark failed
        searches.
    stable:
        Stability flag per value (False also for failed searches).
    amplitudes:
        Long-run oscillation amplitude of the observed species.
    """

    target: SweepTarget
    species: str
    values: np.ndarray
    steady_states: np.ndarray
    stable: np.ndarray
    amplitudes: np.ndarray

    def hopf_intervals(self) -> list[tuple[float, float]]:
        """Parameter intervals bracketing a stability change."""
        intervals = []
        for i in range(len(self.values) - 1):
            if self.stable[i] != self.stable[i + 1]:
                intervals.append((float(self.values[i]),
                                  float(self.values[i + 1])))
        return intervals

    def table(self) -> str:
        lines = [f"{self.target.label:>12s} {'steady(' + self.species + ')':>16s} "
                 f"{'stable':>7s} {'amplitude':>10s}"]
        for i, value in enumerate(self.values):
            lines.append(f"{value:12.4g} {self.steady_states[i, 0]:16.5g} "
                         f"{str(bool(self.stable[i])):>7s} "
                         f"{self.amplitudes[i]:10.5g}")
        return "\n".join(lines)


def run_bifurcation_scan(model: ReactionBasedModel, target: SweepTarget,
                         species: str, n_points: int,
                         t_span: tuple[float, float],
                         settle_fraction: float = 0.5,
                         n_save_points: int = 400,
                         options: SolverOptions = DEFAULT_OPTIONS,
                         engine: str = "batched",
                         **engine_kwargs) -> BifurcationScan:
    """Scan one parameter: steady states, stability, amplitudes."""
    values = target.range.grid(n_points)
    species_index = model.species.index_of(species)

    steady_states = np.full((n_points, model.n_species), np.nan)
    stable = np.zeros(n_points, dtype=bool)
    batch = build_sweep_batch(model, [target], values[:, None])
    for i in range(n_points):
        parameterization = Parameterization(batch.rate_constants[i],
                                            batch.initial_states[i])
        result = find_steady_state(model, parameterization)
        if result.converged:
            steady_states[i] = result.state
            stable[i] = bool(result.stable)

    t_eval = np.linspace(t_span[0], t_span[1], n_save_points)
    simulation = simulate(model, t_span, t_eval, batch, engine, options,
                          **engine_kwargs)
    amplitudes = batch_oscillation_amplitudes(
        simulation.t, simulation.y, species_index,
        settle_fraction=settle_fraction)
    return BifurcationScan(target, species, values, steady_states, stable,
                           amplitudes)
