"""One-call structural and dynamical model report.

Bundles the quick diagnostics a modeler runs on a new RBM before any
heavy analysis: structure (size, orders, kinetics), conservation laws,
stiffness classification at the initial state, steady state on the
initial manifold with stability, and a short dynamics probe with
oscillation detection. Rendered as plain text by the CLI's ``analyze``
command.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..model import ODESystem, ReactionBasedModel
from ..solvers.base import DEFAULT_OPTIONS, SolverOptions
from ..solvers.stiffness import spectral_radius
from .analysis import oscillation_metrics
from .simulate import simulate
from .steadystate import SteadyStateResult, find_steady_state


@dataclass
class ModelReport:
    """Collected diagnostics of one model."""

    model: ReactionBasedModel
    n_conservation_laws: int
    initial_spectral_radius: float
    classified_stiff: bool
    steady_state: SteadyStateResult | None
    probe_horizon: float
    probe_status: str
    oscillating_species: list[str]
    steady_state_error: str | None = None

    def render(self) -> str:
        model = self.model
        kind = ("mass-action" if model.is_mass_action()
                else "mixed-kinetics")
        lines = [
            f"model {model.name!r}: N={model.n_species} species, "
            f"M={model.n_reactions} reactions ({kind}, max order "
            f"{model.max_order()})",
            f"conservation laws       : {self.n_conservation_laws}",
            f"Jacobian spectral radius: "
            f"{self.initial_spectral_radius:.4g} at t=0 "
            f"({'stiff' if self.classified_stiff else 'non-stiff'} "
            "classification)",
        ]
        if self.steady_state is not None and self.steady_state.converged:
            stability = ("stable" if self.steady_state.stable
                         else "unstable")
            lines.append(
                f"steady state            : found ({stability}), "
                f"residual {self.steady_state.residual_norm:.2e}, "
                f"{self.steady_state.n_iterations} Newton iterations")
        else:
            reason = (f" ({self.steady_state_error})"
                      if self.steady_state_error else "")
            lines.append("steady state            : not found from the "
                         f"initial manifold{reason}")
        lines.append(f"dynamics probe to t={self.probe_horizon:g}: "
                     f"{self.probe_status}")
        if self.oscillating_species:
            lines.append("sustained oscillations  : "
                         + ", ".join(self.oscillating_species))
        else:
            lines.append("sustained oscillations  : none detected")
        return "\n".join(lines)


def analyze_model(model: ReactionBasedModel,
                  probe_horizon: float = 50.0,
                  options: SolverOptions = DEFAULT_OPTIONS,
                  engine: str = "batched") -> ModelReport:
    """Run the standard diagnostics on a model."""
    system = ODESystem.from_model(model)
    nominal = model.nominal_parameterization()
    jacobian = system.jacobian_single(nominal.initial_state,
                                      nominal.rate_constants)
    radius = spectral_radius(jacobian)
    stiff = radius > options.stiffness_threshold

    steady: SteadyStateResult | None
    steady_error: str | None = None
    try:
        steady = find_steady_state(model, nominal)
    except Exception as error:  # diagnostics must not crash, but the
        steady = None           # failure reason belongs in the report
        steady_error = f"{type(error).__name__}: {error}"

    grid = np.linspace(0.0, probe_horizon, 501)
    probe = simulate(model, (0.0, probe_horizon), grid, None, engine,
                     options)
    oscillating = []
    if probe.all_success:
        trajectory = probe.trajectory(0)
        for index, name in enumerate(model.species.names):
            metrics = oscillation_metrics(grid, trajectory[:, index])
            if metrics.oscillating:
                oscillating.append(name)
    return ModelReport(model, model.conservation_law_basis().shape[0],
                       radius, stiff, steady, probe_horizon,
                       probe.statuses()[0], oscillating, steady_error)
