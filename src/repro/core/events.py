"""Event detection on saved trajectories.

Locates the zero crossings of an event function g(t, y) along recorded
trajectories. Working on the (dense) save grid keeps the machinery
engine-agnostic — deterministic, stochastic and batched results all
support it — and each crossing is refined by monotone cubic
interpolation of g between the bracketing grid points, giving far
better-than-grid resolution on smooth dynamics.

Typical uses: threshold crossings ("when does the infection peak pass
100?"), precise oscillation periods from upward zero crossings, and
spike counting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import AnalysisError

EventFunction = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class EventRecord:
    """One located event occurrence."""

    time: float
    index: int          # grid interval containing the event
    direction: int      # +1 rising, -1 falling


def threshold_event(species_index: int, threshold: float) -> EventFunction:
    """Event g = y[species] - threshold."""

    def event(times: np.ndarray, trajectory: np.ndarray) -> np.ndarray:
        del times
        return trajectory[:, species_index] - threshold

    return event


def find_events(times: np.ndarray, trajectory: np.ndarray,
                event: EventFunction,
                direction: int = 0) -> list[EventRecord]:
    """Locate sign changes of ``event`` along one trajectory.

    ``direction`` filters crossings: +1 keeps rising crossings
    (g goes - to +), -1 falling ones, 0 keeps both. Each bracketed
    crossing is refined with a Hermite cubic built from the g values
    and finite-difference slopes at the bracketing points.
    """
    times = np.asarray(times, dtype=np.float64)
    trajectory = np.asarray(trajectory, dtype=np.float64)
    if trajectory.ndim != 2 or trajectory.shape[0] != times.shape[0]:
        raise AnalysisError(
            f"trajectory shape {trajectory.shape} does not match grid of "
            f"{times.shape[0]} points")
    values = np.asarray(event(times, trajectory), dtype=np.float64)
    if values.shape != times.shape:
        raise AnalysisError(
            "event function must return one value per time point")

    records: list[EventRecord] = []
    for i in range(times.size - 1):
        left, right = values[i], values[i + 1]
        if not (np.isfinite(left) and np.isfinite(right)):
            continue
        if left == 0.0:
            crossing_direction = int(np.sign(right)) or 1
            if direction in (0, crossing_direction):
                records.append(EventRecord(float(times[i]), i,
                                           crossing_direction))
            continue
        if left * right >= 0.0:
            continue
        crossing_direction = 1 if right > left else -1
        if direction not in (0, crossing_direction):
            continue
        records.append(EventRecord(
            _refine(times, values, i), i, crossing_direction))
    return records


def crossing_times(times: np.ndarray, trajectory: np.ndarray,
                   event: EventFunction,
                   direction: int = 0) -> np.ndarray:
    """Just the event times, as an array."""
    return np.array([record.time
                     for record in find_events(times, trajectory, event,
                                               direction)])


def oscillation_period_from_events(times: np.ndarray,
                                   trajectory: np.ndarray,
                                   species_index: int,
                                   settle_fraction: float = 0.25
                                   ) -> float:
    """Period from successive rising mean-crossings of one species.

    More precise than peak counting on coarse grids; returns NaN when
    fewer than two rising crossings are found after the transient.
    """
    start = int(times.size * settle_fraction)
    window_t = times[start:]
    window_y = trajectory[start:]
    signal = window_y[:, species_index]
    mean_level = float(np.mean(signal))
    rising = crossing_times(window_t, window_y,
                            threshold_event(species_index, mean_level),
                            direction=1)
    if rising.size < 2:
        return float("nan")
    return float(np.mean(np.diff(rising)))


def batch_crossing_counts(times: np.ndarray, trajectories: np.ndarray,
                          event: EventFunction,
                          direction: int = 0) -> np.ndarray:
    """Number of located events per simulation, shape (B,)."""
    return np.array([
        len(find_events(times, trajectories[b], event, direction))
        for b in range(trajectories.shape[0])])


def _refine(times: np.ndarray, values: np.ndarray, interval: int) -> float:
    """Cubic-Hermite refinement of a bracketed crossing."""
    t0, t1 = times[interval], times[interval + 1]
    g0, g1 = values[interval], values[interval + 1]
    h = t1 - t0
    # Finite-difference slopes (one-sided at the array ends).
    if interval > 0:
        d0 = (values[interval + 1] - values[interval - 1]) / \
            (times[interval + 1] - times[interval - 1])
    else:
        d0 = (g1 - g0) / h
    if interval + 2 < times.size:
        d1 = (values[interval + 2] - values[interval]) / \
            (times[interval + 2] - times[interval])
    else:
        d1 = (g1 - g0) / h

    def hermite(theta: float) -> float:
        h00 = (1 + 2 * theta) * (1 - theta) ** 2
        h10 = theta * (1 - theta) ** 2
        h01 = theta ** 2 * (3 - 2 * theta)
        h11 = theta ** 2 * (theta - 1)
        return (h00 * g0 + h10 * h * d0 + h01 * g1 + h11 * h * d1)

    low, high = 0.0, 1.0
    f_low = hermite(low)
    if f_low == 0.0:
        return float(t0)
    # The cubic may wiggle; fall back to the secant point if it does
    # not bracket.
    if f_low * hermite(high) > 0:
        theta = g0 / (g0 - g1)
        return float(t0 + theta * h)
    for _ in range(60):
        mid = 0.5 * (low + high)
        f_mid = hermite(mid)
        if f_mid == 0.0:
            return float(t0 + mid * h)
        if f_low * f_mid < 0:
            high = mid
        else:
            low, f_low = mid, f_mid
    return float(t0 + 0.5 * (low + high) * h)
