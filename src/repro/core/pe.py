"""Parameter Estimation (PE) of unknown kinetic constants.

The paper family's PE workflow: a swarm optimizer proposes candidate
parameterizations, every swarm is simulated as ONE batch on the
accelerated engine, and candidates are scored by the relative distance
between their dynamics and target (observed) dynamics. The search runs
in log10 space, the natural scale for kinetic constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import AnalysisError
from ..model import ParameterizationBatch, ReactionBasedModel
from ..optim import (FuzzySelfTuningPSO, OptimizationResult,
                     ParticleSwarmOptimizer, PSOOptions)
from ..solvers.base import DEFAULT_OPTIONS, SolverOptions
from .analysis import batch_relative_distances
from .simulate import simulate

OPTIMIZERS = ("pso", "fstpso")


@dataclass(frozen=True)
class FreeParameter:
    """One kinetic constant to estimate, with log10 search bounds."""

    reaction_index: int
    low: float
    high: float

    def __post_init__(self) -> None:
        if not (0.0 < self.low < self.high):
            raise AnalysisError(
                f"free parameter bounds must satisfy 0 < low < high, got "
                f"({self.low}, {self.high})")

    @property
    def log_bounds(self) -> tuple[float, float]:
        return (np.log10(self.low), np.log10(self.high))


@dataclass
class PEResult:
    """Outcome of a parameter estimation run."""

    estimated_constants: np.ndarray   # the D recovered constants
    fitness: float                    # relative distance at the optimum
    optimization: OptimizationResult
    free_parameters: list[FreeParameter]
    n_simulations: int

    def constants_table(self, true_values: Sequence[float] | None = None,
                        names: Sequence[str] | None = None) -> str:
        """Plain-text recovered-vs-true table."""
        lines = [f"{'parameter':12s} {'estimated':>12s}"
                 + (f" {'true':>12s} {'ratio':>8s}" if true_values else "")]
        for i, value in enumerate(self.estimated_constants):
            label = (names[i] if names is not None
                     else f"k[{self.free_parameters[i].reaction_index}]")
            line = f"{label:12s} {value:12.5g}"
            if true_values:
                ratio = value / true_values[i]
                line += f" {true_values[i]:12.5g} {ratio:8.3f}"
            lines.append(line)
        return "\n".join(lines)


class ParameterEstimation:
    """Estimate kinetic constants from target dynamics.

    Parameters
    ----------
    model:
        The model with nominal (possibly wrong) constants.
    free_parameters:
        The constants to estimate with their search bounds.
    observed_species:
        Names of the species whose dynamics were observed.
    target_times, target_dynamics:
        The observation grid (T,) and values (T, len(observed_species)).
    engine:
        Simulation engine used to evaluate candidates; ``"batched"``
        evaluates a whole swarm per launch.
    failure_penalty:
        Finite fitness assigned to candidates whose simulation failed
        (quarantined rows, non-finite distances). A finite penalty —
        rather than ``inf``/NaN — keeps the swarm's velocity updates
        and fuzzy rules well-defined, so the search keeps converging
        even when part of the space is unintegrable.
    """

    def __init__(self, model: ReactionBasedModel,
                 free_parameters: Sequence[FreeParameter],
                 observed_species: Sequence[str],
                 target_times: np.ndarray,
                 target_dynamics: np.ndarray,
                 engine: str = "batched",
                 options: SolverOptions = DEFAULT_OPTIONS,
                 lint: bool = False,
                 failure_penalty: float = 1.0e6,
                 telemetry=None,
                 **engine_kwargs) -> None:
        if lint:
            from ..lint import lint_gate
            lint_gate(model)
        if not free_parameters:
            raise AnalysisError("parameter estimation needs >= 1 "
                                "free parameter")
        self.model = model
        self.free_parameters = list(free_parameters)
        for free in self.free_parameters:
            if not (0 <= free.reaction_index < model.n_reactions):
                raise AnalysisError(
                    f"free parameter index {free.reaction_index} out of "
                    f"range for {model.n_reactions} reactions")
        self.observed_indices = [model.species.index_of(name)
                                 for name in observed_species]
        self.target_times = np.asarray(target_times, dtype=np.float64)
        self.target_dynamics = np.asarray(target_dynamics, dtype=np.float64)
        if self.target_dynamics.shape != (self.target_times.size,
                                          len(self.observed_indices)):
            raise AnalysisError(
                f"target dynamics shape {self.target_dynamics.shape} does "
                f"not match ({self.target_times.size}, "
                f"{len(self.observed_indices)})")
        self.engine = engine
        self.options = options
        if not (np.isfinite(failure_penalty) and failure_penalty > 0.0):
            raise AnalysisError(
                f"failure_penalty must be finite and > 0, got "
                f"{failure_penalty}")
        self.failure_penalty = float(failure_penalty)
        self.engine_kwargs = dict(engine_kwargs)
        self.tracer = None
        if telemetry is not None and engine == "batched":
            from ..telemetry import as_tracer
            self.tracer = as_tracer(telemetry)
            self.engine_kwargs["tracer"] = self.tracer
        self.n_simulations = 0
        self.n_penalized = 0

    # ------------------------------------------------------------------

    def fitness(self, log_positions: np.ndarray) -> np.ndarray:
        """Relative-distance fitness of a swarm of log10 candidates.

        Candidates whose simulation failed (or whose distance came out
        non-finite) score ``failure_penalty`` instead of NaN/inf, so a
        partially unintegrable search space repels rather than breaks
        the swarm; ``n_penalized`` counts them across the run.
        """
        log_positions = np.atleast_2d(log_positions)
        batch = self._candidate_batch(10.0 ** log_positions)
        t_span = (float(self.target_times[0]), float(self.target_times[-1]))
        result = simulate(self.model, t_span, self.target_times, batch,
                          self.engine, self.options, **self.engine_kwargs)
        if self.tracer is not None:
            self.tracer.flush()
        self.n_simulations += batch.size
        observed = result.y[:, :, self.observed_indices]
        distances = batch_relative_distances(self.target_dynamics, observed)
        bad = result.raw.failed_mask | ~np.isfinite(distances)
        if bad.any():
            distances = np.where(bad, self.failure_penalty, distances)
            self.n_penalized += int(np.count_nonzero(bad))
        return distances

    def estimate(self, optimizer: str = "fstpso", swarm_size: int = 32,
                 n_iterations: int = 40, seed: int = 0) -> PEResult:
        """Run the swarm search and return the recovered constants."""
        if optimizer not in OPTIMIZERS:
            raise AnalysisError(f"unknown optimizer {optimizer!r}; "
                                f"expected one of {OPTIMIZERS}")
        options = PSOOptions(swarm_size=swarm_size,
                             n_iterations=n_iterations, seed=seed)
        search = (FuzzySelfTuningPSO(options) if optimizer == "fstpso"
                  else ParticleSwarmOptimizer(options))
        bounds = np.array([free.log_bounds for free in self.free_parameters])
        self.n_simulations = 0
        outcome = search.minimize(self.fitness, bounds)
        constants = 10.0 ** outcome.best_position
        return PEResult(constants, outcome.best_fitness, outcome,
                        self.free_parameters, self.n_simulations)

    # ------------------------------------------------------------------

    def _candidate_batch(self, candidate_constants: np.ndarray
                         ) -> ParameterizationBatch:
        nominal = self.model.nominal_parameterization()
        batch = candidate_constants.shape[0]
        constants = np.tile(nominal.rate_constants, (batch, 1))
        for d, free in enumerate(self.free_parameters):
            constants[:, free.reaction_index] = candidate_constants[:, d]
        states = np.tile(nominal.initial_state, (batch, 1))
        return ParameterizationBatch(constants, states)


def estimate_multi_start(estimation: ParameterEstimation,
                         n_starts: int = 4, optimizer: str = "fstpso",
                         swarm_size: int = 32, n_iterations: int = 40,
                         seed: int = 0,
                         checkpoint_path=None) -> PEResult:
    """Run several independently seeded searches; return the best.

    Swarm optimizers are stochastic; the paper family's practical PE
    protocol restarts the search and keeps the best fitness. The total
    simulation count across all starts is accumulated on the returned
    result.

    With ``checkpoint_path=`` every completed start journals its
    optimum (constants, fitness, simulation count) to a
    :class:`~repro.io.checkpoint.CampaignCheckpoint` payload, so after
    a crash or ``KeyboardInterrupt`` the identical call skips the
    finished starts and only reruns the missing ones. Resumed starts
    carry a minimal :class:`~repro.optim.OptimizationResult` (their
    optimum, no per-iteration history).
    """
    if n_starts < 1:
        raise AnalysisError(f"n_starts must be >= 1, got {n_starts}")
    checkpoint = None
    if checkpoint_path is not None:
        from ..io.checkpoint import CampaignCheckpoint
        checkpoint = CampaignCheckpoint.open(
            checkpoint_path,
            _multi_start_fingerprint(estimation, n_starts, optimizer,
                                     swarm_size, n_iterations, seed))
    best: PEResult | None = None
    total_simulations = 0
    for start in range(n_starts):
        key = f"start-{start}"
        payload = (checkpoint.get_payload(key)
                   if checkpoint is not None else None)
        if payload is not None:
            candidate = _result_from_payload(payload, estimation)
        else:
            candidate = estimation.estimate(optimizer, swarm_size,
                                            n_iterations,
                                            seed + 1000 * start)
            if checkpoint is not None:
                checkpoint.set_payload(key, {
                    "estimated_constants":
                        [float(v) for v in candidate.estimated_constants],
                    "fitness": float(candidate.fitness),
                    "n_simulations": int(candidate.n_simulations)})
        total_simulations += candidate.n_simulations
        if best is None or candidate.fitness < best.fitness:
            best = candidate
    best.n_simulations = total_simulations
    return best


def _multi_start_fingerprint(estimation: ParameterEstimation,
                             n_starts: int, optimizer: str,
                             swarm_size: int, n_iterations: int,
                             seed: int) -> dict:
    """Identity of a multi-start PE run, verified on journal reopen."""
    import hashlib
    target_sha = hashlib.sha256(
        np.ascontiguousarray(estimation.target_times).tobytes()
        + np.ascontiguousarray(estimation.target_dynamics).tobytes()
    ).hexdigest()[:16]
    return {"kind": "pe-multi-start", "model": estimation.model.name,
            "free_parameters": [[free.reaction_index, free.low, free.high]
                                for free in estimation.free_parameters],
            "observed": [int(i) for i in estimation.observed_indices],
            "target_sha": target_sha, "n_starts": int(n_starts),
            "optimizer": optimizer, "swarm_size": int(swarm_size),
            "n_iterations": int(n_iterations), "seed": int(seed)}


def _result_from_payload(payload: dict,
                         estimation: ParameterEstimation) -> PEResult:
    constants = np.asarray(payload["estimated_constants"],
                           dtype=np.float64)
    fitness = float(payload["fitness"])
    outcome = OptimizationResult(np.log10(constants), fitness,
                                 np.array([fitness]), 0, 0)
    return PEResult(constants, fitness, outcome,
                    estimation.free_parameters,
                    int(payload["n_simulations"]))


def synthetic_target(model: ReactionBasedModel,
                     observed_species: Sequence[str],
                     t_span: tuple[float, float], n_points: int = 25,
                     options: SolverOptions = DEFAULT_OPTIONS,
                     engine: str = "batched"
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Simulate a ground-truth model to produce PE target dynamics."""
    times = np.linspace(t_span[0], t_span[1], n_points)
    result = simulate(model, t_span, times, None, engine, options)
    indices = [model.species.index_of(name) for name in observed_species]
    return times, result.y[0][:, indices]
