"""Variance-based (Sobol) sensitivity analysis with Saltelli sampling.

Reproduces the SA workflow of the paper family: the initial
concentrations of selected species are sampled with the Saltelli
cross-sampling scheme, every design point is simulated in one batch on
the accelerated engine, a scalar output is derived per simulation
(by default: deviation of a read-out species' final concentration from
the nominal reference), and first- and total-order Sobol indices are
estimated with bootstrap confidence intervals.

Estimators: Saltelli (2010) for the first order,
Jansen for the total order — the combination with the lowest error
rates recommended in the variance-based SA literature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import AnalysisError
from ..model import ReactionBasedModel
from ..resilience.campaign import CampaignConfig
from ..resilience.quarantine import QuarantineLog
from ..solvers.base import DEFAULT_OPTIONS, SolverOptions
from .psa import SweepTarget, build_sweep_batch, resilient_simulate
from .sampling import ParameterRange, saltelli_sample
from .simulate import SimulationResult, simulate

OutputFunction = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass
class SobolResult:
    """Sobol sensitivity indices with confidence intervals.

    All arrays are indexed like the input target list. Confidence
    half-widths correspond to the requested confidence level.
    """

    labels: list[str]
    first_order: np.ndarray
    first_order_ci: np.ndarray
    total_order: np.ndarray
    total_order_ci: np.ndarray
    n_base_samples: int
    n_simulations: int
    simulation: SimulationResult
    confidence_level: float
    #: Pairwise interaction indices S2[i, j] (NaN diagonal); only
    #: filled when the analysis ran with second_order=True.
    second_order: np.ndarray | None = None
    #: Design points whose simulation failed (or produced a non-finite
    #: output) and were therefore excluded from the estimators.
    n_failed_simulations: int = 0
    #: Base samples whose *entire* Saltelli cross-block survived; the
    #: estimators are computed over exactly these.
    n_surviving_base_samples: int = 0
    #: Rows that exhausted the engine's retry ladder (empty without a
    #: retry policy).
    quarantine: QuarantineLog = field(default_factory=QuarantineLog)
    #: True when a campaign deadline truncated the design.
    incomplete: bool = False

    def ranking(self) -> list[tuple[str, float]]:
        """Targets ranked by total-order index, most influential first."""
        order = np.argsort(self.total_order)[::-1]
        return [(self.labels[i], float(self.total_order[i])) for i in order]

    def table(self) -> str:
        """Plain-text table mirroring the paper family's SA output."""
        lines = [f"{'target':24s} {'S1':>8s} {'S1_conf':>8s} "
                 f"{'ST':>8s} {'ST_conf':>8s}"]
        for i, label in enumerate(self.labels):
            lines.append(
                f"{label:24s} {self.first_order[i]:8.3f} "
                f"{self.first_order_ci[i]:8.3f} {self.total_order[i]:8.3f} "
                f"{self.total_order_ci[i]:8.3f}")
        return "\n".join(lines)


def deviation_from_reference(model: ReactionBasedModel, species_name: str,
                             reference_value: float) -> OutputFunction:
    """Output: |final concentration - reference| of one species."""
    index = model.species.index_of(species_name)

    def output(times: np.ndarray, trajectories: np.ndarray) -> np.ndarray:
        del times
        return np.abs(trajectories[:, -1, index] - reference_value)

    return output


def run_sobol_sa(model: ReactionBasedModel,
                 targets: Sequence[SweepTarget] | None = None,
                 species: Sequence[str] | None = None,
                 ranges: Sequence[ParameterRange] | None = None,
                 output: OutputFunction | None = None,
                 output_species: str | None = None,
                 base_samples: int = 256,
                 t_span: tuple[float, float] = (0.0, 10.0),
                 t_eval: np.ndarray | None = None,
                 engine: str = "batched",
                 options: SolverOptions = DEFAULT_OPTIONS,
                 seed: int = 0,
                 bootstrap: int = 200,
                 confidence_level: float = 0.95,
                 second_order: bool = False,
                 lint: bool = False,
                 campaign: CampaignConfig | None = None,
                 min_surviving_fraction: float = 0.5,
                 telemetry=None,
                 **engine_kwargs) -> SobolResult:
    """Run the full Saltelli-sample / simulate / estimate pipeline.

    Either pass explicit ``targets`` (any sweepable quantity) or the
    shorthand ``species`` + ``ranges`` (initial concentrations).
    The scalar ``output`` defaults to the deviation of
    ``output_species``' final concentration from its nominal-reference
    final value. With ``lint=True`` the model is statically checked
    first (see :func:`repro.lint.lint_gate`).

    Failed design points (quarantined rows, non-finite outputs,
    never-started campaign rows) do not poison the indices: a base
    sample is kept only when *all* of its Saltelli cross-block rows
    succeeded, and the estimators are re-weighted over the surviving
    base samples. If fewer than ``min_surviving_fraction`` of the base
    samples survive the estimate is considered meaningless and an
    :class:`~repro.errors.AnalysisError` is raised. ``campaign=`` runs
    the design as a resilient chunked campaign (see
    :func:`repro.resilience.run_campaign`).
    """
    if lint:
        from ..lint import lint_gate
        lint_gate(model)
    targets = _resolve_targets(model, targets, species, ranges)
    dimension = len(targets)
    if dimension < 1:
        raise AnalysisError("sensitivity analysis needs >= 1 target")
    if output is None:
        if output_species is None:
            raise AnalysisError("pass either output= or output_species=")
        # Fault injection addresses rows of the *design* batch; the
        # single-row nominal reference must never be poisoned by it.
        reference_kwargs = {k: v for k, v in engine_kwargs.items()
                            if k != "fault_plan"}
        reference = simulate(model, t_span, t_eval, None, engine, options,
                             **reference_kwargs)
        ref_value = float(
            reference.y[0, -1, model.species.index_of(output_species)])
        output = deviation_from_reference(model, output_species, ref_value)

    design = saltelli_sample([t.range for t in targets], base_samples,
                             seed, second_order=second_order)
    batch = build_sweep_batch(model, targets, design)
    result, quarantine, incomplete = resilient_simulate(
        model, t_span, t_eval, batch, engine, options, campaign,
        engine_kwargs, telemetry)
    outputs = np.asarray(output(result.t, result.y), dtype=np.float64)
    if outputs.shape[0] != design.shape[0]:
        raise AnalysisError(
            f"output function returned {outputs.shape[0]} values for "
            f"{design.shape[0]} design points")

    valid = result.raw.success_mask & np.isfinite(outputs)
    surviving = _surviving_base_samples(valid, base_samples, dimension,
                                        second_order)
    n_failed = int(np.count_nonzero(~valid))
    n_surviving = int(np.count_nonzero(surviving))
    if n_surviving < max(2, int(np.ceil(min_surviving_fraction
                                        * base_samples))):
        raise AnalysisError(
            f"only {n_surviving}/{base_samples} Saltelli base samples "
            f"survived ({n_failed} failed design point(s), "
            f"{len(quarantine)} quarantined); indices over so few "
            "survivors are meaningless — widen tolerances, add a retry "
            "policy, or shrink the sampled ranges")

    a_block, ab_blocks, ba_blocks, b_block = _split_blocks(
        outputs, base_samples, dimension, second_order)
    keep = np.flatnonzero(surviving)
    a_block = a_block[keep]
    ab_blocks = [ab[keep] for ab in ab_blocks]
    ba_blocks = [ba[keep] for ba in ba_blocks]
    b_block = b_block[keep]

    first, total = _estimate_indices(a_block, ab_blocks, b_block)
    first_ci, total_ci = _bootstrap_intervals(
        a_block, ab_blocks, b_block, bootstrap, confidence_level, seed)
    interactions = None
    if second_order:
        interactions = _estimate_second_order(a_block, ab_blocks,
                                              ba_blocks, b_block, first)

    return SobolResult([t.label for t in targets], first, first_ci, total,
                       total_ci, base_samples, design.shape[0], result,
                       confidence_level, interactions,
                       n_failed_simulations=n_failed,
                       n_surviving_base_samples=n_surviving,
                       quarantine=quarantine, incomplete=incomplete)


# ----------------------------------------------------------------------


def _resolve_targets(model, targets, species, ranges):
    if targets is not None:
        return list(targets)
    if species is None or ranges is None:
        raise AnalysisError("pass either targets= or species= and ranges=")
    if len(species) != len(ranges):
        raise AnalysisError(
            f"{len(species)} species but {len(ranges)} ranges")
    return [SweepTarget.initial_concentration(model, name, rng)
            for name, rng in zip(species, ranges)]


def _surviving_base_samples(valid: np.ndarray, base: int, dimension: int,
                            second_order: bool) -> np.ndarray:
    """Base samples whose whole Saltelli cross-block succeeded.

    The design is block-contiguous — rows ``[A | AB_1..AB_d | (BA) |
    B]`` each of size ``base`` — so reshaping to (blocks, base) aligns
    every block's copy of base sample ``i`` in column ``i``. Every
    estimator contrasts rows *across* blocks at fixed ``i``, so one
    failure anywhere in the column invalidates the whole column.
    """
    block_count = (2 * dimension + 2) if second_order else (dimension + 2)
    return valid.reshape(block_count, base).all(axis=0)


def _split_blocks(outputs: np.ndarray, base: int, dimension: int,
                  second_order: bool = False):
    block_count = (2 * dimension + 2) if second_order else (dimension + 2)
    expected = base * block_count
    if outputs.shape[0] != expected:
        raise AnalysisError(
            f"Saltelli design expects {expected} outputs, got "
            f"{outputs.shape[0]}")
    a_block = outputs[:base]
    ab_blocks = [outputs[(1 + d) * base:(2 + d) * base]
                 for d in range(dimension)]
    ba_blocks = []
    if second_order:
        offset = 1 + dimension
        ba_blocks = [outputs[(offset + d) * base:(offset + d + 1) * base]
                     for d in range(dimension)]
    b_block = outputs[-base:]
    return a_block, ab_blocks, ba_blocks, b_block


def _estimate_second_order(a_block, ab_blocks, ba_blocks, b_block,
                           first) -> np.ndarray:
    """Saltelli (2002) pairwise interaction estimator."""
    dimension = len(ab_blocks)
    variance = np.var(np.concatenate([a_block, b_block]))
    interactions = np.full((dimension, dimension), np.nan)
    if variance <= 0.0:
        interactions[~np.eye(dimension, dtype=bool)] = 0.0
        return interactions
    baseline = np.mean(a_block * b_block)
    for i in range(dimension):
        for j in range(dimension):
            if i == j:
                continue
            closed = (np.mean(ba_blocks[i] * ab_blocks[j]) - baseline) \
                / variance
            interactions[i, j] = closed - first[i] - first[j]
    return interactions


def _estimate_indices(a_block: np.ndarray, ab_blocks: list[np.ndarray],
                      b_block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    variance = np.var(np.concatenate([a_block, b_block]))
    if variance <= 0.0:
        dimension = len(ab_blocks)
        return np.zeros(dimension), np.zeros(dimension)
    first = np.array([np.mean(b_block * (ab - a_block)) / variance
                      for ab in ab_blocks])
    total = np.array([0.5 * np.mean((a_block - ab) ** 2) / variance
                      for ab in ab_blocks])
    return first, total


def _bootstrap_intervals(a_block, ab_blocks, b_block, bootstrap,
                         confidence_level, seed):
    dimension = len(ab_blocks)
    if bootstrap < 2:
        return np.zeros(dimension), np.zeros(dimension)
    rng = np.random.default_rng(seed + 1)
    base = a_block.shape[0]
    first_samples = np.empty((bootstrap, dimension))
    total_samples = np.empty((bootstrap, dimension))
    for b in range(bootstrap):
        rows = rng.integers(base, size=base)
        first_samples[b], total_samples[b] = _estimate_indices(
            a_block[rows], [ab[rows] for ab in ab_blocks], b_block[rows])
    # Normal-approximation half-width at the requested confidence.
    from scipy.stats import norm
    z_value = norm.ppf(0.5 + confidence_level / 2.0)
    return (z_value * np.std(first_samples, axis=0),
            z_value * np.std(total_samples, axis=0))
