"""Steady-state analysis of reaction-based models.

Finds states with dX/dt = 0 by a damped Newton iteration on the
compiled RHS with its analytic Jacobian. Mass-action networks typically
carry conservation laws, which make the Jacobian structurally singular;
the solver therefore replaces one Newton row per conservation law with
the constraint w . (x - x0) = 0, pinning the steady state to the
invariant manifold of the starting point — the standard treatment in
metabolic steady-state analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConvergenceError
from ..model import ODESystem, Parameterization, ReactionBasedModel


@dataclass
class SteadyStateResult:
    """Outcome of a steady-state search.

    Attributes
    ----------
    state:
        The steady state found, shape (N,).
    residual_norm:
        Max-norm of dX/dt at the returned state.
    n_iterations:
        Newton iterations used.
    converged:
        Whether the residual tolerance was met.
    stable:
        Whether all Jacobian eigenvalues (restricted to the dynamics)
        have non-positive real part at the state; None when the check
        was skipped.
    """

    state: np.ndarray
    residual_norm: float
    n_iterations: int
    converged: bool
    stable: bool | None = None


def find_steady_state(model: ReactionBasedModel,
                      parameterization: Parameterization | None = None,
                      initial_guess: np.ndarray | None = None,
                      tol: float = 1e-10, max_iterations: int = 100,
                      check_stability: bool = True) -> SteadyStateResult:
    """Damped-Newton steady-state search on the invariant manifold.

    The search starts from ``initial_guess`` (default: the
    parameterization's initial state) and stays on that state's
    conservation manifold. Raises :class:`ConvergenceError` only for a
    structurally broken setup; non-convergence is reported in the
    result so callers can retry from other guesses.
    """
    if parameterization is None:
        parameterization = model.nominal_parameterization()
    model.check_parameterization(parameterization)
    system = ODESystem.from_model(model)
    constants = parameterization.rate_constants
    x0 = (parameterization.initial_state if initial_guess is None
          else np.asarray(initial_guess, dtype=np.float64))
    n = x0.shape[0]

    laws = model.conservation_law_basis()
    pinned_rows = _pivot_rows(laws)

    state = x0.copy()
    residual = system.rhs_single(state, constants)
    residual_norm = float(np.max(np.abs(residual)))
    iterations = 0
    converged = residual_norm <= tol

    while not converged and iterations < max_iterations:
        iterations += 1
        jacobian = system.jacobian_single(state, constants)
        rhs_vector = -residual.copy()
        for law_index, row in enumerate(pinned_rows):
            jacobian[row, :] = laws[law_index]
            rhs_vector[row] = -laws[law_index].dot(state - x0)
        try:
            step = np.linalg.solve(jacobian, rhs_vector)
        except np.linalg.LinAlgError:
            # Singular beyond the conservation structure: perturb.
            jacobian += 1e-12 * np.eye(n)
            step = np.linalg.lstsq(jacobian, rhs_vector, rcond=None)[0]

        # Damped line search with positivity projection.
        damping = 1.0
        best_state = None
        for _ in range(30):
            candidate = np.maximum(state + damping * step, 0.0)
            candidate_residual = system.rhs_single(candidate, constants)
            candidate_norm = float(np.max(np.abs(candidate_residual)))
            if candidate_norm < residual_norm or damping < 1e-6:
                best_state = candidate
                residual = candidate_residual
                residual_norm = candidate_norm
                break
            damping *= 0.5
        if best_state is None:  # pragma: no cover - loop always sets it
            raise ConvergenceError("line search failed to produce a step")
        state = best_state
        converged = residual_norm <= tol

    stable = None
    if check_stability and converged:
        stable = _is_stable(system, state, constants, laws)
    return SteadyStateResult(state, residual_norm, iterations, converged,
                             stable)


def _pivot_rows(laws: np.ndarray) -> list[int]:
    """One distinct pinning row per conservation law (greedy pivoting)."""
    rows: list[int] = []
    for law in laws:
        order = np.argsort(-np.abs(law))
        for candidate in order:
            if int(candidate) not in rows:
                rows.append(int(candidate))
                break
    return rows


def _is_stable(system: ODESystem, state: np.ndarray,
               constants: np.ndarray, laws: np.ndarray,
               tolerance: float = 1e-8) -> bool:
    """Linear stability restricted to the dynamics' subspace.

    Eigendirections along conservation laws have eigenvalue zero by
    construction and do not count against stability.
    """
    jacobian = system.jacobian_single(state, constants)
    eigenvalues = np.linalg.eigvals(jacobian)
    significant = eigenvalues[np.abs(eigenvalues) > tolerance]
    del laws
    return bool(np.all(significant.real <= tolerance))
