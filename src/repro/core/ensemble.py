"""Ensemble statistics for stochastic batches.

Quantifies intrinsic noise across replicate trajectories: time-resolved
mean/variance envelopes, the Fano factor (variance over mean, the
standard dispersion diagnostic — 1 for Poissonian fluctuations),
stationary histograms (which expose bimodality invisible to the ODE
limit) and the normalized autocorrelation of a species' fluctuations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError


@dataclass(frozen=True)
class EnsembleSummary:
    """Time-resolved first and second moments of an ensemble.

    Arrays are (T, N): one row per save time, one column per species.
    """

    t: np.ndarray
    mean: np.ndarray
    variance: np.ndarray

    @property
    def std(self) -> np.ndarray:
        return np.sqrt(self.variance)

    def fano_factor(self) -> np.ndarray:
        """Variance / mean per time and species (NaN where mean = 0)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(self.mean > 0, self.variance / self.mean,
                            np.nan)


def summarize_ensemble(times: np.ndarray,
                       trajectories: np.ndarray) -> EnsembleSummary:
    """Moments of an ensemble of trajectories, shape (B, T, N)."""
    trajectories = np.asarray(trajectories, dtype=np.float64)
    if trajectories.ndim != 3:
        raise AnalysisError(
            f"expected (B, T, N) trajectories, got {trajectories.shape}")
    if trajectories.shape[0] < 2:
        raise AnalysisError("ensemble statistics need >= 2 replicas")
    return EnsembleSummary(np.asarray(times, dtype=np.float64),
                           trajectories.mean(axis=0),
                           trajectories.var(axis=0, ddof=1))


def stationary_histogram(trajectories: np.ndarray, species_index: int,
                         n_bins: int = 20,
                         settle_fraction: float = 0.5
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of one species' values over the stationary window.

    Pools the last (1 - settle_fraction) of every replica. Returns
    (bin_edges, probabilities); probabilities sum to 1.
    """
    trajectories = np.asarray(trajectories, dtype=np.float64)
    start = int(trajectories.shape[1] * settle_fraction)
    samples = trajectories[:, start:, species_index].ravel()
    samples = samples[np.isfinite(samples)]
    if samples.size == 0:
        raise AnalysisError("no finite samples in the stationary window")
    counts, edges = np.histogram(samples, bins=n_bins)
    return edges, counts / counts.sum()


def is_bimodal(edges: np.ndarray, probabilities: np.ndarray,
               prominence: float = 0.05) -> bool:
    """Crude bimodality check: two separated histogram modes, each
    holding at least ``prominence`` of the mass, with a valley between
    them below half the smaller mode."""
    del edges
    peaks = []
    last = probabilities.size - 1
    for i in range(probabilities.size):
        left_ok = i == 0 or probabilities[i] >= probabilities[i - 1]
        right_ok = i == last or probabilities[i] >= probabilities[i + 1]
        if left_ok and right_ok and probabilities[i] >= prominence:
            peaks.append(i)
    if len(peaks) < 2:
        return False
    first, last = peaks[0], peaks[-1]
    if last - first < 2:
        return False
    valley = probabilities[first + 1:last].min()
    return valley < 0.5 * min(probabilities[first], probabilities[last])


def autocorrelation(times: np.ndarray, trajectories: np.ndarray,
                    species_index: int, max_lag: int | None = None
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Ensemble-averaged normalized autocorrelation of fluctuations.

    Returns (lags_in_time_units, correlation) with correlation[0] = 1.
    """
    trajectories = np.asarray(trajectories, dtype=np.float64)
    signal = trajectories[:, :, species_index]
    fluctuations = signal - signal.mean(axis=1, keepdims=True)
    n_points = fluctuations.shape[1]
    if max_lag is None:
        max_lag = n_points // 2
    max_lag = min(max_lag, n_points - 1)
    variance = np.mean(fluctuations ** 2)
    if variance <= 0.0:
        raise AnalysisError("signal has zero variance")
    correlation = np.empty(max_lag + 1)
    for lag in range(max_lag + 1):
        products = fluctuations[:, :n_points - lag] * \
            fluctuations[:, lag:]
        correlation[lag] = np.mean(products) / variance
    dt = float(times[1] - times[0]) if len(times) > 1 else 1.0
    return np.arange(max_lag + 1) * dt, correlation
