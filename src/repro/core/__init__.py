"""Parameter-space analysis core: simulate, PSA, SA, PE, comparisons."""

from .analysis import (OscillationMetrics, batch_oscillation_amplitudes,
                       batch_relative_distances, final_value,
                       oscillation_metrics, relative_distance,
                       steady_state_time)
from .comparison import (MAP_ENGINES, CellTiming, ComparisonMap,
                         run_comparison_map, time_engine)
from .bifurcation import BifurcationScan, run_bifurcation_scan
from .ensemble import (EnsembleSummary, autocorrelation, is_bimodal,
                       stationary_histogram, summarize_ensemble)
from .events import (EventRecord, batch_crossing_counts, crossing_times,
                     find_events, oscillation_period_from_events,
                     threshold_event)
from .morris import MorrisResult, morris_design, run_morris_screening
from .pe import (OPTIMIZERS, FreeParameter, ParameterEstimation, PEResult,
                 estimate_multi_start, synthetic_target)
from .report import ModelReport, analyze_model
from .psa import (PSA1DResult, PSA2DResult, SweepTarget, amplitude_metric,
                  build_sweep_batch, endpoint_metric, run_psa_1d, run_psa_2d)
from .sa import SobolResult, deviation_from_reference, run_sobol_sa
from .sampling import (ParameterRange, saltelli_block_count, saltelli_sample,
                       sample_grid, sample_latin_hypercube, sample_sobol,
                       sample_uniform)
from .simulate import (ENGINES, SEQUENTIAL_ENGINES, SequentialSimulator,
                       SimulationResult, simulate)
from .steadystate import SteadyStateResult, find_steady_state

__all__ = [
    "OscillationMetrics", "batch_oscillation_amplitudes",
    "batch_relative_distances", "final_value", "oscillation_metrics",
    "relative_distance", "steady_state_time",
    "MAP_ENGINES", "CellTiming", "ComparisonMap", "run_comparison_map",
    "time_engine",
    "OPTIMIZERS", "FreeParameter", "ParameterEstimation", "PEResult",
    "estimate_multi_start", "synthetic_target",
    "BifurcationScan", "run_bifurcation_scan",
    "EnsembleSummary", "autocorrelation", "is_bimodal",
    "stationary_histogram", "summarize_ensemble",
    "EventRecord", "batch_crossing_counts", "crossing_times",
    "find_events", "oscillation_period_from_events", "threshold_event",
    "MorrisResult", "morris_design", "run_morris_screening",
    "ModelReport", "analyze_model",
    "PSA1DResult", "PSA2DResult", "SweepTarget", "amplitude_metric",
    "build_sweep_batch", "endpoint_metric", "run_psa_1d", "run_psa_2d",
    "SobolResult", "deviation_from_reference", "run_sobol_sa",
    "ParameterRange", "saltelli_block_count", "saltelli_sample",
    "sample_grid", "sample_latin_hypercube", "sample_sobol",
    "sample_uniform",
    "ENGINES", "SEQUENTIAL_ENGINES", "SequentialSimulator",
    "SimulationResult", "simulate",
    "SteadyStateResult", "find_steady_state",
]
