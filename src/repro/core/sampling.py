"""Parameter-space sampling schemes.

Provides the samplers the analyses are built on: uniform / log-uniform
Monte Carlo, regular grids, Latin Hypercube, Sobol' low-discrepancy
sequences, and the Saltelli cross-sampling scheme used by the
variance-based sensitivity analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import qmc

from ..errors import AnalysisError


@dataclass(frozen=True)
class ParameterRange:
    """A one-dimensional sweep interval.

    ``log`` selects log-uniform spacing/sampling — the natural scale
    for kinetic constants and concentrations, which span orders of
    magnitude.
    """

    low: float
    high: float
    log: bool = False

    def __post_init__(self) -> None:
        if not (self.high > self.low):
            raise AnalysisError(
                f"empty parameter range [{self.low}, {self.high}]")
        if self.log and self.low <= 0.0:
            raise AnalysisError(
                f"log-scale range requires low > 0, got {self.low}")

    def grid(self, count: int) -> np.ndarray:
        """``count`` evenly spaced values (in the selected scale)."""
        if count < 2:
            raise AnalysisError(f"grid needs >= 2 points, got {count}")
        if self.log:
            return np.geomspace(self.low, self.high, count)
        return np.linspace(self.low, self.high, count)

    def from_unit(self, unit: np.ndarray) -> np.ndarray:
        """Map samples in [0, 1] into the range."""
        unit = np.asarray(unit, dtype=np.float64)
        if self.log:
            return np.exp(np.log(self.low)
                          + unit * (np.log(self.high) - np.log(self.low)))
        return self.low + unit * (self.high - self.low)


def sample_uniform(ranges: list[ParameterRange], count: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Independent (log-)uniform Monte Carlo samples, shape (count, D)."""
    unit = rng.random((count, len(ranges)))
    return _map_unit(unit, ranges)


def sample_grid(ranges: list[ParameterRange],
                points_per_axis: int) -> np.ndarray:
    """Full-factorial grid, shape (points_per_axis^D, D)."""
    axes = [r.grid(points_per_axis) for r in ranges]
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.stack([m.ravel() for m in mesh], axis=1)


def sample_latin_hypercube(ranges: list[ParameterRange], count: int,
                           rng: np.random.Generator) -> np.ndarray:
    """Latin Hypercube samples (own implementation), shape (count, D)."""
    dimension = len(ranges)
    unit = np.empty((count, dimension))
    for d in range(dimension):
        permutation = rng.permutation(count)
        unit[:, d] = (permutation + rng.random(count)) / count
    return _map_unit(unit, ranges)


def sample_sobol(ranges: list[ParameterRange], count: int,
                 seed: int = 0) -> np.ndarray:
    """Sobol' low-discrepancy samples, shape (count, D).

    ``count`` need not be a power of two, but powers of two give the
    best discrepancy (a warning from SciPy is silenced by sampling the
    next power of two and truncating).
    """
    dimension = len(ranges)
    sampler = qmc.Sobol(d=dimension, scramble=True, seed=seed)
    budget = 1 << int(np.ceil(np.log2(max(count, 1))))
    unit = sampler.random(budget)[:count]
    return _map_unit(unit, ranges)


def saltelli_sample(ranges: list[ParameterRange], base_count: int,
                    seed: int = 0,
                    second_order: bool = False) -> np.ndarray:
    """Saltelli's cross-sampling scheme for Sobol index estimation.

    Returns the stacked design matrix of shape
    ``(base_count * (D + 2), D)`` — or ``(base_count * (2D + 2), D)``
    with ``second_order`` — laid out as [A; AB_1; ...; AB_D; (BA_i...);
    B], the layout :mod:`repro.core.sa` expects.
    """
    dimension = len(ranges)
    sampler = qmc.Sobol(d=2 * dimension, scramble=True, seed=seed)
    budget = 1 << int(np.ceil(np.log2(max(base_count, 1))))
    unit = sampler.random(budget)[:base_count]
    a_matrix = unit[:, :dimension]
    b_matrix = unit[:, dimension:]
    blocks = [a_matrix]
    for d in range(dimension):
        ab = a_matrix.copy()
        ab[:, d] = b_matrix[:, d]
        blocks.append(ab)
    if second_order:
        for d in range(dimension):
            ba = b_matrix.copy()
            ba[:, d] = a_matrix[:, d]
            blocks.append(ba)
    blocks.append(b_matrix)
    return _map_unit(np.vstack(blocks), ranges)


def saltelli_block_count(dimension: int, second_order: bool = False) -> int:
    """Number of base-sample blocks the Saltelli design contains."""
    return 2 * dimension + 2 if second_order else dimension + 2


def _map_unit(unit: np.ndarray, ranges: list[ParameterRange]) -> np.ndarray:
    if unit.shape[1] != len(ranges):
        raise AnalysisError(
            f"sample dimension {unit.shape[1]} does not match "
            f"{len(ranges)} ranges")
    columns = [r.from_unit(unit[:, d]) for d, r in enumerate(ranges)]
    return np.stack(columns, axis=1)
