"""Parameter Sweep Analysis (PSA-1D and PSA-2D).

The headline use case of the accelerated simulator: sample one or two
parameters of a model over ranges, simulate every point as one batch on
the engine, and derive a scalar metric per point (end-point value,
oscillation amplitude, ...). The PSA-2D output is the kind of
two-parameter oscillation-amplitude map the paper family computes for
the autophagy/translation switch.

Sweep targets may be:

* one kinetic constant (``SweepTarget.rate_constant``),
* one species' initial concentration
  (``SweepTarget.initial_concentration``),
* a *scaling group* multiplying many kinetic constants at once
  (``SweepTarget.rate_scale``) — the analog of the paper's P9
  parameter, which modifies thousands of derived constants together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import AnalysisError
from ..model import ParameterizationBatch, ReactionBasedModel
from ..resilience.campaign import CampaignConfig
from ..resilience.quarantine import QuarantineLog
from ..solvers.base import DEFAULT_OPTIONS, SolverOptions
from .analysis import batch_oscillation_amplitudes, final_value
from .sampling import ParameterRange
from .simulate import SimulationResult, simulate

MetricFunction = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class SweepTarget:
    """One swept quantity of a model.

    Use the factory class methods rather than the constructor.
    """

    kind: str
    selector: tuple[int, ...]
    range: ParameterRange
    label: str

    @classmethod
    def rate_constant(cls, model: ReactionBasedModel, reaction_index: int,
                      range_: ParameterRange) -> "SweepTarget":
        if not (0 <= reaction_index < model.n_reactions):
            raise AnalysisError(
                f"reaction index {reaction_index} out of range for model "
                f"with {model.n_reactions} reactions")
        return cls("rate_constant", (reaction_index,), range_,
                   f"k[{reaction_index}]")

    @classmethod
    def initial_concentration(cls, model: ReactionBasedModel,
                              species_name: str,
                              range_: ParameterRange) -> "SweepTarget":
        index = model.species.index_of(species_name)
        return cls("initial_concentration", (index,), range_,
                   f"{species_name}(0)")

    @classmethod
    def rate_scale(cls, model: ReactionBasedModel,
                   reaction_indices: Sequence[int],
                   range_: ParameterRange,
                   label: str = "scale") -> "SweepTarget":
        """Sweep a multiplier applied to a whole group of constants."""
        indices = tuple(int(i) for i in reaction_indices)
        if not indices:
            raise AnalysisError("rate_scale target needs >= 1 reaction")
        for i in indices:
            if not (0 <= i < model.n_reactions):
                raise AnalysisError(f"reaction index {i} out of range")
        return cls("rate_scale", indices, range_, label)


def build_sweep_batch(model: ReactionBasedModel,
                      targets: Sequence[SweepTarget],
                      values: np.ndarray) -> ParameterizationBatch:
    """Batch of parameterizations with target columns set per row.

    ``values`` has shape (B, D) with D = len(targets); untouched
    parameters keep their nominal values.
    """
    values = np.atleast_2d(np.asarray(values, dtype=np.float64))
    if values.shape[1] != len(targets):
        raise AnalysisError(
            f"values have {values.shape[1]} columns for {len(targets)} "
            "targets")
    batch = values.shape[0]
    nominal = model.nominal_parameterization()
    constants = np.tile(nominal.rate_constants, (batch, 1))
    states = np.tile(nominal.initial_state, (batch, 1))
    for d, target in enumerate(targets):
        column = values[:, d]
        if target.kind == "rate_constant":
            constants[:, target.selector[0]] = column
        elif target.kind == "initial_concentration":
            states[:, target.selector[0]] = column
        elif target.kind == "rate_scale":
            indices = list(target.selector)
            constants[:, indices] = (nominal.rate_constants[indices][None, :]
                                     * column[:, None])
        else:  # pragma: no cover - guarded by the factories
            raise AnalysisError(f"unknown sweep target kind {target.kind!r}")
    return ParameterizationBatch(constants, states)


# ----------------------------------------------------------------------
# resilient execution shared by the analyses


def resilient_simulate(model, t_span, t_eval, batch, engine, options,
                       campaign: CampaignConfig | None, engine_kwargs,
                       telemetry=None
                       ) -> tuple[SimulationResult, QuarantineLog, bool]:
    """Simulate a batch directly or as a journaled campaign.

    Returns ``(simulation, quarantine, incomplete)``. With
    ``campaign=None`` this is a plain :func:`simulate` call whose
    quarantine comes from the engine report (non-empty only when the
    engine ran with a retry policy); with a
    :class:`~repro.resilience.CampaignConfig` the batch runs through
    :func:`repro.resilience.run_campaign` — chunked, checkpointed,
    deadline-aware — and ``incomplete`` flags a deadline-truncated
    partial result whose unstarted rows carry the ``running`` status.

    ``telemetry`` (``None`` / tracer / trace path, see
    :func:`repro.telemetry.as_tracer`) records the analysis: campaign
    runs emit the full ``campaign > chunk > launch`` hierarchy, direct
    batched runs the ``launch``-rooted subtree.
    """
    if campaign is None:
        kwargs = dict(engine_kwargs)
        tracer = None
        if engine == "batched" and telemetry is not None:
            from ..telemetry import as_tracer
            tracer = kwargs["tracer"] = as_tracer(telemetry)
        result = simulate(model, t_span, t_eval, batch, engine, options,
                          **kwargs)
        if tracer is not None:
            tracer.flush()
        return result, result.quarantine, False
    from ..resilience.campaign import run_campaign
    outcome = run_campaign(model, t_span, t_eval, batch, engine=engine,
                           options=options, config=campaign,
                           telemetry=telemetry, **engine_kwargs)
    result = SimulationResult(model, outcome.result, engine,
                              outcome.result.elapsed_seconds)
    return result, outcome.quarantine, outcome.incomplete


def _masked_metric(metric: MetricFunction | None,
                   simulation: SimulationResult) -> np.ndarray | None:
    """Evaluate a metric with non-successful rows forced to NaN.

    Quarantined / failed / never-started rows carry NaN trajectories
    whose metric value is numerically meaningless; masking them here
    guarantees they render as '?' holes instead of polluting maps.
    """
    if metric is None:
        return None
    values = np.array(metric(simulation.t, simulation.y), dtype=np.float64)
    values[simulation.raw.failed_mask] = np.nan
    return values


# ----------------------------------------------------------------------
# metric helpers


def endpoint_metric(model: ReactionBasedModel,
                    species_name: str) -> MetricFunction:
    """Metric: final concentration of one species."""
    index = model.species.index_of(species_name)

    def metric(times: np.ndarray, trajectories: np.ndarray) -> np.ndarray:
        del times
        return final_value(trajectories, index)

    return metric


def amplitude_metric(model: ReactionBasedModel, species_name: str,
                     **kwargs) -> MetricFunction:
    """Metric: sustained-oscillation amplitude of one species."""
    index = model.species.index_of(species_name)

    def metric(times: np.ndarray, trajectories: np.ndarray) -> np.ndarray:
        return batch_oscillation_amplitudes(times, trajectories, index,
                                            **kwargs)

    return metric


# ----------------------------------------------------------------------
# sweeps


@dataclass
class PSA1DResult:
    """Result of a one-dimensional parameter sweep.

    ``metric_values`` is NaN at every sweep point whose simulation did
    not succeed; such points are listed in ``quarantine`` when the
    engine ran with a retry policy. ``incomplete`` marks a
    deadline-truncated campaign (some points never ran).
    """

    target: SweepTarget
    values: np.ndarray              # (B,)
    simulation: SimulationResult
    metric_values: np.ndarray | None
    quarantine: QuarantineLog = field(default_factory=QuarantineLog)
    incomplete: bool = False

    @property
    def n_points(self) -> int:
        return self.values.shape[0]

    @property
    def n_quarantined(self) -> int:
        return len(self.quarantine)

    @property
    def valid_mask(self) -> np.ndarray:
        """Sweep points with a successful simulation, shape (B,)."""
        return self.simulation.raw.success_mask


@dataclass
class PSA2DResult:
    """Result of a two-dimensional parameter sweep (grid layout).

    Grid cells whose simulation did not succeed are NaN in
    ``metric_map`` (rendered as '?'); ``quarantine``/``incomplete``
    mirror :class:`PSA1DResult`.
    """

    target_x: SweepTarget
    target_y: SweepTarget
    values_x: np.ndarray            # (nx,)
    values_y: np.ndarray            # (ny,)
    simulation: SimulationResult
    metric_map: np.ndarray | None   # (nx, ny)
    quarantine: QuarantineLog = field(default_factory=QuarantineLog)
    incomplete: bool = False

    @property
    def n_points(self) -> int:
        return self.values_x.shape[0] * self.values_y.shape[0]

    @property
    def n_quarantined(self) -> int:
        return len(self.quarantine)

    @property
    def valid_mask(self) -> np.ndarray:
        """Grid cells with a successful simulation, shape (nx, ny)."""
        return self.simulation.raw.success_mask.reshape(
            self.values_x.shape[0], self.values_y.shape[0])

    def render_map(self, levels: str = " .:-=+*#%@") -> str:
        """ASCII heat map of the metric (y decreasing downward).

        The metric is binned linearly onto the given character ramp;
        NaN cells render as '?'.
        """
        if self.metric_map is None:
            raise AnalysisError("no metric was computed for this sweep")
        finite = self.metric_map[np.isfinite(self.metric_map)]
        low = float(finite.min()) if finite.size else 0.0
        high = float(finite.max()) if finite.size else 1.0
        span = max(high - low, 1e-300)
        lines = [f"{self.target_y.label} (rows, high to low) vs "
                 f"{self.target_x.label} (cols); "
                 f"range [{low:.4g}, {high:.4g}]"]
        for j in reversed(range(self.values_y.shape[0])):
            row = []
            for i in range(self.values_x.shape[0]):
                value = self.metric_map[i, j]
                if not np.isfinite(value):
                    row.append("?")
                    continue
                level = int((value - low) / span * (len(levels) - 1))
                row.append(levels[level])
            lines.append(f"{self.values_y[j]:10.4g} |" + "".join(row))
        return "\n".join(lines)


def run_psa_1d(model: ReactionBasedModel, target: SweepTarget,
               n_points: int, t_span: tuple[float, float],
               t_eval: np.ndarray | None = None,
               metric: MetricFunction | None = None,
               engine: str = "batched",
               options: SolverOptions = DEFAULT_OPTIONS,
               lint: bool = False,
               campaign: CampaignConfig | None = None,
               telemetry=None,
               **engine_kwargs) -> PSA1DResult:
    """Sweep one parameter over a grid of ``n_points`` values.

    With ``lint=True`` the model is statically checked first and a
    :class:`~repro.errors.LintError` aborts the sweep before any
    simulation runs (see :func:`repro.lint.lint_gate`). With
    ``campaign=`` the sweep runs chunked through
    :func:`repro.resilience.run_campaign` (checkpoint/resume and
    deadlines); a ``retry_policy=`` engine kwarg adds per-row retry
    escalation on the batched engine either way.
    """
    if lint:
        from ..lint import lint_gate
        lint_gate(model)
    values = target.range.grid(n_points)
    batch = build_sweep_batch(model, [target], values[:, None])
    result, quarantine, incomplete = resilient_simulate(
        model, t_span, t_eval, batch, engine, options, campaign,
        engine_kwargs, telemetry)
    metric_values = _masked_metric(metric, result)
    return PSA1DResult(target, values, result, metric_values,
                       quarantine, incomplete)


def run_psa_2d(model: ReactionBasedModel, target_x: SweepTarget,
               target_y: SweepTarget, n_x: int, n_y: int,
               t_span: tuple[float, float],
               t_eval: np.ndarray | None = None,
               metric: MetricFunction | None = None,
               engine: str = "batched",
               options: SolverOptions = DEFAULT_OPTIONS,
               lint: bool = False,
               campaign: CampaignConfig | None = None,
               telemetry=None,
               **engine_kwargs) -> PSA2DResult:
    """Sweep two parameters over an (n_x, n_y) grid; row-major batch.

    ``lint=True`` statically checks the model first and ``campaign=``
    runs the grid as a resilient chunked campaign, as in
    :func:`run_psa_1d`.
    """
    if lint:
        from ..lint import lint_gate
        lint_gate(model)
    values_x = target_x.range.grid(n_x)
    values_y = target_y.range.grid(n_y)
    mesh_x, mesh_y = np.meshgrid(values_x, values_y, indexing="ij")
    pairs = np.stack([mesh_x.ravel(), mesh_y.ravel()], axis=1)
    batch = build_sweep_batch(model, [target_x, target_y], pairs)
    result, quarantine, incomplete = resilient_simulate(
        model, t_span, t_eval, batch, engine, options, campaign,
        engine_kwargs, telemetry)
    metric_map = _masked_metric(metric, result)
    if metric_map is not None:
        metric_map = metric_map.reshape(n_x, n_y)
    return PSA2DResult(target_x, target_y, values_x, values_y, result,
                       metric_map, quarantine, incomplete)
