"""Trajectory post-processing: oscillations, steady states, distances.

These are the metrics the parameter-space analyses derive from raw
trajectories: the PSA-2D maps plot oscillation amplitudes, the
sensitivity analysis reads out end-point concentrations, and parameter
estimation scores candidate dynamics with the relative-distance fitness
of the paper family.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError


@dataclass(frozen=True)
class OscillationMetrics:
    """Summary of an (possibly) oscillatory scalar signal.

    Attributes
    ----------
    amplitude:
        Mean peak-to-trough half-range over the analysis window; 0 for
        non-oscillating signals (the paper family's map convention).
    period:
        Mean peak-to-peak distance in time units (NaN when fewer than
        two peaks are found).
    n_peaks:
        Number of interior maxima detected.
    """

    amplitude: float
    period: float
    n_peaks: int

    @property
    def oscillating(self) -> bool:
        return self.amplitude > 0.0


def _interior_extrema(signal: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Indices of strict interior maxima and minima."""
    left = signal[1:-1] - signal[:-2]
    right = signal[1:-1] - signal[2:]
    maxima = np.flatnonzero((left > 0) & (right > 0)) + 1
    minima = np.flatnonzero((left < 0) & (right < 0)) + 1
    return maxima, minima


def oscillation_metrics(times: np.ndarray, signal: np.ndarray,
                        settle_fraction: float = 0.25,
                        relative_threshold: float = 0.01
                        ) -> OscillationMetrics:
    """Detect sustained oscillations in a scalar trajectory.

    The first ``settle_fraction`` of the window is discarded as a
    transient. Oscillation requires at least two interior maxima whose
    mean peak-to-trough half-range exceeds ``relative_threshold`` times
    the signal scale — damped ringdowns and numerically flat signals
    report amplitude 0.
    """
    times = np.asarray(times, dtype=np.float64)
    signal = np.asarray(signal, dtype=np.float64)
    if times.shape != signal.shape:
        raise AnalysisError("times and signal must have equal shapes")
    start = int(len(times) * settle_fraction)
    window_t = times[start:]
    window_y = signal[start:]
    if window_y.size < 5:
        return OscillationMetrics(0.0, np.nan, 0)

    maxima, minima = _interior_extrema(window_y)
    if maxima.size < 2 or minima.size < 1:
        return OscillationMetrics(0.0, np.nan, int(maxima.size))

    scale = max(np.max(np.abs(window_y)), 1e-300)
    peak_mean = float(np.mean(window_y[maxima]))
    trough_mean = float(np.mean(window_y[minima]))
    amplitude = 0.5 * (peak_mean - trough_mean)
    if amplitude < relative_threshold * scale:
        return OscillationMetrics(0.0, np.nan, int(maxima.size))

    # Sustained (not decaying) check: the last peak must retain most of
    # the first peak's height above the trough level.
    first_height = window_y[maxima[0]] - trough_mean
    last_height = window_y[maxima[-1]] - trough_mean
    if first_height > 0 and last_height < 0.2 * first_height:
        return OscillationMetrics(0.0, np.nan, int(maxima.size))

    period = float(np.mean(np.diff(window_t[maxima])))
    return OscillationMetrics(float(amplitude), period, int(maxima.size))


def steady_state_time(times: np.ndarray, signal: np.ndarray,
                      relative_tolerance: float = 1e-3) -> float:
    """First time after which the signal stays within a band around its
    final value; NaN when it never settles."""
    times = np.asarray(times, dtype=np.float64)
    signal = np.asarray(signal, dtype=np.float64)
    final = signal[-1]
    band = relative_tolerance * max(abs(final), 1e-300)
    outside = np.abs(signal - final) > band
    if not np.any(outside):
        return float(times[0])
    last_outside = int(np.flatnonzero(outside)[-1])
    # Re-entering the band only at the very end (the final sample is in
    # the band by construction) does not count as settling.
    if last_outside >= times.size - 2:
        return float("nan")
    return float(times[last_outside + 1])


def relative_distance(target: np.ndarray, candidate: np.ndarray,
                      epsilon: float = 1e-12) -> float:
    """Paper-family PE fitness: mean pointwise relative deviation.

    Both arrays have shape (T, S) (time x observed species). Lower is
    better; identical dynamics score 0.
    """
    target = np.asarray(target, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if target.shape != candidate.shape:
        raise AnalysisError(
            f"shape mismatch: target {target.shape} vs candidate "
            f"{candidate.shape}")
    if not np.all(np.isfinite(candidate)):
        return float("inf")
    return float(np.mean(np.abs(candidate - target)
                         / (np.abs(target) + epsilon)))


def batch_relative_distances(target: np.ndarray,
                             candidates: np.ndarray,
                             epsilon: float = 1e-12) -> np.ndarray:
    """Vectorized relative distance for a batch of candidate dynamics.

    ``candidates`` has shape (B, T, S); returns shape (B,) with inf for
    non-finite candidates (failed simulations).
    """
    target = np.asarray(target, dtype=np.float64)
    candidates = np.asarray(candidates, dtype=np.float64)
    deviations = np.abs(candidates - target[None]) / \
        (np.abs(target)[None] + epsilon)
    scores = np.mean(deviations, axis=(1, 2))
    finite = np.all(np.isfinite(candidates), axis=(1, 2))
    return np.where(finite, scores, np.inf)


def final_value(trajectories: np.ndarray, species_index: int) -> np.ndarray:
    """End-point concentration of one species for a batch, shape (B,)."""
    return trajectories[:, -1, species_index]


def batch_oscillation_amplitudes(times: np.ndarray, trajectories: np.ndarray,
                                 species_index: int,
                                 **kwargs) -> np.ndarray:
    """Oscillation amplitude of one species across a batch, shape (B,).

    Failed simulations (NaN rows) report amplitude 0, matching the
    paper family's black-cell convention in PSA maps.
    """
    batch = trajectories.shape[0]
    amplitudes = np.zeros(batch)
    for b in range(batch):
        signal = trajectories[b, :, species_index]
        if not np.all(np.isfinite(signal)):
            continue
        amplitudes[b] = oscillation_metrics(times, signal, **kwargs).amplitude
    return amplitudes
