"""Unified simulation front-end.

``simulate()`` is the one-call API of the library: it accepts a model,
a time window and (optionally) a batch of parameterizations, runs them
on the selected engine and returns a :class:`SimulationResult` with
species-name-aware accessors.

Engines
-------
``"batched"``
    The GPU-style :class:`~repro.gpu.engine.BatchSimulator`
    (fine + coarse grained, auto method routing) — the paper family's
    contribution.
``"lsoda"``, ``"vode"``
    Sequential CPU baselines: one SciPy/ODEPACK integration per
    simulation, exactly how the paper family benchmarks CPUs.
``"dopri5"``, ``"radau5"``, ``"autoswitch"``
    Sequential runs of this package's own scalar solvers (the
    fine-grained-only reference points).
``"ssa"``, ``"tau-leaping"``
    Batched stochastic engines (exact Gillespie / tau-leaping) at a
    volume given by the ``volume`` engine kwarg; trajectories are
    returned in concentration units so all downstream analyses apply
    unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import AnalysisError
from ..gpu.batch_result import (BROKEN, EXHAUSTED, METHOD_AUTOSWITCH,
                                METHOD_BDF, METHOD_DOPRI5, METHOD_LSODA,
                                METHOD_RADAU5, METHOD_VODE, OK,
                                BatchSolveResult, allocate_result)
from ..gpu.engine import BatchSimulator, EngineReport
from ..resilience.quarantine import QuarantineLog
from ..model import (ODESystem, Parameterization, ParameterizationBatch,
                     ReactionBasedModel)
from ..solvers import (AutoSwitchSolver, BDF, ExplicitRungeKutta, Radau5,
                       ScipyLSODA, ScipyVODE)
from ..solvers.base import DEFAULT_OPTIONS, SUCCESS, MAX_STEPS, SolverOptions
from ..telemetry import clock
from ..solvers.tableaus import DOPRI5

SEQUENTIAL_ENGINES = ("lsoda", "vode", "dopri5", "radau5", "autoswitch",
                      "bdf")
STOCHASTIC_ENGINES = ("ssa", "tau-leaping")
ENGINES = ("batched",) + SEQUENTIAL_ENGINES + STOCHASTIC_ENGINES

_SEQUENTIAL_METHOD_CODES = {
    "lsoda": METHOD_LSODA, "vode": METHOD_VODE, "dopri5": METHOD_DOPRI5,
    "radau5": METHOD_RADAU5, "autoswitch": METHOD_AUTOSWITCH,
    "bdf": METHOD_BDF,
}


@dataclass
class SimulationResult:
    """Batch trajectories with model-aware accessors.

    ``engine_report`` is populated by the batched engine only; it
    carries routing decisions, kernel counters and — when the engine
    ran with a retry policy — the quarantine log of rows that exhausted
    the retry ladder.
    """

    model: ReactionBasedModel
    raw: BatchSolveResult
    engine: str
    elapsed_seconds: float
    species_names: list[str] = field(default_factory=list)
    engine_report: EngineReport | None = None

    def __post_init__(self) -> None:
        if not self.species_names:
            self.species_names = self.model.species.names

    @property
    def t(self) -> np.ndarray:
        return self.raw.t

    @property
    def y(self) -> np.ndarray:
        """Trajectories, shape (B, T, N)."""
        return self.raw.y

    @property
    def batch_size(self) -> int:
        return self.raw.batch_size

    @property
    def all_success(self) -> bool:
        return self.raw.all_success

    def species_index(self, name: str) -> int:
        try:
            return self.species_names.index(name)
        except ValueError:
            raise AnalysisError(f"unknown species {name!r}") from None

    def species(self, name: str) -> np.ndarray:
        """One species' trajectories across the batch, shape (B, T)."""
        return self.raw.y[:, :, self.species_index(name)]

    def trajectory(self, index: int = 0) -> np.ndarray:
        """One simulation's full trajectory, shape (T, N)."""
        return self.raw.y[index]

    def final_states(self) -> np.ndarray:
        return self.raw.final_states()

    def statuses(self) -> list[str]:
        return self.raw.statuses()

    @property
    def quarantine(self) -> QuarantineLog:
        """Rows quarantined by the engine's retry ladder (may be empty)."""
        if self.engine_report is not None:
            return self.engine_report.quarantine
        return QuarantineLog()

    @property
    def n_quarantined(self) -> int:
        return len(self.quarantine)


class SequentialSimulator:
    """CPU baseline: integrate the batch one simulation at a time.

    This is the execution model of the sequential comparisons in the
    paper family — LSODA/VODE loops for the CPU columns of the maps,
    and this package's own scalar solvers for the fine-grained-only
    reference.
    """

    def __init__(self, model: ReactionBasedModel,
                 options: SolverOptions = DEFAULT_OPTIONS,
                 engine: str = "lsoda") -> None:
        if engine not in SEQUENTIAL_ENGINES:
            raise AnalysisError(f"unknown sequential engine {engine!r}; "
                                f"expected one of {SEQUENTIAL_ENGINES}")
        self.model = model
        self.system = ODESystem.from_model(model)
        self.options = options
        self.engine = engine

    def _make_solver(self):
        if self.engine == "lsoda":
            return ScipyLSODA(self.options)
        if self.engine == "vode":
            return ScipyVODE(self.options)
        if self.engine == "dopri5":
            return ExplicitRungeKutta(DOPRI5, self.options)
        if self.engine == "radau5":
            return Radau5(self.options)
        if self.engine == "bdf":
            return BDF(self.options)
        return AutoSwitchSolver(self.options)

    def simulate(self, t_span: tuple[float, float],
                 t_eval: np.ndarray | None = None,
                 parameters: ParameterizationBatch | Parameterization |
                 None = None,
                 time_budget_seconds: float | None = None
                 ) -> BatchSolveResult:
        """Integrate the batch sequentially.

        ``time_budget_seconds`` stops the loop once exceeded, leaving
        remaining simulations BROKEN — this reproduces the paper
        family's "how many simulations fit in a time budget" runs.
        """
        batch = _normalize(self.model, parameters)
        if t_eval is None:
            t_eval = np.array([float(t_span[0]), float(t_span[1])])
        t_eval = np.asarray(t_eval, dtype=np.float64)
        result = allocate_result(t_eval, batch.size, self.model.n_species,
                                 _SEQUENTIAL_METHOD_CODES[self.engine])
        solver = self._make_solver()
        supports_jacobian = self.engine in ("vode", "radau5", "autoswitch",
                                            "lsoda", "bdf")
        started = clock.monotonic()
        completed = 0
        for index in range(batch.size):
            if time_budget_seconds is not None and \
                    clock.monotonic() - started > time_budget_seconds:
                break
            constants = batch.rate_constants[index]
            fun = self.system.as_scipy_rhs(constants)
            kwargs = {}
            if supports_jacobian:
                kwargs["jac"] = self.system.as_scipy_jacobian(constants)
            single = solver.solve(fun, t_span, batch.initial_states[index],
                                  t_eval, **kwargs)
            filled = single.y.shape[0]
            result.y[index, :filled, :] = single.y
            result.n_steps[index] = single.stats.n_steps
            result.n_accepted[index] = single.stats.n_accepted
            result.n_rejected[index] = single.stats.n_rejected
            if single.status == SUCCESS:
                result.status_codes[index] = OK
            elif single.status == MAX_STEPS:
                result.status_codes[index] = EXHAUSTED
            else:
                result.status_codes[index] = BROKEN
            result.counters.rhs_simulation_evaluations += \
                single.stats.n_rhs_evaluations
            completed += 1
        result.status_codes[completed:] = BROKEN
        result.elapsed_seconds = clock.monotonic() - started
        return result


def simulate(model: ReactionBasedModel, t_span: tuple[float, float],
             t_eval: np.ndarray | None = None,
             parameters: ParameterizationBatch | Parameterization |
             None = None,
             engine: str = "batched",
             options: SolverOptions = DEFAULT_OPTIONS,
             **engine_kwargs) -> SimulationResult:
    """Simulate a model batch on the selected engine (see module docs)."""
    report = None
    if engine == "batched":
        simulator = BatchSimulator(model, options, **engine_kwargs)
        raw = simulator.simulate(t_span, t_eval, parameters)
        report = simulator.last_report
    elif engine in SEQUENTIAL_ENGINES:
        simulator = SequentialSimulator(model, options, engine)
        raw = simulator.simulate(t_span, t_eval, parameters, **engine_kwargs)
    elif engine in STOCHASTIC_ENGINES:
        raw = _simulate_stochastic(model, t_span, t_eval, parameters,
                                   engine, **engine_kwargs)
    else:
        raise AnalysisError(f"unknown engine {engine!r}; expected one "
                            f"of {ENGINES}")
    return SimulationResult(model, raw, engine, raw.elapsed_seconds,
                            engine_report=report)


def _simulate_stochastic(model, t_span, t_eval, parameters, engine,
                         volume: float = 1000.0, seed: int = 0,
                         n_replicates: int = 1,
                         max_events: int = 1_000_000) -> BatchSolveResult:
    """Run a stochastic engine and adapt its result to the facade
    schema (concentration units)."""
    from ..gpu.batch_result import METHOD_SSA, METHOD_TAU_LEAPING
    from ..stochastic import StochasticSimulator
    from ..stochastic.results import OK as STOCH_OK

    simulator = StochasticSimulator(model, volume=volume, method=engine,
                                    seed=seed, max_events=max_events)
    stochastic = simulator.simulate(t_span, t_eval, parameters,
                                    n_replicates=n_replicates)
    method_code = METHOD_SSA if engine == "ssa" else METHOD_TAU_LEAPING
    adapted = BatchSolveResult(
        t=stochastic.t,
        y=stochastic.concentrations(),
        status_codes=np.where(stochastic.status_codes == STOCH_OK, OK,
                              EXHAUSTED),
        method_codes=np.full(stochastic.batch_size, method_code,
                             dtype=np.int64),
        n_steps=stochastic.n_events + stochastic.n_leaps,
        n_accepted=stochastic.n_events + stochastic.n_leaps,
        n_rejected=np.zeros(stochastic.batch_size, dtype=np.int64),
    )
    adapted.elapsed_seconds = stochastic.elapsed_seconds
    return adapted


def _normalize(model: ReactionBasedModel, parameters) -> ParameterizationBatch:
    if parameters is None:
        parameters = model.nominal_parameterization()
    if isinstance(parameters, Parameterization):
        model.check_parameterization(parameters)
        parameters = ParameterizationBatch.from_parameterizations([parameters])
    if not isinstance(parameters, ParameterizationBatch):
        raise AnalysisError(
            "parameters must be a Parameterization, ParameterizationBatch "
            f"or None, got {type(parameters)!r}")
    return parameters
