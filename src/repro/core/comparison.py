"""Simulator comparison maps (best-engine-per-cell harness).

Reproduces the comparison-map experiments of the paper family: for a
grid of (model size) x (number of parallel simulations) cells, every
engine is timed on the same workload and the fastest one wins the cell.
Sequential CPU engines may be cut off by a time budget; their cost is
then linearly extrapolated from the completed fraction (the paper
reports the same "only n simulations finished in the budget" figures).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import AnalysisError
from ..gpu.engine import BatchSimulator
from ..model import ReactionBasedModel, perturbed_batch
from ..solvers.base import DEFAULT_OPTIONS, SolverOptions
from ..telemetry import clock
from .simulate import SEQUENTIAL_ENGINES, SequentialSimulator

#: Engine identifiers the map understands. ``batched-*`` selects the
#: substrate evaluation policy of the batched engine.
MAP_ENGINES = ("lsoda", "vode", "batched-hybrid", "batched-coarse",
               "batched-fine")


@dataclass
class CellTiming:
    """All engine timings of one (model, batch size) cell."""

    model_label: str
    batch_size: int
    seconds: dict[str, float] = field(default_factory=dict)
    extrapolated: dict[str, bool] = field(default_factory=dict)

    @property
    def best_engine(self) -> str:
        return min(self.seconds, key=self.seconds.get)

    def speedup_over(self, baseline: str) -> dict[str, float]:
        """Speedup of every engine relative to a baseline engine."""
        if baseline not in self.seconds:
            raise AnalysisError(f"no timing recorded for {baseline!r}")
        reference = self.seconds[baseline]
        return {name: reference / value
                for name, value in self.seconds.items()}


@dataclass
class ComparisonMap:
    """Grid of best engines over model sizes x batch sizes."""

    model_labels: list[str]
    batch_sizes: list[int]
    cells: dict[tuple[str, int], CellTiming] = field(default_factory=dict)

    def best(self, model_label: str, batch_size: int) -> str:
        return self.cells[(model_label, batch_size)].best_engine

    def best_grid(self) -> list[list[str]]:
        """Rows = model sizes, columns = batch sizes."""
        return [[self.best(label, batch) for batch in self.batch_sizes]
                for label in self.model_labels]

    def render(self) -> str:
        """Plain-text map mirroring the paper's comparison figures."""
        width = max(len(engine) for cell in self.cells.values()
                    for engine in cell.seconds)
        width = max(width, 10)
        header = f"{'model':>16s} | " + " ".join(
            f"{batch:>{width}d}" for batch in self.batch_sizes)
        lines = [header, "-" * len(header)]
        for label in self.model_labels:
            row = " ".join(f"{self.best(label, batch):>{width}s}"
                           for batch in self.batch_sizes)
            lines.append(f"{label:>16s} | {row}")
        return "\n".join(lines)


def time_engine(model: ReactionBasedModel, engine: str, batch_size: int,
                t_span: tuple[float, float], t_eval: np.ndarray,
                options: SolverOptions = DEFAULT_OPTIONS, seed: int = 0,
                time_budget_seconds: float | None = None,
                spread: float = 0.25) -> tuple[float, bool]:
    """Wall-clock one engine on a perturbed batch of one model.

    Returns (seconds, extrapolated): when a sequential engine hits the
    time budget before finishing the batch, the cost of the full batch
    is extrapolated from the completed fraction and flagged.
    """
    rng = np.random.default_rng(seed)
    batch = perturbed_batch(model.nominal_parameterization(), batch_size,
                            rng, spread)
    if engine.startswith("batched"):
        policy = engine.partition("-")[2] or "hybrid"
        simulator = BatchSimulator(model, options, policy=policy)
        started = clock.monotonic()
        simulator.simulate(t_span, t_eval, batch)
        return clock.monotonic() - started, False
    if engine not in SEQUENTIAL_ENGINES:
        raise AnalysisError(f"unknown map engine {engine!r}; expected "
                            f"one of {MAP_ENGINES + SEQUENTIAL_ENGINES}")
    simulator = SequentialSimulator(model, options, engine)
    started = clock.monotonic()
    result = simulator.simulate(t_span, t_eval, batch,
                                time_budget_seconds=time_budget_seconds)
    elapsed = clock.monotonic() - started
    completed = sum(s != "failed" for s in result.statuses())
    if completed < batch_size:
        if completed == 0:
            return float("inf"), True
        return elapsed * batch_size / completed, True
    return elapsed, False


def run_comparison_map(models: list[tuple[str, ReactionBasedModel]],
                       batch_sizes: list[int],
                       t_span: tuple[float, float], t_eval: np.ndarray,
                       engines: tuple[str, ...] = MAP_ENGINES,
                       options: SolverOptions = DEFAULT_OPTIONS,
                       seed: int = 0,
                       time_budget_seconds: float | None = None
                       ) -> ComparisonMap:
    """Time every engine in every cell and record the winners."""
    comparison = ComparisonMap([label for label, _ in models],
                               list(batch_sizes))
    for label, model in models:
        for batch_size in batch_sizes:
            cell = CellTiming(label, batch_size)
            for engine in engines:
                seconds, extrapolated = time_engine(
                    model, engine, batch_size, t_span, t_eval, options,
                    seed, time_budget_seconds)
                cell.seconds[engine] = seconds
                cell.extrapolated[engine] = extrapolated
            comparison.cells[(label, batch_size)] = cell
    return comparison
