"""Tests for the multi-tenant campaign service.

Covers the four pillars of :mod:`repro.service`: typed admission
control (quotas, queue bounds, working-set budgets, priority
shedding), deficit-fair chunk scheduling across tenants, the overload
degradation ladder, and job supervision (scheduler-fault injection,
attempt timeouts, cooperative cancellation, preemption) — plus the
JSON-line TCP server and the ``submit_campaign`` convenience wrapper.

The conservation law threaded through everything: every admitted job
ends in exactly one terminal state, and
``submitted == admitted + rejected``.
"""

import asyncio
import queue
import threading

import numpy as np
import pytest

from repro.errors import (QueueFull, QuotaExceeded, ServiceError,
                          WorkingSetExceeded)
from repro.model import perturbed_batch
from repro.models import lotka_volterra
from repro.resilience import FaultPlan, run_campaign
from repro.resilience.campaign import CampaignConfig
from repro.service import (CampaignService, ChunkScheduler,
                           DegradationLadder, JobRequest, JobState,
                           ServiceConfig, TenantQuota, submit_campaign)
from repro.service.scheduler import (LADDER_NORMAL, LADDER_OVERLOADED,
                                     LADDER_SERIAL)
from repro.service.server import Client, serve_async
from repro.telemetry import read_trace_jsonl, validate_trace

T_EVAL = np.linspace(0.0, 2.0, 5)
T_SPAN = (0.0, 2.0)


@pytest.fixture(scope="module")
def lv_model():
    return lotka_volterra()


@pytest.fixture(scope="module")
def lv_batch(lv_model):
    rng = np.random.default_rng(11)
    return perturbed_batch(lv_model.nominal_parameterization(), 6, rng)


def request_for(lv_model, lv_batch, **kwargs):
    kwargs.setdefault("chunk_size", 3)
    return JobRequest(model=lv_model, t_span=T_SPAN, t_eval=T_EVAL,
                      parameters=lv_batch, **kwargs)


def jain(values):
    """Jain's fairness index: 1.0 is perfectly fair, 1/n is worst."""
    values = [float(v) for v in values]
    total = sum(values)
    squares = sum(v * v for v in values)
    return total * total / (len(values) * squares) if squares else 1.0


def conservation(service):
    """Assert the service's job-accounting conservation law."""
    counters = service.metrics.counters
    submitted = counters.get("service.jobs.submitted", 0)
    admitted = counters.get("service.jobs.admitted", 0)
    rejected = counters.get("service.jobs.rejected", 0)
    assert submitted == admitted + rejected
    terminal = sum(counters.get(f"service.jobs.{state}", 0)
                   for state in (JobState.COMPLETED, JobState.SHED,
                                 JobState.CANCELLED, JobState.QUARANTINED))
    assert admitted == terminal
    for job in service._jobs.values():
        assert job.terminal


class TestConfigValidation:
    def test_quota_fields_validated(self):
        with pytest.raises(ServiceError, match="max_queued"):
            TenantQuota(max_queued=0)
        with pytest.raises(ServiceError, match="max_inflight_chunks"):
            TenantQuota(max_inflight_chunks=0)
        with pytest.raises(ServiceError, match="weight"):
            TenantQuota(weight=0.0)
        with pytest.raises(ServiceError, match="working_set_doubles"):
            TenantQuota(working_set_doubles=0)

    def test_service_fields_validated(self):
        with pytest.raises(ServiceError, match="max_running_jobs"):
            ServiceConfig(max_running_jobs=0)
        with pytest.raises(ServiceError, match="queue_capacity"):
            ServiceConfig(queue_capacity=0)
        with pytest.raises(ServiceError, match="serial_pressure"):
            ServiceConfig(overload_pressure=4, serial_pressure=4)
        with pytest.raises(ServiceError, match="TenantQuota"):
            ServiceConfig(quotas={"a": object()})

    def test_quota_lookup_falls_back_to_default(self):
        config = ServiceConfig(quotas={"a": TenantQuota(max_queued=1)})
        assert config.quota_for("a").max_queued == 1
        assert config.quota_for("b").max_queued \
            == config.default_quota.max_queued


class TestAdmission:
    """Admission decisions are synchronous: submitting between
    ``start()`` and the dispatcher's first tick exercises them in
    isolation, and ``stop(drain=False)`` sheds whatever was queued."""

    def run_admission(self, scenario, config):
        async def _run():
            service = CampaignService(config=config)
            await service.start()
            try:
                scenario(service)
            finally:
                await service.stop(drain=False)
            return service
        return asyncio.run(_run())

    def test_submit_before_start_raises(self, lv_model, lv_batch):
        service = CampaignService()
        with pytest.raises(ServiceError, match="not accepting"):
            service.submit(request_for(lv_model, lv_batch))

    def test_tenant_queue_quota(self, lv_model, lv_batch):
        config = ServiceConfig(
            default_quota=TenantQuota(max_queued=2))

        def scenario(service):
            service.submit(request_for(lv_model, lv_batch, tenant="a"))
            service.submit(request_for(lv_model, lv_batch, tenant="a"))
            with pytest.raises(QuotaExceeded, match="quota 2") as info:
                service.submit(request_for(lv_model, lv_batch,
                                           tenant="a"))
            assert info.value.tenant == "a"
            # another tenant still gets in
            service.submit(request_for(lv_model, lv_batch, tenant="b"))

        service = self.run_admission(scenario, config)
        rejected = [job for job in service._jobs.values()
                    if job.state == JobState.REJECTED]
        assert len(rejected) == 1
        assert rejected[0].reason == "QuotaExceeded"
        assert rejected[0].done.is_set()
        conservation(service)

    def test_working_set_budget(self, lv_model, lv_batch):
        config = ServiceConfig(
            default_quota=TenantQuota(working_set_doubles=10))

        def scenario(service):
            with pytest.raises(WorkingSetExceeded, match="budget 10"):
                service.submit(request_for(lv_model, lv_batch))

        service = self.run_admission(scenario, config)
        conservation(service)

    def test_queue_full_same_priority_rejected(self, lv_model, lv_batch):
        config = ServiceConfig(queue_capacity=2)

        def scenario(service):
            service.submit(request_for(lv_model, lv_batch))
            service.submit(request_for(lv_model, lv_batch))
            with pytest.raises(QueueFull, match="capacity"):
                service.submit(request_for(lv_model, lv_batch))

        service = self.run_admission(scenario, config)
        conservation(service)

    def test_queue_full_sheds_lowest_priority(self, lv_model, lv_batch):
        config = ServiceConfig(queue_capacity=2)

        def scenario(service):
            service.submit(request_for(lv_model, lv_batch, priority=0))
            service.submit(request_for(lv_model, lv_batch, priority=5))
            strong = service.submit(
                request_for(lv_model, lv_batch, priority=3))
            assert strong.state == JobState.QUEUED
            # the newest priority-0 job was displaced, not the 5
            victim = service.get(0)
            assert victim.state == JobState.SHED
            assert victim.reason == "displaced"
            assert service.ladder.pressure >= 1

        service = self.run_admission(scenario, config)
        assert service.metrics.counters["service.jobs.shed"] >= 1
        conservation(service)

    def test_cancel_queued_job(self, lv_model, lv_batch):
        def scenario(service):
            job = service.submit(request_for(lv_model, lv_batch))
            cancelled = service.cancel(job.job_id)
            assert cancelled.state == JobState.CANCELLED
            assert cancelled.reason == "client-cancel"
            # cancelling a terminal job is a no-op
            assert service.cancel(job.job_id).state == JobState.CANCELLED
            with pytest.raises(ServiceError, match="unknown job id"):
                service.get(999)

        service = self.run_admission(scenario, ServiceConfig())
        conservation(service)


class TestChunkScheduler:
    def test_gate_requires_registration(self):
        scheduler = ChunkScheduler(2)
        with pytest.raises(ServiceError, match="not registered"):
            scheduler.gate("ghost")
        scheduler.register("a")
        gate = scheduler.gate("a")
        assert gate.try_acquire(4)
        gate.release(4)

    def test_capacity_and_lane_caps(self):
        scheduler = ChunkScheduler(2)
        scheduler.register("a", max_inflight_chunks=1)
        scheduler.register("b", max_inflight_chunks=2)
        assert scheduler.try_acquire("a", 1)
        assert not scheduler.try_acquire("a", 1)   # lane cap
        assert scheduler.try_acquire("b", 1)
        assert not scheduler.try_acquire("b", 1)   # global cap
        scheduler.release("a", 1)
        assert scheduler.try_acquire("b", 1)

    def test_try_acquire_never_jumps_better_deficit(self):
        scheduler = ChunkScheduler(1)
        scheduler.register("greedy")
        scheduler.register("starved")
        # greedy builds up consumption and holds the only grant
        assert scheduler.try_acquire("greedy", 100)
        results = []
        waiter = threading.Thread(
            target=lambda: results.append(
                scheduler.acquire("starved", 1)))
        waiter.start()
        for _ in range(200):
            if scheduler._waiting:
                break
            threading.Event().wait(0.005)
        assert scheduler._waiting
        # full pool: nobody gets in
        assert not scheduler.try_acquire("greedy", 1)
        scheduler.release("greedy", 100)
        # the freed grant belongs to the starved waiter; greedy must
        # not steal it even if it asks first
        assert not scheduler.try_acquire("greedy", 1)
        waiter.join(timeout=5.0)
        assert results == [True]
        stats = scheduler.stats()
        assert stats["starved"]["granted_chunks"] == 1
        assert stats["greedy"]["granted_rows"] == 100

    def test_cancel_event_unblocks_acquire(self):
        scheduler = ChunkScheduler(1)
        scheduler.register("a")
        scheduler.register("b")
        assert scheduler.try_acquire("a", 1)
        cancel = threading.Event()
        results = []
        waiter = threading.Thread(
            target=lambda: results.append(
                scheduler.acquire("b", 1, cancel)))
        waiter.start()
        cancel.set()
        waiter.join(timeout=5.0)
        assert results == [False]

    def test_stop_fails_acquires(self):
        scheduler = ChunkScheduler(1)
        scheduler.register("a")
        scheduler.stop()
        assert not scheduler.acquire("a", 1)
        assert not scheduler.try_acquire("a", 1)

    def test_weight_buys_throughput_accounting(self):
        scheduler = ChunkScheduler(4)
        scheduler.register("heavy", weight=2.0, max_inflight_chunks=4)
        scheduler.register("light", weight=1.0, max_inflight_chunks=4)
        assert scheduler.try_acquire("heavy", 10)
        assert scheduler.try_acquire("light", 10)
        lanes = scheduler._lanes
        assert lanes["heavy"].consumed == pytest.approx(5.0)
        assert lanes["light"].consumed == pytest.approx(10.0)


class TestDegradationLadder:
    def test_pressure_transitions(self):
        ladder = DegradationLadder(
            ServiceConfig(overload_pressure=2, serial_pressure=4))
        assert ladder.state == LADDER_NORMAL
        assert not ladder.degrades_results
        ladder.note_shed()
        ladder.note_job_fault()
        assert ladder.state == LADDER_OVERLOADED
        assert ladder.degrades_results
        ladder.note_pool_collapse()
        assert ladder.state == LADDER_SERIAL
        for _ in range(10):
            ladder.note_job_ok()
        assert ladder.pressure == 0
        assert ladder.state == LADDER_NORMAL

    def test_effective_limits(self):
        config = ServiceConfig(max_running_jobs=4, max_inflight_chunks=8,
                               overload_pressure=1, serial_pressure=3)
        ladder = DegradationLadder(config)
        assert ladder.effective_max_running() == 4
        assert ladder.effective_inflight_chunks() == 8
        assert ladder.effective_workers(2) == 2
        ladder.note_shed()
        assert ladder.effective_inflight_chunks() == 4
        assert ladder.effective_max_running() == 4
        ladder.note_pool_collapse()
        assert ladder.state == LADDER_SERIAL
        assert ladder.effective_max_running() == 1
        assert ladder.effective_inflight_chunks() == 1
        assert ladder.effective_workers(2) == 0


class TestServiceRuns:
    def test_single_job_matches_direct_campaign(self, lv_model,
                                                lv_batch):
        direct = run_campaign(lv_model, T_SPAN, T_EVAL, lv_batch,
                              config=CampaignConfig(chunk_size=3))
        job = submit_campaign(lv_model, T_SPAN, t_eval=T_EVAL,
                              parameters=lv_batch, chunk_size=3)
        assert job.state == JobState.COMPLETED
        assert not job.degraded
        assert job.wait_seconds is not None
        assert job.result.result.y.tobytes() \
            == direct.result.y.tobytes()

    def test_multi_tenant_fairness_and_conservation(self, lv_model,
                                                    lv_batch):
        config = ServiceConfig(max_running_jobs=4, max_inflight_chunks=4)

        async def _run():
            service = CampaignService(config=config)
            await service.start()
            for round_index in range(3):
                for tenant in ("t0", "t1", "t2", "t3"):
                    service.submit(request_for(lv_model, lv_batch,
                                               tenant=tenant,
                                               chunk_size=2))
            await service.drain()
            await service.stop()
            return service

        service = asyncio.run(_run())
        conservation(service)
        states = {job.state for job in service._jobs.values()}
        assert states == {JobState.COMPLETED}
        stats = service.scheduler.stats()
        assert set(stats) == {"t0", "t1", "t2", "t3"}
        shares = [lane["granted_rows"] / lane["weight"]
                  for lane in stats.values()]
        assert jain(shares) >= 0.9
        counters = service.metrics.counters
        assert counters["service.jobs.admitted"] == 12
        assert counters["service.jobs.completed"] == 12
        assert "service.queue.wait_seconds" in service.metrics.histograms
        assert "service.queue.depth_samples" in service.metrics.histograms

    def test_trace_is_one_tree(self, lv_model, lv_batch, tmp_path):
        trace = tmp_path / "service.jsonl"

        async def _run():
            service = CampaignService(telemetry=trace)
            await service.start()
            for tenant in ("a", "b"):
                service.submit(request_for(lv_model, lv_batch,
                                           tenant=tenant))
            await service.drain()
            await service.stop()

        asyncio.run(_run())
        spans = read_trace_jsonl(trace)
        assert validate_trace(spans) == []
        by_category = {}
        for span in spans:
            by_category.setdefault(span.category, []).append(span)
        assert len(by_category["service"]) == 1
        service_span = by_category["service"][0]
        assert service_span.parent_id is None
        jobs = by_category["job"]
        assert sorted(span.name for span in jobs) == ["job-0", "job-1"]
        assert all(span.parent_id == service_span.span_id
                   for span in jobs)
        assert all(span.attrs["state"] == "completed" for span in jobs)
        job_ids = {span.span_id for span in jobs}
        assert all(span.parent_id in job_ids
                   for span in by_category["campaign"])

    def test_snapshot_shape(self, lv_model, lv_batch):
        async def _run():
            service = CampaignService()
            await service.start()
            service.submit(request_for(lv_model, lv_batch))
            await service.drain()
            snapshot = service.snapshot()
            await service.stop()
            return snapshot

        snapshot = asyncio.run(_run())
        assert snapshot["ladder"] == LADDER_NORMAL
        assert snapshot["queued"] == 0
        assert snapshot["states"] == {"completed": 1}
        assert "default" in snapshot["tenants"]
        assert "metrics" in snapshot


class TestSchedulerFaults:
    def test_injected_kill_retries_then_completes(self, lv_model,
                                                  lv_batch):
        plan = FaultPlan(sched_kill_jobs=(0,))
        job = submit_campaign(lv_model, T_SPAN, t_eval=T_EVAL,
                              parameters=lv_batch)

        async def _run():
            service = CampaignService(fault_plan=plan)
            await service.start()
            record = service.submit(request_for(lv_model, lv_batch))
            await service.wait(record.job_id, timeout=30.0)
            await service.stop()
            return service, record

        service, record = asyncio.run(_run())
        assert record.state == JobState.COMPLETED
        assert record.attempts == 2
        assert service.metrics.counters["service.jobs.faults"] >= 1
        assert record.result.result.y.tobytes() \
            == job.result.result.y.tobytes()
        conservation(service)

    def test_persistent_kill_quarantines(self, lv_model, lv_batch):
        plan = FaultPlan(sched_kill_jobs=(0,), sched_fault_attempts=100)

        async def _run():
            service = CampaignService(
                config=ServiceConfig(max_job_attempts=2), fault_plan=plan)
            await service.start()
            record = service.submit(request_for(lv_model, lv_batch))
            await service.wait(record.job_id, timeout=30.0)
            await service.stop()
            return service, record

        service, record = asyncio.run(_run())
        assert record.state == JobState.QUARANTINED
        assert record.reason == "injected-kill"
        assert record.attempts == 2
        assert service.metrics.counters["service.jobs.quarantined"] == 1
        conservation(service)

    def test_injected_hang_recovers(self, lv_model, lv_batch):
        plan = FaultPlan(sched_hang_jobs=(0,))

        async def _run():
            service = CampaignService(
                config=ServiceConfig(attempt_timeout=0.2),
                fault_plan=plan)
            await service.start()
            record = service.submit(request_for(lv_model, lv_batch))
            await service.wait(record.job_id, timeout=30.0)
            await service.stop()
            return service, record

        service, record = asyncio.run(_run())
        assert record.state == JobState.COMPLETED
        assert record.attempts == 2
        conservation(service)

    def test_sched_fault_fields_validated(self):
        from repro.errors import ResilienceError
        with pytest.raises(ResilienceError, match="sched_kill_jobs"):
            FaultPlan(sched_kill_jobs=(-1,))
        with pytest.raises(ResilienceError, match="sched_fault_attempts"):
            FaultPlan(sched_fault_attempts=0)

    def test_for_chunk_strips_sched_faults(self):
        plan = FaultPlan(sched_kill_jobs=(0,), sched_hang_jobs=(1,))
        local = plan.for_chunk(0, 0, 3)
        assert local.sched_kill_jobs == ()
        assert local.sched_hang_jobs == ()

    def test_sched_accessors_honor_attempt_budget(self):
        plan = FaultPlan(sched_kill_jobs=(2,), sched_hang_jobs=(3,),
                         sched_fault_attempts=2)
        assert plan.kills_job(2, 1) and plan.kills_job(2, 2)
        assert not plan.kills_job(2, 3)
        assert not plan.kills_job(1, 1)
        assert plan.hangs_job(3, 1)
        assert not plan.hangs_job(3, 3)


class TestCancellationAndDeadlines:
    def test_cancel_running_job(self, lv_model, lv_batch):
        # The job hangs (injected) for up to attempt_timeout; the
        # cancel arrives while it is running and must win.
        plan = FaultPlan(sched_hang_jobs=(0,))

        async def _run():
            service = CampaignService(
                config=ServiceConfig(attempt_timeout=30.0),
                fault_plan=plan)
            await service.start()
            record = service.submit(request_for(lv_model, lv_batch))
            while record.state != JobState.RUNNING:
                await asyncio.sleep(0.005)
            service.cancel(record.job_id)
            await service.wait(record.job_id, timeout=30.0)
            await service.stop()
            return service, record

        service, record = asyncio.run(_run())
        assert record.state == JobState.CANCELLED
        assert record.reason == "client-cancel"
        conservation(service)

    def test_queued_job_past_deadline_is_shed(self, lv_model, lv_batch):
        # Job 0 hangs and occupies the single slot; job 1's deadline
        # expires while it is still queued.
        plan = FaultPlan(sched_hang_jobs=(0,))

        async def _run():
            service = CampaignService(
                config=ServiceConfig(max_running_jobs=1,
                                     attempt_timeout=0.5),
                fault_plan=plan)
            await service.start()
            service.submit(request_for(lv_model, lv_batch))
            doomed = service.submit(
                request_for(lv_model, lv_batch, deadline_seconds=0.05))
            await service.wait(doomed.job_id, timeout=30.0)
            state, reason = doomed.state, doomed.reason
            await service.drain()
            await service.stop()
            return service, state, reason

        service, state, reason = asyncio.run(_run())
        assert state == JobState.SHED
        assert reason == "deadline"
        assert service.metrics.counters["service.jobs.shed"] == 1
        conservation(service)

    def test_attempt_timeout_quarantines_slow_job(self, lv_model):
        rng = np.random.default_rng(3)
        batch = perturbed_batch(lv_model.nominal_parameterization(), 60,
                                rng)

        async def _run():
            service = CampaignService(
                config=ServiceConfig(attempt_timeout=0.01,
                                     max_job_attempts=2))
            await service.start()
            record = service.submit(
                request_for(lv_model, batch, chunk_size=1))
            await service.wait(record.job_id, timeout=60.0)
            await service.stop()
            return service, record

        service, record = asyncio.run(_run())
        assert record.state == JobState.QUARANTINED
        assert record.reason == "attempt-timeout"
        assert record.attempts == 2
        conservation(service)

    def test_ladder_preempts_and_requeues(self, lv_model, lv_batch):
        # Both jobs hang on their first attempt; once both are running
        # the ladder is forced to SERIAL, so the dispatcher preempts
        # the weaker job back to the queue. Everything still completes.
        plan = FaultPlan(sched_hang_jobs=(0, 1))
        config = ServiceConfig(max_running_jobs=2, attempt_timeout=0.3,
                               overload_pressure=3, serial_pressure=6)

        async def _run():
            service = CampaignService(config=config, fault_plan=plan)
            await service.start()
            first = service.submit(request_for(lv_model, lv_batch))
            second = service.submit(request_for(lv_model, lv_batch))
            while not (first.state == JobState.RUNNING
                       and second.state == JobState.RUNNING):
                await asyncio.sleep(0.005)
            service.ladder.pressure = config.serial_pressure
            await service.drain()
            await service.stop()
            return service, first, second

        service, first, second = asyncio.run(_run())
        assert first.state == JobState.COMPLETED
        assert second.state == JobState.COMPLETED
        assert service.metrics.counters.get("service.jobs.preempted",
                                            0) >= 1
        # jobs that ran under a degraded ladder are flagged
        assert second.degraded
        conservation(service)

    def test_stop_without_drain_sheds_and_cancels(self, lv_model,
                                                  lv_batch):
        plan = FaultPlan(sched_hang_jobs=(0,))

        async def _run():
            service = CampaignService(
                config=ServiceConfig(max_running_jobs=1,
                                     attempt_timeout=30.0),
                fault_plan=plan)
            await service.start()
            running = service.submit(request_for(lv_model, lv_batch))
            queued = service.submit(request_for(lv_model, lv_batch))
            while running.state != JobState.RUNNING:
                await asyncio.sleep(0.005)
            await service.stop(drain=False)
            return service, running, queued

        service, running, queued = asyncio.run(_run())
        assert queued.state == JobState.SHED
        assert queued.reason == "shutdown"
        assert running.state == JobState.CANCELLED
        conservation(service)


class TestServer:
    @pytest.fixture()
    def model_folder(self, lv_model, tmp_path):
        from repro.io import write_model
        folder = tmp_path / "lv"
        write_model(lv_model, folder)
        return folder

    def test_round_trip(self, model_folder):
        ports = queue.Queue()
        thread = threading.Thread(
            target=lambda: asyncio.run(serve_async(
                port=0, ready=lambda bound: ports.put(bound[1]))),
            daemon=True)
        thread.start()
        port = ports.get(timeout=30.0)
        with Client(port=port) as client:
            job_id = client.submit(str(model_folder),
                                   t_span=[0.0, 2.0],
                                   t_eval=list(T_EVAL),
                                   chunk_size=3, tenant="acme")
            job = client.wait(job_id, timeout=60.0)
            assert job["state"] == "completed"
            assert job["tenant"] == "acme"
            assert "complete" in job["result"]
            status = client.status(job_id)
            assert status["state"] == "completed"
            stats = client.stats()
            assert stats["states"] == {"completed": 1}
            assert "acme" in stats["tenants"]
            with pytest.raises(ServiceError, match="unknown job id"):
                client.status(999)
            with pytest.raises(ServiceError, match="BadRequest"):
                client.call({"op": "status"})  # missing job_id
            with pytest.raises(ServiceError, match="unknown operation"):
                client.call({"op": "frobnicate"})
            client.shutdown()
        thread.join(timeout=30.0)
        assert not thread.is_alive()

    def test_admission_errors_cross_the_wire(self, model_folder):
        ports = queue.Queue()
        config = ServiceConfig(
            default_quota=TenantQuota(working_set_doubles=10))
        thread = threading.Thread(
            target=lambda: asyncio.run(serve_async(
                port=0, config=config,
                ready=lambda bound: ports.put(bound[1]))),
            daemon=True)
        thread.start()
        port = ports.get(timeout=30.0)
        with Client(port=port) as client:
            with pytest.raises(ServiceError,
                               match="WorkingSetExceeded"):
                client.submit(str(model_folder), t_span=[0.0, 2.0])
            client.shutdown()
        thread.join(timeout=30.0)
