"""Tests for model I/O: BioSimWare folders, SBML subset, converters."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.io import (biosimware_to_sbml, read_batch, read_model,
                      read_sbml, read_t_vector, sbml_to_biosimware,
                      write_model, write_sbml)
from repro.model import MichaelisMenten, ParameterizationBatch, perturbed_batch
from repro.models import metabolic_network, robertson


class TestBioSimWare:
    def test_round_trip(self, toy_model, tmp_path):
        write_model(toy_model, tmp_path / "toy")
        loaded = read_model(tmp_path / "toy")
        assert loaded.species.names == toy_model.species.names
        assert np.allclose(loaded.rate_constants(),
                           toy_model.rate_constants())
        assert np.allclose(loaded.initial_state(), toy_model.initial_state())
        assert np.array_equal(loaded.matrices.reactants,
                              toy_model.matrices.reactants)
        assert np.array_equal(loaded.matrices.products,
                              toy_model.matrices.products)

    def test_round_trip_large_model(self, tmp_path):
        model = metabolic_network()
        write_model(model, tmp_path / "metabolic")
        loaded = read_model(tmp_path / "metabolic")
        assert loaded.size == model.size
        assert np.array_equal(loaded.matrices.net, model.matrices.net)

    def test_batch_round_trip(self, toy_model, tmp_path):
        batch = perturbed_batch(toy_model.nominal_parameterization(), 5,
                                np.random.default_rng(0))
        write_model(toy_model, tmp_path / "toy", batch=batch,
                    t_vector=np.linspace(0, 1, 4))
        loaded = read_batch(tmp_path / "toy")
        assert loaded.size == 5
        assert np.allclose(loaded.rate_constants, batch.rate_constants)
        assert np.allclose(loaded.initial_states, batch.initial_states)
        times = read_t_vector(tmp_path / "toy")
        assert np.allclose(times, np.linspace(0, 1, 4))

    def test_missing_file_rejected(self, toy_model, tmp_path):
        write_model(toy_model, tmp_path / "toy")
        (tmp_path / "toy" / "c_vector").unlink()
        with pytest.raises(FormatError):
            read_model(tmp_path / "toy")

    def test_shape_mismatch_rejected(self, toy_model, tmp_path):
        write_model(toy_model, tmp_path / "toy")
        (tmp_path / "toy" / "c_vector").write_text("1.0\n")
        with pytest.raises(FormatError):
            read_model(tmp_path / "toy")

    def test_non_mass_action_rejected(self, tmp_path):
        from repro.model import ReactionBasedModel
        model = ReactionBasedModel("mm")
        model.add_species("S", 1.0)
        model.add("S -> P", rate_constant=1.0, law=MichaelisMenten(km=0.5))
        with pytest.raises(FormatError):
            write_model(model, tmp_path / "mm")

    def test_batch_without_sweep_files_rejected(self, toy_model, tmp_path):
        write_model(toy_model, tmp_path / "toy")
        with pytest.raises(FormatError):
            read_batch(tmp_path / "toy")

    def test_garbage_matrix_rejected(self, toy_model, tmp_path):
        write_model(toy_model, tmp_path / "toy")
        (tmp_path / "toy" / "left_side").write_text("not a matrix\n")
        with pytest.raises(FormatError):
            read_model(tmp_path / "toy")

    def test_loaded_model_simulates_identically(self, tmp_path):
        from repro.core import simulate
        model = robertson()
        write_model(model, tmp_path / "rob")
        loaded = read_model(tmp_path / "rob")
        grid = np.array([0.0, 1.0, 10.0])
        from repro.solvers import SolverOptions
        options = SolverOptions(max_steps=100_000)
        original = simulate(model, (0, 10), grid, options=options)
        reloaded = simulate(loaded, (0, 10), grid, options=options)
        assert np.allclose(original.y, reloaded.y, rtol=1e-10)


class TestSBML:
    def test_round_trip(self, toy_model, tmp_path):
        path = tmp_path / "toy.xml"
        write_sbml(toy_model, path)
        loaded = read_sbml(path)
        assert loaded.species.names == toy_model.species.names
        assert np.allclose(loaded.rate_constants(),
                           toy_model.rate_constants())
        assert np.array_equal(loaded.matrices.net, toy_model.matrices.net)

    def test_document_is_namespaced_xml(self, toy_model, tmp_path):
        path = tmp_path / "toy.xml"
        write_sbml(toy_model, path)
        text = path.read_text()
        assert "sbml.org/sbml/level3" in text
        assert "listOfSpecies" in text

    def test_malformed_xml_rejected(self, tmp_path):
        path = tmp_path / "broken.xml"
        path.write_text("<sbml><model>")
        with pytest.raises(FormatError):
            read_sbml(path)

    def test_missing_kinetic_law_rejected(self, tmp_path):
        path = tmp_path / "nolaw.xml"
        path.write_text("""<sbml><model id="m">
          <listOfSpecies><species id="A" initialConcentration="1"/>
          </listOfSpecies>
          <listOfReactions><reaction id="R0">
            <listOfReactants>
              <speciesReference species="A" stoichiometry="1"/>
            </listOfReactants>
          </reaction></listOfReactions>
        </model></sbml>""")
        with pytest.raises(FormatError):
            read_sbml(path)

    def test_unnamespaced_document_accepted(self, tmp_path):
        path = tmp_path / "plain.xml"
        path.write_text("""<sbml><model id="m">
          <listOfSpecies><species id="A" initialConcentration="2.5"/>
          <species id="B"/></listOfSpecies>
          <listOfReactions><reaction id="R0">
            <listOfReactants>
              <speciesReference species="A" stoichiometry="1"/>
            </listOfReactants>
            <listOfProducts>
              <speciesReference species="B" stoichiometry="1"/>
            </listOfProducts>
            <kineticLaw><listOfLocalParameters>
              <localParameter id="k" value="0.7"/>
            </listOfLocalParameters></kineticLaw>
          </reaction></listOfReactions>
        </model></sbml>""")
        model = read_sbml(path)
        assert model.species[0].initial_concentration == 2.5
        assert model.rate_constants()[0] == 0.7

    def test_fractional_stoichiometry_rejected(self, tmp_path):
        path = tmp_path / "frac.xml"
        path.write_text("""<sbml><model id="m">
          <listOfSpecies><species id="A" initialConcentration="1"/>
          </listOfSpecies>
          <listOfReactions><reaction id="R0">
            <listOfReactants>
              <speciesReference species="A" stoichiometry="0.5"/>
            </listOfReactants>
            <kineticLaw><listOfLocalParameters>
              <localParameter id="k" value="1"/>
            </listOfLocalParameters></kineticLaw>
          </reaction></listOfReactions>
        </model></sbml>""")
        with pytest.raises(FormatError):
            read_sbml(path)


class TestConverters:
    def test_sbml_to_biosimware_and_back(self, toy_model, tmp_path):
        write_sbml(toy_model, tmp_path / "toy.xml")
        sbml_to_biosimware(tmp_path / "toy.xml", tmp_path / "folder")
        biosimware_to_sbml(tmp_path / "folder", tmp_path / "round.xml")
        final = read_sbml(tmp_path / "round.xml")
        assert np.array_equal(final.matrices.net, toy_model.matrices.net)
        assert np.allclose(final.rate_constants(),
                           toy_model.rate_constants())


class TestLoaderHardening:
    """Corrupt inputs are rejected at load with messages naming the
    culprit species/reaction, not discovered mid-campaign as NaNs."""

    SBML_TEMPLATE = """<sbml><model id="m">
      <listOfSpecies>
        <species id="A" initialConcentration="{a_init}"/>
        <species id="B" initialConcentration="1"/>
      </listOfSpecies>
      <listOfReactions><reaction id="R_decay">
        <listOfReactants>
          <speciesReference species="A" stoichiometry="1"/>
        </listOfReactants>
        <listOfProducts>
          <speciesReference species="B" stoichiometry="1"/>
        </listOfProducts>
        <kineticLaw><listOfLocalParameters>
          <localParameter id="k" value="{rate}"/>
        </listOfLocalParameters></kineticLaw>
      </reaction></listOfReactions>
    </model></sbml>"""

    def write(self, tmp_path, a_init="2.0", rate="0.5"):
        path = tmp_path / "model.xml"
        path.write_text(self.SBML_TEMPLATE.format(a_init=a_init, rate=rate))
        return path

    def test_sbml_nan_initial_amount_rejected(self, tmp_path):
        with pytest.raises(FormatError, match="'A'"):
            read_sbml(self.write(tmp_path, a_init="nan"))

    def test_sbml_negative_initial_amount_rejected(self, tmp_path):
        with pytest.raises(FormatError, match="'A'"):
            read_sbml(self.write(tmp_path, a_init="-1.0"))

    def test_sbml_unparseable_initial_amount_rejected(self, tmp_path):
        with pytest.raises(FormatError, match="'A'"):
            read_sbml(self.write(tmp_path, a_init="plenty"))

    def test_sbml_nonfinite_rate_rejected(self, tmp_path):
        with pytest.raises(FormatError, match="R_decay"):
            read_sbml(self.write(tmp_path, rate="inf"))

    def test_sbml_unparseable_rate_rejected(self, tmp_path):
        with pytest.raises(FormatError, match="R_decay"):
            read_sbml(self.write(tmp_path, rate="fast"))

    def test_biosimware_nan_initial_amount_rejected(self, toy_model,
                                                    tmp_path):
        folder = write_model(toy_model, tmp_path / "toy")
        initial = (folder / "M_0").read_text().split("\t")
        initial[1] = "nan"
        (folder / "M_0").write_text("\t".join(initial))
        with pytest.raises(FormatError, match="'B'"):
            read_model(folder)

    def test_biosimware_negative_initial_amount_rejected(self, toy_model,
                                                         tmp_path):
        folder = write_model(toy_model, tmp_path / "toy")
        initial = (folder / "M_0").read_text().split("\t")
        initial[0] = "-3.0"
        (folder / "M_0").write_text("\t".join(initial))
        with pytest.raises(FormatError, match="'A'"):
            read_model(folder)

    def test_biosimware_nonfinite_rate_rejected(self, toy_model, tmp_path):
        folder = write_model(toy_model, tmp_path / "toy")
        rates = (folder / "c_vector").read_text().splitlines()
        rates[2] = "inf"
        (folder / "c_vector").write_text("\n".join(rates) + "\n")
        with pytest.raises(FormatError, match="R2"):
            read_model(folder)

    def test_biosimware_batch_nan_state_rejected(self, toy_model, tmp_path):
        batch = perturbed_batch(toy_model.nominal_parameterization(), 3,
                                np.random.default_rng(0))
        folder = write_model(toy_model, tmp_path / "toy", batch=batch)
        lines = (folder / "MX_0").read_text().splitlines()
        row = lines[1].split("\t")
        row[2] = "nan"
        lines[1] = "\t".join(row)
        (folder / "MX_0").write_text("\n".join(lines) + "\n")
        with pytest.raises(FormatError, match="row 1"):
            read_batch(folder)

    def test_biosimware_batch_nonfinite_rate_rejected(self, toy_model,
                                                      tmp_path):
        batch = perturbed_batch(toy_model.nominal_parameterization(), 3,
                                np.random.default_rng(0))
        folder = write_model(toy_model, tmp_path / "toy", batch=batch)
        lines = (folder / "cs_vector").read_text().splitlines()
        row = lines[2].split("\t")
        row[0] = "-inf"
        lines[2] = "\t".join(row)
        (folder / "cs_vector").write_text("\n".join(lines) + "\n")
        with pytest.raises(FormatError, match="'R0'"):
            read_batch(folder)
