"""Unit tests for species and the species registry."""

import pytest

from repro.errors import ModelError
from repro.model import Species, SpeciesRegistry


class TestSpecies:
    def test_valid_species(self):
        species = Species("ATP", 1.5)
        assert species.name == "ATP"
        assert species.initial_concentration == 1.5

    def test_default_concentration_is_zero(self):
        assert Species("X").initial_concentration == 0.0

    @pytest.mark.parametrize("bad_name", ["2X", "A-B", "A B", "", "A+", "é"])
    def test_invalid_names_rejected(self, bad_name):
        with pytest.raises(ModelError):
            Species(bad_name)

    @pytest.mark.parametrize("good_name", ["X", "_x", "hkEGLCGSH2", "S0"])
    def test_identifier_names_accepted(self, good_name):
        assert Species(good_name).name == good_name

    def test_negative_concentration_rejected(self):
        with pytest.raises(ModelError):
            Species("X", -0.1)

    def test_nan_concentration_rejected(self):
        with pytest.raises(ModelError):
            Species("X", float("nan"))

    def test_with_concentration_returns_copy(self):
        original = Species("X", 1.0)
        changed = original.with_concentration(2.0)
        assert changed.initial_concentration == 2.0
        assert original.initial_concentration == 1.0

    def test_species_equality_is_by_value(self):
        assert Species("X", 1.0) == Species("X", 1.0)
        assert Species("X", 1.0) != Species("X", 2.0)


class TestSpeciesRegistry:
    def test_add_assigns_sequential_indices(self):
        registry = SpeciesRegistry()
        assert registry.add(Species("A")) == 0
        assert registry.add(Species("B")) == 1
        assert registry.add(Species("C")) == 2

    def test_readd_identical_is_idempotent(self):
        registry = SpeciesRegistry()
        registry.add(Species("A", 1.0))
        assert registry.add(Species("A", 1.0)) == 0
        assert len(registry) == 1

    def test_readd_conflicting_concentration_rejected(self):
        registry = SpeciesRegistry()
        registry.add(Species("A", 1.0))
        with pytest.raises(ModelError):
            registry.add(Species("A", 2.0))

    def test_index_of_unknown_species_raises(self):
        registry = SpeciesRegistry()
        with pytest.raises(ModelError):
            registry.index_of("missing")

    def test_contains_and_iteration(self):
        registry = SpeciesRegistry()
        registry.add(Species("A", 1.0))
        registry.add(Species("B", 2.0))
        assert "A" in registry
        assert "Z" not in registry
        assert [s.name for s in registry] == ["A", "B"]

    def test_names_and_initial_concentrations_ordered(self):
        registry = SpeciesRegistry()
        registry.add(Species("B", 2.0))
        registry.add(Species("A", 1.0))
        assert registry.names == ["B", "A"]
        assert registry.initial_concentrations() == [2.0, 1.0]

    def test_getitem_by_index(self):
        registry = SpeciesRegistry()
        registry.add(Species("A", 1.0))
        assert registry[0].name == "A"
