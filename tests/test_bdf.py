"""Tests for the from-scratch variable-order BDF solver."""

import numpy as np
import pytest
from scipy.integrate import solve_ivp

from repro.core import simulate
from repro.models import robertson
from repro.solvers import BDF, SolverOptions
from repro.solvers.bdf import (ALPHA, ERROR_CONST, GAMMA, KAPPA, MAX_ORDER,
                               change_difference_array)


def rob(t, y):
    return np.array([-0.04 * y[0] + 1e4 * y[1] * y[2],
                     0.04 * y[0] - 1e4 * y[1] * y[2] - 3e7 * y[1] ** 2,
                     3e7 * y[1] ** 2])


def rob_jac(t, y):
    return np.array([[-0.04, 1e4 * y[2], 1e4 * y[1]],
                     [0.04, -1e4 * y[2] - 6e7 * y[1], -1e4 * y[1]],
                     [0.0, 6e7 * y[1], 0.0]])


class TestConstants:
    def test_gamma_is_harmonic_cumsum(self):
        assert GAMMA[0] == 0.0
        assert GAMMA[2] == pytest.approx(1.0 + 0.5)
        assert GAMMA[5] == pytest.approx(sum(1.0 / k for k in range(1, 6)))

    def test_alpha_relation(self):
        assert np.allclose(ALPHA, (1 - KAPPA) * GAMMA)

    def test_error_constants_positive_for_usable_orders(self):
        assert np.all(ERROR_CONST[1:MAX_ORDER + 1] > 0)

    def test_difference_rescaling_identity(self):
        """factor = 1 must leave the difference table unchanged."""
        rng = np.random.default_rng(0)
        differences = rng.standard_normal((MAX_ORDER + 3, 4))
        copy = differences.copy()
        change_difference_array(differences, 3, 1.0)
        assert np.allclose(differences, copy)

    def test_difference_rescaling_consistency(self):
        """Halving twice equals scaling by 1/4 (group property)."""
        rng = np.random.default_rng(1)
        first = rng.standard_normal((MAX_ORDER + 3, 3))
        second = first.copy()
        change_difference_array(first, 2, 0.5)
        change_difference_array(first, 2, 0.5)
        change_difference_array(second, 2, 0.25)
        assert np.allclose(first, second, atol=1e-12)


class TestAccuracy:
    def test_linear_decay(self):
        solver = BDF(SolverOptions(rtol=1e-8, atol=1e-12))
        grid = np.linspace(0, 5, 6)
        result = solver.solve(lambda t, y: -y, (0, 5), np.array([1.0]),
                              grid)
        assert result.success
        assert np.allclose(result.y[:, 0], np.exp(-grid), atol=1e-7)

    def test_oscillator(self):
        solver = BDF(SolverOptions(rtol=1e-8, atol=1e-12))
        grid = np.linspace(0, 2 * np.pi, 5)
        result = solver.solve(lambda t, y: np.array([y[1], -y[0]]),
                              (0, 2 * np.pi), np.array([1.0, 0.0]), grid)
        assert result.success
        assert np.allclose(result.y[:, 0], np.cos(grid), atol=1e-5)

    def test_robertson_against_scipy_bdf(self):
        grid = np.array([0.0, 1e-2, 1.0, 1e2, 1e4])
        solver = BDF(SolverOptions(rtol=1e-6, atol=1e-10,
                                   max_steps=200_000))
        result = solver.solve(rob, (0, 1e4), np.array([1.0, 0, 0]), grid,
                              jac=rob_jac)
        assert result.success
        reference = solve_ivp(rob, (0, 1e4), [1.0, 0, 0], method="BDF",
                              t_eval=grid, rtol=1e-10, atol=1e-13,
                              jac=rob_jac)
        assert np.allclose(result.y, reference.y.T, rtol=1e-3, atol=1e-9)

    def test_robertson_step_efficiency(self):
        """The multistep method cracks Robertson in a few hundred
        steps (the whole point of BDF)."""
        grid = np.array([0.0, 1e4])
        solver = BDF(SolverOptions(max_steps=200_000))
        result = solver.solve(rob, (0, 1e4), np.array([1.0, 0, 0]), grid,
                              jac=rob_jac)
        assert result.success
        assert result.stats.n_steps < 1_000

    def test_mass_conservation(self):
        grid = np.array([0.0, 1e2, 1e4])
        solver = BDF(SolverOptions(max_steps=200_000))
        result = solver.solve(rob, (0, 1e4), np.array([1.0, 0, 0]), grid,
                              jac=rob_jac)
        assert np.allclose(result.y.sum(axis=1), 1.0, atol=1e-6)

    def test_tightening_tolerance_reduces_error(self):
        grid = np.array([0.0, 3.0])
        errors = []
        for rtol in (1e-4, 1e-9):
            solver = BDF(SolverOptions(rtol=rtol, atol=1e-14))
            result = solver.solve(lambda t, y: -y, (0, 3),
                                  np.array([1.0]), grid)
            errors.append(abs(result.y[-1, 0] - np.exp(-3.0)))
        assert errors[1] < errors[0]


class TestBehaviour:
    def test_order_capping(self):
        options = SolverOptions(rtol=1e-5, atol=1e-10, max_steps=100_000)
        grid = np.array([0.0, 1.0])
        capped = BDF(options, max_order=1).solve(
            lambda t, y: -y, (0, 1), np.array([1.0]), grid)
        assert capped.success
        # Order-1 BDF needs far more steps than adaptive order.
        adaptive = BDF(options).solve(lambda t, y: -y, (0, 1),
                                      np.array([1.0]), grid)
        assert adaptive.success
        assert capped.stats.n_steps > 2 * adaptive.stats.n_steps

    def test_invalid_max_order_rejected(self):
        with pytest.raises(ValueError):
            BDF(max_order=9)

    def test_max_steps_status(self):
        solver = BDF(SolverOptions(max_steps=3))
        result = solver.solve(rob, (0, 1e4), np.array([1.0, 0, 0]),
                              np.array([0.0, 1e4]))
        assert result.status == "max_steps"

    def test_save_grid_hit_exactly(self):
        solver = BDF()
        grid = np.array([0.0, 0.3, 0.77, 1.0])
        result = solver.solve(lambda t, y: -y, (0, 1), np.array([1.0]),
                              grid)
        assert np.array_equal(result.t, grid)
        assert np.allclose(result.y[:, 0], np.exp(-grid), atol=1e-6)

    def test_finite_difference_jacobian_fallback(self):
        grid = np.array([0.0, 10.0])
        solver = BDF(SolverOptions(max_steps=200_000))
        result = solver.solve(rob, (0, 10), np.array([1.0, 0, 0]), grid)
        assert result.success
        assert result.stats.n_jacobian_evaluations > 0


class TestIntegration:
    def test_bdf_engine_in_facade(self):
        grid = np.array([0.0, 1.0, 100.0])
        result = simulate(robertson(), (0, 100), grid, engine="bdf",
                          options=SolverOptions(max_steps=200_000))
        assert result.all_success
        assert result.raw.methods()[0] == "bdf"
        batched = simulate(robertson(), (0, 100), grid,
                           options=SolverOptions(max_steps=200_000))
        assert np.allclose(result.y, batched.y, rtol=1e-3, atol=1e-8)
