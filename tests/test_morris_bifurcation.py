"""Tests for Morris screening, bifurcation scans, and multi-start PE."""

import numpy as np
import pytest

from repro.core import (FreeParameter, ParameterEstimation, ParameterRange,
                        SweepTarget, estimate_multi_start, morris_design,
                        run_bifurcation_scan, run_morris_screening,
                        synthetic_target)
from repro.errors import AnalysisError
from repro.models import (OBSERVED_SPECIES, TRUE_CONSTANTS, brusselator,
                          cascade, decay_chain)
from repro.solvers import SolverOptions

OPTIONS = SolverOptions(max_steps=200_000)


class TestMorrisDesign:
    def test_shape_and_bounds(self):
        rng = np.random.default_rng(0)
        points, deltas = morris_design(3, 8, 4, rng)
        assert points.shape == (8, 4, 3)
        assert deltas.shape == (8, 3)
        assert np.all(points >= -1e-12) and np.all(points <= 1 + 1e-12)

    def test_each_step_moves_exactly_one_factor(self):
        rng = np.random.default_rng(1)
        points, _ = morris_design(4, 6, 4, rng)
        for t in range(6):
            for step in range(4):
                moved = np.abs(points[t, step + 1] - points[t, step]) > 1e-12
                assert moved.sum() == 1

    def test_every_factor_moves_once_per_trajectory(self):
        rng = np.random.default_rng(2)
        points, _ = morris_design(5, 4, 4, rng)
        for t in range(4):
            total_move = np.abs(points[t, -1] - points[t, 0])
            assert np.all(total_move > 1e-12)

    def test_odd_levels_rejected(self):
        with pytest.raises(AnalysisError):
            morris_design(2, 4, 3, np.random.default_rng(0))


class TestMorrisScreening:
    def test_influential_vs_inert_factors(self):
        model = decay_chain(3)
        targets = [
            SweepTarget.rate_constant(model, 0, ParameterRange(0.5, 2.0)),
            SweepTarget.initial_concentration(model, "X2",
                                              ParameterRange(0.0, 0.01)),
        ]
        result = run_morris_screening(
            model, targets, output_species="X3", n_trajectories=10,
            t_span=(0, 2), t_eval=np.array([0.0, 2.0]), options=OPTIONS)
        assert result.n_simulations == 10 * 3
        assert result.mu_star[0] > 50 * result.mu_star[1]
        assert result.ranking()[0][0] == "k[0]"

    def test_table_renders(self):
        model = decay_chain(2)
        targets = [SweepTarget.rate_constant(model, 0,
                                             ParameterRange(0.5, 2.0))]
        result = run_morris_screening(
            model, targets, output_species="X2", n_trajectories=4,
            t_span=(0, 1), t_eval=np.array([0.0, 1.0]), options=OPTIONS)
        assert "mu*" in result.table()

    def test_requires_output_spec(self):
        model = decay_chain(2)
        targets = [SweepTarget.rate_constant(model, 0,
                                             ParameterRange(0.5, 2.0))]
        with pytest.raises(AnalysisError):
            run_morris_screening(model, targets, n_trajectories=2)


class TestBifurcationScan:
    def test_brusselator_hopf_located(self):
        model = brusselator(a=1.0)
        target = SweepTarget.rate_constant(model, 2,
                                           ParameterRange(1.0, 3.5))
        scan = run_bifurcation_scan(model, target, "X", 11, (0, 80),
                                    options=OPTIONS)
        intervals = scan.hopf_intervals()
        assert len(intervals) == 1
        low, high = intervals[0]
        assert low <= 2.0 + 1e-9 <= high + 0.3
        # Below the Hopf: stable and non-oscillating; above: unstable
        # with growing amplitude.
        below = scan.values < 1.9
        above = scan.values > 2.4
        assert np.all(scan.stable[below])
        assert np.all(~scan.stable[above])
        assert np.all(scan.amplitudes[below] == 0)
        assert np.all(scan.amplitudes[above] > 0)
        # Steady X is a for the Brusselator, independent of b.
        assert np.allclose(scan.steady_states[:, 0], 1.0, atol=1e-6)

    def test_table_renders(self):
        model = brusselator(a=1.0)
        target = SweepTarget.rate_constant(model, 2,
                                           ParameterRange(1.0, 3.0))
        scan = run_bifurcation_scan(model, target, "X", 3, (0, 40),
                                    options=OPTIONS)
        assert "stable" in scan.table()


class TestMultiStartPE:
    def test_multi_start_returns_best(self):
        truth = cascade(TRUE_CONSTANTS)
        times, observed = synthetic_target(truth, OBSERVED_SPECIES,
                                           (0, 8), 15)
        estimation = ParameterEstimation(
            cascade(TRUE_CONSTANTS), [FreeParameter(0, 1e-2, 1e2)],
            OBSERVED_SPECIES, times, observed)
        best = estimate_multi_start(estimation, n_starts=2,
                                    swarm_size=8, n_iterations=5, seed=0)
        single = estimation.estimate("fstpso", swarm_size=8,
                                     n_iterations=5, seed=0)
        assert best.fitness <= single.fitness + 1e-12
        assert best.n_simulations == 2 * 8 * 6

    def test_invalid_starts_rejected(self):
        truth = cascade(TRUE_CONSTANTS)
        times, observed = synthetic_target(truth, OBSERVED_SPECIES,
                                           (0, 8), 10)
        estimation = ParameterEstimation(
            cascade(TRUE_CONSTANTS), [FreeParameter(0, 1e-2, 1e2)],
            OBSERVED_SPECIES, times, observed)
        with pytest.raises(AnalysisError):
            estimate_multi_start(estimation, n_starts=0)
