"""Self-application gate and seeded regressions of the concurrency
analyzer (``repro lint --conc``, rules ``CNC001``–``CNC009``).

The concurrency analysis must run clean over the repo's own package
source with the committed (EMPTY) baseline — this test IS the
concurrency-safety regression guard: any future blocking call on the
event loop, await under a sync lock, swallowed cancellation, dropped
task, unlocked cross-context write, waitless predicate, unpicklable
queue payload, late generation check or leaked lock fails CI here.

Each seeded regression re-introduces one defect class and asserts the
exact rule fires (and that the repaired shape is quiet); a real-file
regression strips the lock from ``ChunkScheduler.release`` and asserts
CNC005 catches it; a hypothesis property checks the analyzer never
crashes on generated async/threaded bodies. The supervisor-crash
fixes that self-application forced into :mod:`repro.service.core`
(exception-surfacing done-callbacks on the dispatcher and per-job
tasks) get their behavioral regressions here too.
"""

import asyncio
import json
import textwrap
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.errors import LintError
from repro.lint import (CONC_RULES, ConcConfig, DEFAULT_CONC_BASELINE,
                        lint_conc, write_baseline)
from repro.model import perturbed_batch
from repro.models import lotka_volterra
from repro.service import (CampaignService, JobRequest, JobState,
                           ServiceConfig)

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def analyze(tmp_path, files, config=ConcConfig(), baseline=None):
    """Write ``{relpath: source}`` under a synthetic root and run the
    concurrency analysis over it."""
    root = tmp_path / "proj"
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return lint_conc(sorted(root.rglob("*.py")), root=root,
                     config=config, baseline_path=baseline)


def rule_ids(report):
    return {finding.rule_id for finding in report.findings}


class TestSelfGate:
    def test_package_conc_lint_is_clean(self):
        report = lint_conc()
        offending = report.at_or_above("warning")
        assert offending == [], "\n" + "\n".join(
            finding.render() for finding in offending)

    def test_committed_baseline_is_empty(self):
        payload = json.loads(DEFAULT_CONC_BASELINE.read_text())
        assert payload["format_version"] == 1
        assert payload["entries"] == [], \
            "the conc baseline must stay empty: fix or waive findings"

    def test_analysis_covers_the_serving_stack(self):
        report = lint_conc()
        covered = set(report.metadata["files"])
        for expected in ("service/core.py", "service/server.py",
                         "service/scheduler.py", "resilience/executor.py",
                         "resilience/campaign.py", "telemetry/tracer.py",
                         "telemetry/metrics.py", "io/checkpoint.py"):
            assert expected in covered


class TestSeededRegressions:
    def test_cnc001_direct_blocking_in_async(self, tmp_path):
        report = analyze(tmp_path, {"service/app.py": """
            import time

            async def handler():
                time.sleep(0.5)
        """})
        assert "CNC001" in rule_ids(report)
        assert report.exceeds("warning")

    def test_cnc001_transitive_blocking_reported_at_call_edge(
            self, tmp_path):
        report = analyze(tmp_path, {"service/app.py": """
            import time

            def crunch():
                time.sleep(0.5)

            async def handler():
                crunch()
        """})
        hits = report.by_rule("CNC001")
        assert hits
        assert any("via" in hit.message for hit in hits)

    def test_cnc001_quiet_when_offloaded(self, tmp_path):
        report = analyze(tmp_path, {"service/app.py": """
            import asyncio
            import time

            def crunch():
                time.sleep(0.5)

            async def handler():
                await asyncio.to_thread(crunch)
        """})
        assert "CNC001" not in rule_ids(report)

    def test_cnc002_await_under_sync_lock(self, tmp_path):
        report = analyze(tmp_path, {"service/app.py": """
            import asyncio
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()

                async def refresh(self):
                    with self._lock:
                        await asyncio.sleep(0)
        """})
        assert "CNC002" in rule_ids(report)

    def test_cnc003_swallowed_cancellation(self, tmp_path):
        report = analyze(tmp_path, {"service/app.py": """
            async def supervise(job):
                try:
                    await job()
                except BaseException:
                    pass
        """})
        assert "CNC003" in rule_ids(report)

    def test_cnc003_reraise_is_quiet(self, tmp_path):
        report = analyze(tmp_path, {"service/app.py": """
            async def supervise(job):
                try:
                    await job()
                except BaseException:
                    raise
        """})
        assert "CNC003" not in rule_ids(report)

    def test_cnc004_never_awaited_coroutine(self, tmp_path):
        report = analyze(tmp_path, {"service/app.py": """
            async def tick():
                return 1

            def kickoff():
                tick()
        """})
        assert "CNC004" in rule_ids(report)

    def test_cnc004_dropped_task_result(self, tmp_path):
        report = analyze(tmp_path, {"service/app.py": """
            import asyncio

            async def tick():
                return 1

            async def main():
                asyncio.create_task(tick())
        """})
        hits = report.by_rule("CNC004")
        assert any("garbage-collected" in hit.message for hit in hits)

    def test_cnc005_lock_discipline_violation(self, tmp_path):
        report = analyze(tmp_path, {"service/state.py": """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []

                def safe_add(self, item):
                    with self._lock:
                        self.items.append(item)

                def fast_add(self, item):
                    self.items.append(item)
        """})
        assert "CNC005" in rule_ids(report)

    def test_cnc005_multi_context_unlocked_write(self, tmp_path):
        source = """
            import threading

            class Counter:
                def __init__(self):
                    self.count = 0

                def bump(self):
                    self.count += 1

            def worker(counter):
                counter.bump()

            async def tick(counter):
                counter.bump()

            def spawn(counter):
                thread = threading.Thread(target=worker,
                                          args=(counter,))
                thread.start()
        """
        report = analyze(tmp_path / "a", {"service/state.py": source})
        assert "CNC005" in rule_ids(report)
        # Outside the configured shared-state subsystems the
        # multi-context trigger stays quiet.
        report = analyze(tmp_path / "b", {"analysis/state.py": source})
        assert "CNC005" not in rule_ids(report)

    def test_cnc006_wait_outside_while(self, tmp_path):
        report = analyze(tmp_path, {"service/gate.py": """
            import threading

            class Gate:
                def __init__(self):
                    self._cond = threading.Condition()
                    self.ready = False

                def wait_ready(self):
                    with self._cond:
                        if not self.ready:
                            self._cond.wait()
        """})
        assert "CNC006" in rule_ids(report)

    def test_cnc006_while_predicate_is_quiet(self, tmp_path):
        report = analyze(tmp_path, {"service/gate.py": """
            import threading

            class Gate:
                def __init__(self):
                    self._cond = threading.Condition()
                    self.ready = False

                def wait_ready(self):
                    with self._cond:
                        while not self.ready:
                            self._cond.wait()
        """})
        assert "CNC006" not in rule_ids(report)

    def test_cnc007_unpicklable_across_queue(self, tmp_path):
        report = analyze(tmp_path, {"resilience/ship.py": """
            import multiprocessing
            import threading

            class Handle:
                def __init__(self):
                    self._lock = threading.Lock()

            def ship():
                jobs = multiprocessing.Queue()
                handle = Handle()
                jobs.put(handle)
        """})
        assert "CNC007" in rule_ids(report)

    def test_cnc008_generation_checked_after_payload(self, tmp_path):
        report = analyze(tmp_path, {"resilience/consume.py": """
            def consume(state, token, payload):
                slot, generation = token
                state.results[slot] = payload
                if generation != state.generations[slot]:
                    return
        """})
        assert "CNC008" in rule_ids(report)

    def test_cnc008_missing_generation_check(self, tmp_path):
        report = analyze(tmp_path, {"resilience/consume.py": """
            def consume(state, token, payload):
                slot, _gen = token
                state.results[slot] = payload
        """})
        hits = report.by_rule("CNC008")
        assert any("never" in hit.message for hit in hits)

    def test_cnc008_guard_before_payload_is_quiet(self, tmp_path):
        report = analyze(tmp_path, {"resilience/consume.py": """
            def consume(state, token, payload):
                slot, generation = token
                if generation != state.generations[slot]:
                    return
                state.results[slot] = payload
        """})
        assert "CNC008" not in rule_ids(report)

    def test_cnc009_release_outside_finally(self, tmp_path):
        report = analyze(tmp_path, {"service/locks.py": """
            import threading

            _LOCK = threading.Lock()

            def risky(update):
                _LOCK.acquire()
                update()
                _LOCK.release()
        """})
        assert "CNC009" in rule_ids(report)

    def test_cnc009_try_finally_is_quiet(self, tmp_path):
        report = analyze(tmp_path, {"service/locks.py": """
            import threading

            _LOCK = threading.Lock()

            def risky(update):
                _LOCK.acquire()
                try:
                    update()
                finally:
                    _LOCK.release()
        """})
        assert "CNC009" not in rule_ids(report)


class TestRealFileRegression:
    """Strip ``with self._cond:`` from ``ChunkScheduler.release`` and
    the analyzer must notice the now-unlocked inflight accounting."""

    LOCKED = ("    def release(self, tenant: str, width: int) -> None:\n"
              "        with self._cond:\n"
              "            lane = self._lane(tenant)\n"
              "            self._inflight = max(0, self._inflight - 1)\n"
              "            lane.inflight = max(0, lane.inflight - 1)\n"
              "            self._cond.notify_all()\n")
    UNLOCKED = ("    def release(self, tenant: str, width: int) -> None:\n"
                "        lane = self._lane(tenant)\n"
                "        self._inflight = max(0, self._inflight - 1)\n"
                "        lane.inflight = max(0, lane.inflight - 1)\n"
                "        self._cond.notify_all()\n")

    def test_unlocked_scheduler_release_fires_cnc005(self, tmp_path):
        source = (REPO_SRC / "service" / "scheduler.py").read_text()
        broken = source.replace(self.LOCKED, self.UNLOCKED)
        assert broken != source, \
            "ChunkScheduler.release changed; update the revert here"
        clean = analyze(tmp_path,
                        {"service/scheduler.py": source})
        assert "CNC005" not in rule_ids(clean)
        report = analyze(tmp_path,
                         {"service/scheduler.py": broken})
        hits = report.by_rule("CNC005")
        assert any("_inflight" in hit.message for hit in hits)


class TestWaivers:
    def test_pragma_suppresses_and_counts(self, tmp_path):
        report = analyze(tmp_path, {"service/locks.py": """
            import threading

            _LOCK = threading.Lock()

            def risky(update):
                _LOCK.acquire()  # lint: skip=CNC009
                update()
                _LOCK.release()
        """})
        assert "CNC009" not in rule_ids(report)
        assert report.metadata["waived"] >= 1

    def test_stale_conc_waiver_becomes_lnt000(self, tmp_path):
        report = analyze(tmp_path, {"service/locks.py": """
            def benign():  # lint: skip=CNC006
                return 1
        """})
        assert "LNT000" in rule_ids(report)


class TestBaselineMachinery:
    DIRTY = """
        import threading

        _LOCK = threading.Lock()

        def risky(update):
            _LOCK.acquire()
            update()
    """

    def _tree(self, tmp_path):
        root = tmp_path / "proj"
        (root / "service").mkdir(parents=True, exist_ok=True)
        path = root / "service" / "locks.py"
        path.write_text(textwrap.dedent(self.DIRTY))
        return root, path

    def test_baseline_subtracts_known_findings(self, tmp_path):
        root, path = self._tree(tmp_path)
        dirty = lint_conc([path], root=root)
        assert dirty.by_rule("CNC009")
        baseline = tmp_path / "baseline.json"
        count = write_baseline(dirty, baseline)
        assert count >= 1
        clean = lint_conc([path], root=root, baseline_path=baseline)
        assert clean.findings == []
        assert clean.metadata["baselined"] == count

    def test_stale_baseline_entry_becomes_lnt001(self, tmp_path):
        root, path = self._tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        write_baseline(lint_conc([path], root=root), baseline)
        path.write_text("def risky(update):\n    update()\n")
        report = lint_conc([path], root=root, baseline_path=baseline)
        hits = report.by_rule("LNT001")
        assert hits
        assert any("CNC009" in hit.message for hit in hits)
        assert report.exceeds("warning")

    def test_corrupt_baseline_rejected(self, tmp_path):
        root, path = self._tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{not json")
        with pytest.raises(LintError, match="valid JSON"):
            lint_conc([path], root=root, baseline_path=baseline)


class TestConcCLI:
    def test_dirty_file_fails_on_warning(self, tmp_path, capsys):
        path = tmp_path / "locks.py"
        path.write_text(textwrap.dedent(TestBaselineMachinery.DIRTY))
        assert main(["lint", "--conc", str(path),
                     "--fail-on", "warning"]) == 1
        assert "CNC009" in capsys.readouterr().out

    def test_clean_subpackage_exits_zero(self, capsys):
        telemetry = REPO_SRC / "telemetry"
        assert main(["lint", "--conc", str(telemetry),
                     "--fail-on", "warning"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_write_baseline_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "locks.py"
        path.write_text(textwrap.dedent(TestBaselineMachinery.DIRTY))
        baseline = tmp_path / "conc.json"
        assert main(["lint", "--conc", str(path),
                     "--write-baseline", "--baseline",
                     str(baseline)]) == 0
        capsys.readouterr()
        assert json.loads(baseline.read_text())["entries"]
        assert main(["lint", "--conc", str(path), "--baseline",
                     str(baseline), "--fail-on", "warning"]) == 0

    def test_list_rules_includes_conc_family(self, capsys):
        assert main(["lint", "--list-rules", "--format", "json"]) == 0
        rules = {entry["rule_id"]: entry
                 for entry in json.loads(capsys.readouterr().out)}
        for rule_id in CONC_RULES:
            assert rule_id in rules
        assert rules["CNC001"]["family"] == "conc"


T_EVAL = np.linspace(0.0, 2.0, 5)


@pytest.fixture(scope="module")
def lv_model():
    return lotka_volterra()


@pytest.fixture(scope="module")
def lv_batch(lv_model):
    rng = np.random.default_rng(23)
    return perturbed_batch(lv_model.nominal_parameterization(), 6, rng)


class TestSupervisorCrashSurfacing:
    """Behavioral regressions of the self-application fixes: a bug in
    the service's own supervision code must quarantine the affected
    jobs with an explicit reason, never strand them RUNNING/QUEUED
    with the failure invisible."""

    def _request(self, lv_model, lv_batch):
        return JobRequest(model=lv_model, t_span=(0.0, 2.0),
                          t_eval=T_EVAL, parameters=lv_batch,
                          chunk_size=3)

    def test_job_supervisor_crash_quarantines_the_job(
            self, lv_model, lv_batch, monkeypatch):
        def explode(*args, **kwargs):
            raise RuntimeError("attempt exploded")
        monkeypatch.setattr("repro.service.core.run_campaign", explode)

        async def _run():
            service = CampaignService(
                config=ServiceConfig(poll_interval=0.005))
            await service.start()
            job = service.submit(self._request(lv_model, lv_batch))
            job = await service.wait(job.job_id, timeout=10.0)
            await service.stop()
            return service, job

        service, job = asyncio.run(_run())
        assert job.state == JobState.QUARANTINED
        assert job.reason == "supervisor-crash"
        assert "attempt exploded" in job.error
        assert job.done.is_set()
        assert service.metrics.counters.get(
            "service.supervisor.crashes") == 1

    def test_dispatcher_crash_quarantines_queued_jobs(
            self, lv_model, lv_batch):
        async def _run():
            service = CampaignService(
                config=ServiceConfig(poll_interval=0.005))
            await service.start()
            job = service.submit(self._request(lv_model, lv_batch))

            def explode():
                raise RuntimeError("dispatcher exploded")
            service.ladder.effective_inflight_chunks = explode
            job = await service.wait(job.job_id, timeout=10.0)
            return service, job

        service, job = asyncio.run(_run())
        assert job.state == JobState.QUARANTINED
        assert job.reason == "supervisor-crash"
        assert "dispatcher crashed" in job.error
        assert job.done.is_set()
        assert service._dispatcher_error is not None
        assert service.metrics.counters.get(
            "service.supervisor.crashes") == 1


_GENERATED_STATEMENTS = (
    "time.sleep(0.01)",
    "await asyncio.sleep(0)",
    "with lock:\n        await asyncio.sleep(0)",
    "with lock:\n        item = item + 1",
    "lock.acquire()",
    "lock.release()",
    "with cond:\n        cond.wait()",
    "while not flag:\n        cond.wait()",
    "jobs.put(item)",
    "jobs.put(threading.Lock())",
    "item = jobs.get()",
    "asyncio.create_task(helper())",
    "task = asyncio.create_task(helper())",
    "helper()",
    "try:\n        await helper()\n    except BaseException:\n"
    "        pass",
    "slot, generation = token",
    "value = payload",
    "if generation != 0:\n        return None",
    "threading.Thread(target=time.sleep).start()",
    "await asyncio.to_thread(time.sleep, 0.01)",
)


class TestNeverCrashes:
    @given(st.lists(st.sampled_from(_GENERATED_STATEMENTS),
                    min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_generated_bodies_lint_without_crashing(self, statements):
        import tempfile
        source = ("import asyncio\n"
                  "import multiprocessing\n"
                  "import threading\n"
                  "import time\n\n"
                  "lock = threading.Lock()\n"
                  "cond = threading.Condition()\n"
                  "jobs = multiprocessing.Queue()\n\n\n"
                  "async def helper():\n"
                  "    return 1\n\n\n"
                  "async def driver(token, payload, flag, item):\n")
        source += "".join(f"    {stmt}\n" for stmt in statements)
        source += "    return flag\n"
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "proj"
            (root / "service").mkdir(parents=True)
            path = root / "service" / "gen.py"
            path.write_text(source)
            report = lint_conc([path], root=root)
            known = set(CONC_RULES) | {"LNT000", "LNT001"}
            for finding in report.findings:
                assert finding.rule_id in known


class TestRuleRegistryContract:
    def test_every_conc_rule_is_registered_with_doc(self):
        from repro.lint import rule_info
        for rule_id, (severity, _summary) in CONC_RULES.items():
            info = rule_info(rule_id)
            assert info is not None
            assert info.family == "conc"
            assert info.severity == severity
            assert len(info.doc) > 20

    def test_conc_rule_ids_are_disjoint_from_other_families(self):
        from repro.lint import (DEEP_RULES, KERNEL_RULES, MODEL_RULES,
                                SHAPE_RULES)
        for other in (DEEP_RULES, KERNEL_RULES, MODEL_RULES,
                      SHAPE_RULES):
            assert not set(CONC_RULES) & set(other)
