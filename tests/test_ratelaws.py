"""Tests for arbitrary rate laws (expression AST, parser, integration)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import simulate
from repro.errors import KineticsError, ParseError
from repro.model import (CustomLaw, ODESystem, ReactionBasedModel,
                         parse_expression)
from repro.solvers import SolverOptions

from .conftest import finite_difference_jacobian


def evaluate(text, **values):
    expression = parse_expression(text)
    arrays = {k: np.asarray(v, dtype=np.float64) for k, v in values.items()}
    return expression.evaluate(arrays)


class TestParser:
    def test_arithmetic(self):
        assert evaluate("1 + 2 * 3") == pytest.approx(7.0)
        assert evaluate("(1 + 2) * 3") == pytest.approx(9.0)
        assert evaluate("8 / 4 / 2") == pytest.approx(1.0)
        assert evaluate("2 ^ 3") == pytest.approx(8.0)
        assert evaluate("-3 + 5") == pytest.approx(2.0)

    def test_variables(self):
        assert evaluate("k * S", k=2.0, S=3.0) == pytest.approx(6.0)

    def test_vectorized_evaluation(self):
        result = evaluate("k * S / (1 + S)", k=2.0, S=np.array([1.0, 3.0]))
        assert np.allclose(result, [1.0, 1.5])

    def test_scientific_notation(self):
        assert evaluate("1.5e2") == pytest.approx(150.0)

    def test_negative_exponent(self):
        assert evaluate("2 ^ -1") == pytest.approx(0.5)

    @pytest.mark.parametrize("bad", ["k *", "(k", "k + + S", "2 ^ S",
                                     "k $ S", ""])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ParseError):
            parse_expression(bad)

    def test_unknown_symbol_at_evaluation(self):
        with pytest.raises(KineticsError):
            evaluate("k * X", k=1.0)


class TestDifferentiation:
    @pytest.mark.parametrize("text,variable", [
        ("k * S", "S"),
        ("k * S / (0.4 + S)", "S"),
        ("k * S ^ 2 / (1 + S ^ 2)", "S"),
        ("k * (A - B) * (A + B)", "A"),
        ("k * A / B", "B"),
        ("k * (1 + A) ^ 3", "A"),
    ])
    def test_matches_finite_differences(self, text, variable):
        expression = parse_expression(text)
        derivative = expression.differentiate(variable).simplified()
        values = {"k": np.asarray(1.7), "S": np.asarray(0.9),
                  "A": np.asarray(1.3), "B": np.asarray(0.6)}
        epsilon = 1e-7
        bumped = dict(values)
        bumped[variable] = values[variable] + epsilon
        numeric = (expression.evaluate(bumped)
                   - expression.evaluate(values)) / epsilon
        assert derivative.evaluate(values) == pytest.approx(
            float(numeric), rel=1e-5)

    def test_derivative_of_unrelated_variable_is_zero(self):
        expression = parse_expression("k * S")
        derivative = expression.differentiate("Q").simplified()
        assert derivative.evaluate({}) == pytest.approx(0.0)

    @settings(max_examples=20, deadline=None)
    @given(a=st.floats(0.1, 5.0), b=st.floats(0.1, 5.0),
           s=st.floats(0.1, 5.0))
    def test_hill_like_derivative_property(self, a, b, s):
        expression = parse_expression("k * S ^ 2 / (km ^ 2 + S ^ 2)")
        derivative = expression.differentiate("S")
        values = {"k": np.asarray(a), "km": np.asarray(b),
                  "S": np.asarray(s)}
        epsilon = 1e-6 * max(s, 1.0)
        bumped = dict(values)
        bumped["S"] = values["S"] + epsilon
        numeric = (expression.evaluate(bumped)
                   - expression.evaluate(values)) / epsilon
        assert float(derivative.evaluate(values)) == pytest.approx(
            float(numeric), rel=1e-3, abs=1e-8)


class TestCustomLawIntegration:
    def make_model(self):
        """S -> P with a substrate-inhibited custom law."""
        model = ReactionBasedModel("custom")
        model.add_species("S", 2.0)
        model.add_species("P", 0.0)
        model.add("S -> P", rate_constant=1.5,
                  law=CustomLaw.from_string("k * S / (0.4 + S + S^2 / 2)"))
        return model

    def test_flux_value(self):
        model = self.make_model()
        system = ODESystem.from_model(model)
        flux = system.flux(np.array([[2.0, 0.0]]),
                           model.rate_constants())
        expected = 1.5 * 2.0 / (0.4 + 2.0 + 2.0)
        assert flux[0, 0] == pytest.approx(expected)

    def test_jacobian_matches_finite_differences(self):
        model = self.make_model()
        system = ODESystem.from_model(model)
        constants = model.rate_constants()
        state = np.array([2.0, 0.0])
        analytic = system.jacobian_single(state, constants)
        numeric = finite_difference_jacobian(
            lambda x: system.rhs_single(x, constants), state)
        assert np.allclose(analytic, numeric, atol=1e-6)

    def test_simulates_on_every_engine(self):
        model = self.make_model()
        grid = np.linspace(0, 5, 6)
        options = SolverOptions(max_steps=100_000)
        batched = simulate(model, (0, 5), grid, options=options)
        scalar = simulate(model, (0, 5), grid, engine="radau5",
                          options=options)
        assert batched.all_success and scalar.all_success
        assert np.allclose(batched.y, scalar.y, rtol=1e-5, atol=1e-8)
        # Conservation S + P through the custom flux.
        totals = batched.y[0].sum(axis=1)
        assert np.allclose(totals, totals[0], rtol=1e-8)

    def test_custom_law_with_activator_species(self):
        """A custom law may read species outside the reactant side."""
        model = ReactionBasedModel("activated")
        model.add_species("S", 1.0)
        model.add_species("P", 0.0)
        model.add_species("ACT", 0.5)
        model.add("S -> P", rate_constant=2.0,
                  law=CustomLaw.from_string("k * S * ACT / (0.1 + ACT)"))
        system = ODESystem.from_model(model)
        state = np.array([1.0, 0.0, 0.5])
        analytic = system.jacobian_single(state, model.rate_constants())
        numeric = finite_difference_jacobian(
            lambda x: system.rhs_single(x, model.rate_constants()), state)
        assert np.allclose(analytic, numeric, atol=1e-6)

    def test_unknown_species_in_law_rejected(self):
        model = ReactionBasedModel("broken")
        model.add_species("S", 1.0)
        model.add("S -> 0", rate_constant=1.0,
                  law=CustomLaw.from_string("k * S * GHOST"))
        with pytest.raises(KineticsError):
            ODESystem.from_model(model)

    def test_batched_sweep_over_custom_law_constant(self):
        """k participates in sweeps exactly like mass-action constants."""
        from repro.core import ParameterRange, SweepTarget, run_psa_1d
        model = self.make_model()
        target = SweepTarget.rate_constant(model, 0,
                                           ParameterRange(0.5, 3.0))
        from repro.core import endpoint_metric
        result = run_psa_1d(model, target, 6, (0, 5),
                            np.array([0.0, 5.0]),
                            metric=endpoint_metric(model, "P"))
        assert result.simulation.all_success
        assert np.all(np.diff(result.metric_values) > 0)
