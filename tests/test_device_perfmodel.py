"""Tests for the virtual device and the analytic performance model."""

import pytest

from repro.errors import SolverError
from repro.gpu import (DEVICES, GTX_1650, KernelCounters, TITAN_X,
                       VirtualDevice, estimate_device_time, occupancy)


class TestVirtualDevice:
    def test_titan_x_preset_matches_paper_configuration(self):
        assert TITAN_X.cores == 3072
        assert TITAN_X.clock_ghz == pytest.approx(1.075)
        assert TITAN_X.memory_gb == 12.0

    def test_peak_gflops(self):
        assert TITAN_X.peak_gflops == pytest.approx(
            3072 * 1.075 * 2.0, rel=1e-12)

    def test_memory_fits(self):
        assert TITAN_X.memory_fits(1000)
        assert not TITAN_X.memory_fits(10 ** 12)

    def test_invalid_device_rejected(self):
        with pytest.raises(SolverError):
            VirtualDevice("broken", cores=0, clock_ghz=1.0, memory_gb=1.0)

    def test_registry(self):
        assert DEVICES[TITAN_X.name] is TITAN_X
        assert DEVICES[GTX_1650.name] is GTX_1650


class TestOccupancy:
    def test_small_batch_underutilizes(self):
        assert occupancy(1, 4, TITAN_X) < 0.01

    def test_large_batch_saturates(self):
        assert occupancy(2048, 64, TITAN_X) == 1.0

    def test_monotone_in_batch(self):
        values = [occupancy(b, 16, TITAN_X) for b in (1, 8, 64, 512)]
        assert values == sorted(values)


class TestEstimates:
    def make_counters(self, scale=1):
        return KernelCounters(
            rhs_kernel_launches=100 * scale,
            rhs_simulation_evaluations=10_000 * scale,
            jacobian_kernel_launches=10 * scale,
            jacobian_simulation_evaluations=100 * scale,
            factorizations=50 * scale,
            newton_iterations=500 * scale,
        )

    def test_estimate_positive_and_decomposed(self):
        estimate = estimate_device_time(self.make_counters(), 64, 16, 16)
        assert estimate.launch_seconds > 0
        assert estimate.arithmetic_seconds > 0
        assert estimate.linear_algebra_seconds > 0
        assert estimate.total_seconds == pytest.approx(
            estimate.launch_seconds + estimate.arithmetic_seconds
            + estimate.linear_algebra_seconds)

    def test_estimate_scales_with_workload(self):
        small = estimate_device_time(self.make_counters(1), 64, 16, 16)
        large = estimate_device_time(self.make_counters(10), 64, 16, 16)
        assert large.total_seconds > small.total_seconds

    def test_bigger_device_is_faster_on_saturating_workload(self):
        counters = self.make_counters(100)
        big = estimate_device_time(counters, 4096, 128, 128, TITAN_X)
        small = estimate_device_time(counters, 4096, 128, 128, GTX_1650)
        assert big.arithmetic_seconds < small.arithmetic_seconds

    def test_oversubscription_penalizes_launches(self):
        counters = self.make_counters()
        normal = estimate_device_time(counters, 1024, 8, 8)
        oversubscribed = estimate_device_time(counters, 8192, 8, 8)
        assert oversubscribed.launch_seconds > normal.launch_seconds
