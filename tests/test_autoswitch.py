"""Tests for the DOPRI5 -> Radau auto-switching driver."""

import numpy as np
import pytest

from repro.solvers import AutoSwitchSolver, ScipyLSODA, SolverOptions


def vdp(t, y, mu=1000.0):
    return np.array([y[1], mu * (1 - y[0] ** 2) * y[1] - y[0]])


def vdp_jac(t, y, mu=1000.0):
    return np.array([[0.0, 1.0],
                     [-2 * mu * y[0] * y[1] - 1.0, mu * (1 - y[0] ** 2)]])


def oscillator(t, y):
    return np.array([y[1], -y[0]])


class TestRouting:
    def test_nonstiff_problem_stays_on_dopri5(self):
        solver = AutoSwitchSolver(probe_jacobian=False)
        result = solver.solve(oscillator, (0, 10), np.array([1.0, 0.0]),
                              np.linspace(0, 10, 5))
        assert result.success
        assert result.method == "autoswitch(dopri5)"

    def test_probe_routes_stiff_problem_directly(self):
        solver = AutoSwitchSolver(SolverOptions(max_steps=100_000))
        result = solver.solve(vdp, (0, 1), np.array([2.0, 0.0]),
                              np.array([0.0, 1.0]), jac=vdp_jac)
        assert result.success
        assert result.method == "autoswitch(radau5)"

    def test_midrun_switch_without_probe(self):
        solver = AutoSwitchSolver(SolverOptions(max_steps=200_000),
                                  probe_jacobian=False)
        grid = np.linspace(0, 3, 7)
        result = solver.solve(vdp, (0, 3), np.array([2.0, 0.0]), grid)
        assert result.success
        assert result.method == "autoswitch(dopri5->radau5)"
        assert result.stiffness_detected
        assert result.t.shape == grid.shape

    def test_switched_solution_matches_lsoda(self):
        grid = np.linspace(0, 3, 7)
        options = SolverOptions(max_steps=200_000)
        switched = AutoSwitchSolver(options, probe_jacobian=False).solve(
            vdp, (0, 3), np.array([2.0, 0.0]), grid)
        reference = ScipyLSODA(options).solve(
            vdp, (0, 3), np.array([2.0, 0.0]), grid)
        assert np.allclose(switched.y, reference.y, rtol=1e-3, atol=1e-5)

    def test_merged_stats_cover_both_phases(self):
        solver = AutoSwitchSolver(SolverOptions(max_steps=200_000),
                                  probe_jacobian=False)
        result = solver.solve(vdp, (0, 2), np.array([2.0, 0.0]),
                              np.array([0.0, 2.0]))
        assert result.stats.n_steps > 0
        # Radau phase contributes factorizations.
        assert result.stats.n_factorizations > 0

    def test_bdf_backed_switch(self):
        """The multistep stiff backend produces the same dynamics."""
        grid = np.linspace(0, 3, 7)
        options = SolverOptions(max_steps=200_000)
        radau = AutoSwitchSolver(options, probe_jacobian=False).solve(
            vdp, (0, 3), np.array([2.0, 0.0]), grid)
        bdf = AutoSwitchSolver(options, probe_jacobian=False,
                               stiff_solver="bdf").solve(
            vdp, (0, 3), np.array([2.0, 0.0]), grid)
        assert bdf.success
        assert bdf.method == "autoswitch(dopri5->bdf)"
        assert np.allclose(bdf.y, radau.y, rtol=1e-3, atol=1e-5)

    def test_unknown_stiff_solver_rejected(self):
        from repro.errors import SolverError
        with pytest.raises(SolverError):
            AutoSwitchSolver(stiff_solver="trapezoid")

    def test_probe_threshold_configurable(self):
        """A huge threshold keeps even VdP on the explicit start."""
        options = SolverOptions(max_steps=200_000,
                                stiffness_threshold=1e9)
        solver = AutoSwitchSolver(options)
        result = solver.solve(vdp, (0, 0.01), np.array([2.0, 0.0]),
                              np.array([0.0, 0.01]), jac=vdp_jac)
        assert result.success
        assert result.method.startswith("autoswitch(dopri5")
