"""Memory governor: launch planning under a device budget, injected
memory pressure, and bit-identical split/re-merge through the engine."""

import numpy as np
import pytest

from repro.errors import GuardError, ResilienceError
from repro.gpu import BatchSimulator, GTX_1650, TITAN_X
from repro.gpu.perfmodel import memory_footprint_doubles
from repro.guards import GuardConfig, MemoryGovernor
from repro.model import ParameterizationBatch, perturbed_batch
from repro.models import dimerization, lotka_volterra
from repro.resilience import FaultPlan


def replicated_batch(model, size):
    nominal = model.nominal_parameterization()
    return ParameterizationBatch.from_parameterizations([nominal] * size)


class TestGovernorPlanning:
    def test_within_budget_single_segment(self):
        plan = MemoryGovernor().plan(256, 3, 4, 100, "dopri5", TITAN_X)
        assert not plan.split
        assert plan.segments == ((0, 256),)
        assert plan.estimated_doubles == memory_footprint_doubles(
            256, 3, 4, 100, "dopri5")

    def test_over_budget_halves_until_fit(self):
        # budget covering ~1/3 of the launch forces two halvings
        full = memory_footprint_doubles(256, 3, 4, 100, "dopri5")
        budget_gb = (full / 3) * 8 / 1024 ** 3
        plan = MemoryGovernor(budget_gb=budget_gb).plan(
            256, 3, 4, 100, "dopri5", TITAN_X)
        assert plan.split and plan.n_splits == 2
        assert plan.segment_rows == 64

    def test_segments_partition_the_batch(self):
        plan = MemoryGovernor().plan(
            100, 3, 4, 50, "dopri5", TITAN_X, forced_fit_rows=13)
        covered = [row for start, stop in plan.segments
                   for row in range(start, stop)]
        assert covered == list(range(100))
        assert plan.injected
        assert max(stop - start for start, stop in plan.segments) <= 13

    def test_impossible_problem_raises(self):
        with pytest.raises(GuardError, match="does not fit"):
            MemoryGovernor(budget_gb=1e-9).plan(
                64, 3, 4, 100, "dopri5", GTX_1650)

    def test_backoff_exhaustion_raises(self):
        with pytest.raises(GuardError, match="backoff exhausted"):
            MemoryGovernor(max_splits=2).plan(
                4096, 3, 4, 100, "dopri5", TITAN_X, forced_fit_rows=1)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(GuardError):
            MemoryGovernor(budget_gb=0.0)
        with pytest.raises(GuardError):
            MemoryGovernor(budget_fraction=1.5)
        with pytest.raises(GuardError):
            MemoryGovernor(max_splits=0)

    def test_budget_derived_from_device_fraction(self):
        governor = MemoryGovernor(budget_fraction=0.5)
        assert governor.budget_doubles(GTX_1650) == \
            int(0.5 * GTX_1650.memory_gb * 1024 ** 3) // 8

    def test_radau_footprint_exceeds_dopri5(self):
        assert memory_footprint_doubles(64, 20, 30, 100, "radau5") > \
            memory_footprint_doubles(64, 20, 30, 100, "dopri5")
        assert memory_footprint_doubles(64, 20, 30, 100, "bdf") > \
            memory_footprint_doubles(64, 20, 30, 100, "dopri5")


class TestFaultPlanMemoryPressure:
    def test_oom_fields_validated(self):
        with pytest.raises(ResilienceError):
            FaultPlan(oom_launches=(-1,))
        with pytest.raises(ResilienceError):
            FaultPlan(oom_fit_rows=0)
        with pytest.raises(ResilienceError):
            FaultPlan(drift_rate=float("nan"))

    def test_for_chunk_remaps_drift_and_oom(self):
        plan = FaultPlan(drift_rows=(3, 12), oom_launches=(1,),
                         nan_rows=(4,))
        local = plan.for_chunk(chunk_index=1, start=10, stop=20)
        assert local.drift_rows == (2,)
        assert local.oom_launches == (0,)
        assert local.nan_rows == ()
        unaffected = plan.for_chunk(chunk_index=0, start=0, stop=10)
        assert unaffected.oom_launches == ()
        assert unaffected.drift_rows == (3,)

    def test_forces_memory_pressure(self):
        plan = FaultPlan(oom_launches=(0, 2))
        assert plan.forces_memory_pressure(0)
        assert not plan.forces_memory_pressure(1)


class TestEngineGoverned:
    T_EVAL = np.linspace(0.0, 2.0, 9)

    def varied_batch(self, model, size=8):
        return perturbed_batch(model.nominal_parameterization(), size,
                               np.random.default_rng(11))

    def test_injected_oom_split_is_bit_identical(self):
        """The acceptance criterion: an injected over-budget launch is
        split, re-merged, and produces exactly the unsplit result."""
        model = lotka_volterra()
        batch = self.varied_batch(model)
        baseline = BatchSimulator(model, method="dopri5").simulate(
            (0.0, 2.0), self.T_EVAL, batch)
        governed = BatchSimulator(
            model, method="dopri5",
            fault_plan=FaultPlan(oom_launches=(0,), oom_fit_rows=3))
        result = governed.simulate((0.0, 2.0), self.T_EVAL, batch)
        assert np.array_equal(baseline.y, result.y, equal_nan=True)
        assert np.array_equal(baseline.status_codes, result.status_codes)
        assert np.array_equal(baseline.n_steps, result.n_steps)
        # segments share the parent problem's counters exactly once
        assert result.counters.rhs_simulation_evaluations == \
            baseline.counters.rhs_simulation_evaluations
        events = governed.last_report.memory_events
        assert len(events) == 1
        assert events[0].injected and events[0].granted_rows <= 3
        assert "injected OOM" in events[0].describe()

    def test_real_budget_splits_and_merges(self):
        model = lotka_volterra()
        batch = self.varied_batch(model)
        full = memory_footprint_doubles(8, model.n_species,
                                        model.n_reactions,
                                        self.T_EVAL.size, "dopri5")
        governor = MemoryGovernor(budget_gb=(full / 2) * 8 / 1024 ** 3)
        simulator = BatchSimulator(model, method="dopri5",
                                   memory_governor=governor)
        result = simulator.simulate((0.0, 2.0), self.T_EVAL, batch)
        assert result.all_success
        events = simulator.last_report.memory_events
        assert len(events) == 1 and not events[0].injected
        baseline = BatchSimulator(model, method="dopri5").simulate(
            (0.0, 2.0), self.T_EVAL, batch)
        assert np.array_equal(baseline.y, result.y, equal_nan=True)

    def test_within_budget_governor_records_no_events(self):
        model = lotka_volterra()
        simulator = BatchSimulator(model, method="dopri5",
                                   memory_governor=MemoryGovernor())
        result = simulator.simulate((0.0, 2.0), self.T_EVAL,
                                    self.varied_batch(model))
        assert result.all_success
        assert simulator.last_report.memory_events == []

    def test_oom_without_fit_rows_defaults_to_halving(self):
        model = lotka_volterra()
        simulator = BatchSimulator(
            model, method="dopri5",
            fault_plan=FaultPlan(oom_launches=(0,)))
        result = simulator.simulate((0.0, 2.0), self.T_EVAL,
                                    self.varied_batch(model))
        assert result.all_success
        events = simulator.last_report.memory_events
        assert len(events) == 1
        assert events[0].n_splits == 1
        assert events[0].granted_rows == 4

    def test_split_launch_counts_as_one_launch(self):
        model = lotka_volterra()
        simulator = BatchSimulator(
            model, method="dopri5",
            fault_plan=FaultPlan(oom_launches=(0,), oom_fit_rows=2))
        simulator.simulate((0.0, 2.0), self.T_EVAL,
                           self.varied_batch(model))
        assert simulator.last_report.n_launches == 1

    def test_governor_composes_with_guards_and_counters(self):
        model = dimerization()
        batch = replicated_batch(model, 6)
        simulator = BatchSimulator(
            model, method="dopri5", guard_config=GuardConfig(),
            fault_plan=FaultPlan(oom_launches=(0,), oom_fit_rows=2,
                                 drift_rows=(4,), drift_rate=0.5))
        result = simulator.simulate((0.0, 2.0), self.T_EVAL, batch)
        report = simulator.last_report
        assert result.success_mask.sum() == 5
        assert report.guard_log.rows().tolist() == [4]
        assert len(report.memory_events) == 1
        assert result.statuses()[4] == "guard_violation"
