"""Tests for rule-based modeling and network expansion."""

import numpy as np
import pytest

from repro.core import simulate
from repro.errors import ModelError
from repro.rules import (MoleculeType, Pattern, Rule, RuleBasedModel,
                         multisite_cascade, two_state_receptor)
from repro.solvers import SolverOptions


@pytest.fixture
def phosphosite():
    return MoleculeType("A", (("p", ("u", "p")),))


class TestMoleculeType:
    def test_duplicate_site_rejected(self):
        with pytest.raises(ModelError):
            MoleculeType("A", (("p", ("u", "p")), ("p", ("0", "1"))))

    def test_empty_state_set_rejected(self):
        with pytest.raises(ModelError):
            MoleculeType("A", (("p", ()),))

    def test_default_state_uses_first_states(self, phosphosite):
        assert phosphosite.default_state().states == ("u",)

    def test_species_factory_validates(self, phosphosite):
        species = phosphosite.species(p="p")
        assert species.state_of("p") == "p"
        with pytest.raises(ModelError):
            phosphosite.species(p="x")
        with pytest.raises(ModelError):
            phosphosite.species(q="u")

    def test_all_species_enumerates_product(self):
        molecule = MoleculeType("B", (("x", ("0", "1")),
                                      ("y", ("a", "b", "c"))))
        assert molecule.n_states() == 6
        assert len(molecule.all_species()) == 6

    def test_species_names_are_unique_and_valid(self):
        molecule = MoleculeType("B", (("x", ("0", "1")),))
        names = {s.name() for s in molecule.all_species()}
        assert names == {"B_x0", "B_x1"}


class TestPatternsAndRules:
    def test_pattern_matching(self, phosphosite):
        pattern = Pattern(phosphosite, {"p": "u"})
        assert pattern.matches(phosphosite.species(p="u"))
        assert not pattern.matches(phosphosite.species(p="p"))

    def test_pattern_invalid_state_rejected(self, phosphosite):
        with pytest.raises(ModelError):
            Pattern(phosphosite, {"p": "zz"})

    def test_rule_without_changes_rejected(self, phosphosite):
        with pytest.raises(ModelError):
            Rule("noop", Pattern(phosphosite), {}, 1.0)

    def test_rule_invalid_rate_rejected(self, phosphosite):
        with pytest.raises(ModelError):
            Rule("bad", Pattern(phosphosite), {"p": "p"}, 0.0)


class TestExpansion:
    def test_receptor_expansion_shape(self):
        model = two_state_receptor().expand()
        # 2x2 receptor states + the ligand.
        assert model.n_species == 5
        assert model.n_reactions == 7

    def test_only_reachable_species_generated(self):
        """The ordered cascade reaches only the staircase states."""
        model = multisite_cascade(6, ordered=True).expand()
        assert model.n_species == 7 + 2   # n+1 substrate states + K + P

    def test_distributive_combinatorial_blowup(self):
        """Distributive rules derive a network exponentially larger
        than the rule set (the paper's 29-rule -> 6581-reaction
        phenomenon)."""
        rule_model = multisite_cascade(8)
        assert len(rule_model.rules) == 16
        model = rule_model.expand()
        assert model.n_species == 2 ** 8 + 2
        assert model.n_reactions == 2 * 8 * 2 ** 7   # 2048

    def test_modifier_appears_on_both_sides(self):
        model = two_state_receptor().expand()
        activation = next(r for r in model.reactions
                          if r.name == "activate")
        assert activation.reactants.get("L") == 1
        assert activation.products.get("L") == 1

    def test_expansion_limit_enforced(self):
        with pytest.raises(ModelError):
            multisite_cascade(8).expand(max_species=10)

    def test_empty_model_rejected(self):
        empty = RuleBasedModel("empty")
        with pytest.raises(ModelError):
            empty.expand()

    def test_seed_concentrations_preserved(self):
        model = multisite_cascade(
            2, substrate_concentration=3.0,
            kinase_concentration=0.25).expand()
        index = model.species.index_of("S_s0u_s1u")
        assert model.initial_state()[index] == 3.0
        assert model.initial_state()[model.species.index_of("K")] == 0.25


class TestExpandedDynamics:
    def test_expanded_model_simulates_and_conserves(self):
        model = multisite_cascade(4).expand()
        grid = np.linspace(0, 5, 6)
        result = simulate(model, (0, 5), grid,
                          options=SolverOptions(max_steps=100_000))
        assert result.all_success
        substrate_columns = [i for i, name in
                             enumerate(model.species.names)
                             if name.startswith("S_")]
        totals = result.y[0][:, substrate_columns].sum(axis=1)
        assert np.allclose(totals, totals[0], rtol=1e-8)

    def test_kinase_balance_shifts_phosphorylation(self):
        """More kinase pushes the steady distribution toward the fully
        phosphorylated species."""
        grid = np.array([0.0, 50.0])
        options = SolverOptions(max_steps=200_000)
        low = multisite_cascade(3, kinase_concentration=0.01).expand()
        high = multisite_cascade(3, kinase_concentration=1.0).expand()
        top = "S_s0p_s1p_s2p"
        low_result = simulate(low, (0, 50), grid, options=options)
        high_result = simulate(high, (0, 50), grid, options=options)
        low_value = low_result.y[0, -1, low.species.index_of(top)]
        high_value = high_result.y[0, -1, high.species.index_of(top)]
        assert high_value > 10 * low_value

    def test_ordered_and_distributive_share_endpoints_for_one_site(self):
        ordered = multisite_cascade(1, ordered=True).expand()
        distributive = multisite_cascade(1, ordered=False).expand()
        grid = np.array([0.0, 10.0])
        first = simulate(ordered, (0, 10), grid)
        second = simulate(distributive, (0, 10), grid)
        assert np.allclose(first.y, second.y, rtol=1e-8)
