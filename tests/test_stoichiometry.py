"""Unit tests for stoichiometric matrices and structural analysis."""

import numpy as np
import pytest

from repro.model import (ReactionBasedModel, build_matrices,
                         conservation_laws, invariant_totals,
                         reaction_graph_edges)


@pytest.fixture
def matrices(toy_model):
    return toy_model.matrices


class TestMatrices:
    def test_shapes(self, toy_model, matrices):
        n, m = toy_model.n_species, toy_model.n_reactions
        assert matrices.reactants.shape == (m, n)
        assert matrices.products.shape == (m, n)
        assert matrices.net.shape == (m, n)
        assert matrices.n_reactions == m
        assert matrices.n_species == n

    def test_net_is_products_minus_reactants(self, matrices):
        assert np.array_equal(matrices.net,
                              matrices.products - matrices.reactants)

    def test_entries_match_reaction_definitions(self, toy_model, matrices):
        index = toy_model.species.index_of
        # A + B -> C is the first reaction.
        assert matrices.reactants[0, index("A")] == 1
        assert matrices.reactants[0, index("B")] == 1
        assert matrices.products[0, index("C")] == 1
        # 2 A -> D is the third reaction.
        assert matrices.reactants[2, index("A")] == 2
        assert matrices.products[2, index("D")] == 1

    def test_sparse_copy_matches_dense(self, matrices):
        assert np.array_equal(matrices.net_csr.toarray(), matrices.net)

    def test_build_matrices_directly(self, toy_model):
        rebuilt = build_matrices(toy_model.species, toy_model.reactions)
        assert np.array_equal(rebuilt.net, toy_model.matrices.net)


class TestConservationLaws:
    def test_decay_chain_conserves_total(self, chain_model):
        laws = conservation_laws(chain_model.matrices.net)
        assert laws.shape[0] == 1
        # The law must be proportional to the all-ones vector.
        normalized = laws[0] / laws[0][0]
        assert np.allclose(normalized, 1.0)

    def test_dimerization_conserves_monomer_count(self, dimer_model):
        laws = conservation_laws(dimer_model.matrices.net)
        assert laws.shape[0] == 1
        ratio = laws[0][1] / laws[0][0]
        assert ratio == pytest.approx(2.0)   # A + 2 D conserved

    def test_open_system_has_no_laws(self):
        model = ReactionBasedModel("open")
        model.add_species("A", 1.0)
        model.add("0 -> A @ 1")
        model.add("A -> 0 @ 1")
        laws = conservation_laws(model.matrices.net)
        assert laws.shape[0] == 0

    def test_invariant_totals_single_and_batch(self, chain_model):
        laws = conservation_laws(chain_model.matrices.net)
        state = chain_model.initial_state()
        single = invariant_totals(laws, state)
        assert single.shape == (1,)
        batch = invariant_totals(laws, np.tile(state, (4, 1)))
        assert batch.shape == (4, 1)
        assert np.allclose(batch, single)

    def test_laws_are_orthonormal(self, toy_model):
        laws = conservation_laws(toy_model.matrices.net)
        gram = laws @ laws.T
        assert np.allclose(gram, np.eye(laws.shape[0]), atol=1e-10)


class TestReactionGraph:
    def test_chain_edges(self, chain_model):
        edges = reaction_graph_edges(chain_model.matrices.reactants,
                                     chain_model.matrices.products)
        # X0 -> X1 means edges (0,0) and (0,1); etc.
        assert (0, 1) in edges
        assert (1, 2) in edges
        assert (2, 3) in edges
        assert (3, 0) not in edges

    def test_catalyst_reads_create_edges(self, cascade_model):
        matrices = cascade_model.matrices
        edges = reaction_graph_edges(matrices.reactants, matrices.products)
        index = cascade_model.species.index_of
        # The enzyme E is read by the first activation and influences X1.
        assert (index("E"), index("X1")) in edges
