"""Unit tests for parameterizations, batches, and perturbations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.model import (Parameterization, ParameterizationBatch,
                         perturb_rate_constants, perturbed_batch)


def make_parameterization(m=3, n=2):
    return Parameterization(np.linspace(0.1, 1.0, m), np.linspace(0, 1, n))


class TestParameterization:
    def test_shapes(self):
        p = make_parameterization(4, 3)
        assert p.n_reactions == 4
        assert p.n_species == 3

    def test_rejects_nonpositive_constants(self):
        with pytest.raises(ModelError):
            Parameterization(np.array([1.0, 0.0]), np.array([1.0]))

    def test_rejects_negative_state(self):
        with pytest.raises(ModelError):
            Parameterization(np.array([1.0]), np.array([-0.1]))

    def test_rejects_non_finite(self):
        with pytest.raises(ModelError):
            Parameterization(np.array([np.inf]), np.array([1.0]))
        with pytest.raises(ModelError):
            Parameterization(np.array([1.0]), np.array([np.nan]))

    def test_rejects_wrong_dimensionality(self):
        with pytest.raises(ModelError):
            Parameterization(np.ones((2, 2)), np.ones(2))

    def test_with_rate_constant_copy_semantics(self):
        p = make_parameterization()
        q = p.with_rate_constant(0, 9.0)
        assert q.rate_constants[0] == 9.0
        assert p.rate_constants[0] != 9.0

    def test_with_initial_value_copy_semantics(self):
        p = make_parameterization()
        q = p.with_initial_value(1, 7.0)
        assert q.initial_state[1] == 7.0
        assert p.initial_state[1] != 7.0


class TestBatch:
    def test_from_parameterizations(self):
        items = [make_parameterization(), make_parameterization()]
        batch = ParameterizationBatch.from_parameterizations(items)
        assert batch.size == 2
        assert batch.n_reactions == 3

    def test_from_empty_list_rejected(self):
        with pytest.raises(ModelError):
            ParameterizationBatch.from_parameterizations([])

    def test_replicate(self):
        batch = ParameterizationBatch.replicate(make_parameterization(), 5)
        assert batch.size == 5
        assert np.allclose(batch.rate_constants[0], batch.rate_constants[4])

    def test_replicate_rejects_zero_count(self):
        with pytest.raises(ModelError):
            ParameterizationBatch.replicate(make_parameterization(), 0)

    def test_row_mismatch_rejected(self):
        with pytest.raises(ModelError):
            ParameterizationBatch(np.ones((2, 3)), np.ones((3, 2)))

    def test_getitem_returns_parameterization(self):
        batch = ParameterizationBatch.replicate(make_parameterization(), 2)
        item = batch[1]
        assert isinstance(item, Parameterization)
        assert item.n_reactions == 3

    def test_subset_selects_rows(self):
        constants = np.arange(1, 7, dtype=float).reshape(3, 2)
        states = np.arange(6, dtype=float).reshape(3, 2)
        batch = ParameterizationBatch(constants, states)
        subset = batch.subset(np.array([2, 0]))
        assert subset.size == 2
        assert np.allclose(subset.rate_constants[0], constants[2])

    def test_len_matches_size(self):
        batch = ParameterizationBatch.replicate(make_parameterization(), 4)
        assert len(batch) == 4


class TestPerturbation:
    def test_perturbation_stays_within_band(self):
        rng = np.random.default_rng(0)
        base = np.array([1.0, 1e-3, 50.0])
        samples = perturb_rate_constants(base, 500, rng)
        assert samples.shape == (500, 3)
        assert np.all(samples >= base * 0.75 - 1e-12)
        assert np.all(samples <= base * 1.25 + 1e-12)

    def test_perturbation_is_seed_deterministic(self):
        base = np.array([2.0, 3.0])
        first = perturb_rate_constants(base, 10, np.random.default_rng(7))
        second = perturb_rate_constants(base, 10, np.random.default_rng(7))
        assert np.array_equal(first, second)

    def test_perturbation_rejects_nonpositive_base(self):
        with pytest.raises(ModelError):
            perturb_rate_constants(np.array([0.0]), 2,
                                   np.random.default_rng(0))

    def test_perturbation_rejects_bad_spread(self):
        with pytest.raises(ModelError):
            perturb_rate_constants(np.array([1.0]), 2,
                                   np.random.default_rng(0), spread=1.5)

    def test_perturbed_batch_shares_initial_state(self):
        base = make_parameterization()
        batch = perturbed_batch(base, 8, np.random.default_rng(1))
        assert batch.size == 8
        assert np.allclose(batch.initial_states, base.initial_state[None, :])
        assert not np.allclose(batch.rate_constants,
                               base.rate_constants[None, :])

    @settings(max_examples=25, deadline=None)
    @given(spread=st.floats(min_value=0.01, max_value=0.9),
           scale=st.floats(min_value=1e-6, max_value=1e6))
    def test_perturbation_band_property(self, spread, scale):
        """For any spread and magnitude, samples stay in the band."""
        rng = np.random.default_rng(3)
        base = np.array([scale])
        samples = perturb_rate_constants(base, 64, rng, spread)
        assert np.all(samples >= base * (1 - spread) * (1 - 1e-9))
        assert np.all(samples <= base * (1 + spread) * (1 + 1e-9))
