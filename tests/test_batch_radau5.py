"""Tests for the batched Radau IIA integrator."""

import numpy as np
import pytest

from repro.gpu import BatchRadau5, BatchedODEProblem
from repro.gpu.batch_result import OK
from repro.model import ODESystem, perturbed_batch
from repro.models import decay_chain, dimerization, robertson
from repro.solvers import Radau5, SolverOptions


def make_problem(model, batch_size=6, seed=0, spread=0.25):
    system = ODESystem.from_model(model)
    batch = perturbed_batch(model.nominal_parameterization(), batch_size,
                            np.random.default_rng(seed), spread)
    return BatchedODEProblem(system, batch), batch


class TestAgainstScalar:
    def test_matches_scalar_radau_on_robertson_batch(self):
        model = robertson()
        problem, batch = make_problem(model, 5, spread=0.2)
        options = SolverOptions(rtol=1e-6, atol=1e-10, max_steps=100_000)
        grid = np.array([0.0, 1e-2, 1.0, 1e2, 1e4])
        batched = BatchRadau5(options).solve(problem, (0, 1e4), grid)
        assert batched.all_success
        scalar = Radau5(options)
        for index in range(batch.size):
            constants = batch.rate_constants[index]
            fun = problem.system.as_scipy_rhs(constants)
            jac = problem.system.as_scipy_jacobian(constants)
            reference = scalar.solve(fun, (0, 1e4),
                                     batch.initial_states[index], grid,
                                     jac=jac)
            assert np.allclose(batched.y[index], reference.y, rtol=1e-5,
                               atol=1e-12)

    def test_nonstiff_accuracy(self):
        model = decay_chain(3)
        problem, _ = make_problem(model, 4)
        grid = np.linspace(0, 4, 9)
        options = SolverOptions(rtol=1e-8, atol=1e-12)
        result = BatchRadau5(options).solve(problem, (0, 4), grid)
        assert result.all_success
        # Total mass conserved per simulation and time point.
        totals = result.y.sum(axis=2)
        assert np.allclose(totals, totals[:, :1], rtol=1e-8)


class TestBatchSemantics:
    def test_mass_conservation_on_stiff_batch(self):
        problem, _ = make_problem(robertson(), 6, spread=0.25)
        options = SolverOptions(max_steps=100_000)
        grid = np.array([0.0, 1e2, 1e4])
        result = BatchRadau5(options).solve(problem, (0, 1e4), grid)
        assert result.all_success
        assert np.allclose(result.y.sum(axis=2), 1.0, atol=1e-6)

    def test_conservation_laws_respected(self):
        model = dimerization()
        problem, _ = make_problem(model, 4)
        laws = model.conservation_law_basis()
        grid = np.linspace(0, 5, 6)
        result = BatchRadau5().solve(problem, (0, 5), grid)
        assert result.all_success
        invariants = np.einsum("btn,ln->btl", result.y, laws)
        assert np.allclose(invariants, invariants[:, :1, :], rtol=1e-6)

    def test_factorizations_counted(self):
        problem, _ = make_problem(robertson(), 3, spread=0.1)
        BatchRadau5(SolverOptions(max_steps=100_000)).solve(
            problem, (0, 10), np.array([0.0, 10.0]))
        assert problem.counters.factorizations > 0
        assert problem.counters.newton_iterations > 0

    def test_jacobian_reuse_policy_reduces_jacobian_kernels(self):
        grids = np.array([0.0, 1e2])
        launches = {}
        for reuse in (True, False):
            problem, _ = make_problem(robertson(), 3, spread=0.1)
            BatchRadau5(SolverOptions(max_steps=100_000),
                        reuse_jacobian=reuse).solve(problem, (0, 1e2), grids)
            launches[reuse] = \
                problem.counters.jacobian_simulation_evaluations
        assert launches[True] < launches[False]

    def test_per_simulation_step_counts_differ(self):
        problem, _ = make_problem(robertson(), 6, spread=0.25)
        result = BatchRadau5(SolverOptions(max_steps=100_000)).solve(
            problem, (0, 1e3), np.array([0.0, 1e3]))
        assert len(np.unique(result.n_steps)) > 1

    def test_save_grid_complete(self):
        problem, _ = make_problem(decay_chain(2), 3)
        grid = np.array([0.0, 0.5, 1.7, 3.0])
        result = BatchRadau5().solve(problem, (0, 3), grid)
        assert np.all(result.status_codes == OK)
        assert not np.any(np.isnan(result.y))
