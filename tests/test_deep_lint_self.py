"""Self-application gate of the deep analyzer.

The deep analysis must run clean over the repo's own package source
(modulo the committed baseline and in-code waivers) — this test IS the
determinism/contract regression guard: any future tensordot, unseeded
RNG draw, dropped status handler or stale suppression fails CI here.

Also covers the baseline machinery: subtraction, the LNT001 staleness
ratchet (a baseline may only shrink) and round-tripping through
``write_baseline``.
"""

import json
import textwrap

import pytest

from repro.errors import LintError
from repro.lint import (DEEP_RULES, DEFAULT_BASELINE, lint_deep,
                        package_source_files, write_baseline)


class TestSelfGate:
    def test_package_deep_lint_is_clean(self):
        report = lint_deep()
        offending = report.at_or_above("warning")
        assert offending == [], "\n" + "\n".join(
            finding.render() for finding in offending)

    def test_analysis_covers_the_critical_modules(self):
        report = lint_deep()
        covered = set(report.metadata["files"])
        for expected in ("gpu/batch_dopri5.py", "gpu/batch_radau5.py",
                         "gpu/batch_bdf.py", "gpu/engine.py",
                         "gpu/batch_result.py", "resilience/campaign.py",
                         "resilience/faults.py", "io/checkpoint.py",
                         "errors.py"):
            assert expected in covered

    def test_committed_baseline_is_valid_and_not_stale(self):
        payload = json.loads(DEFAULT_BASELINE.read_text())
        assert payload["format_version"] == 1
        report = lint_deep()
        assert report.by_rule("LNT001") == [], \
            "baseline entries no longer match: shrink the baseline"

    def test_package_file_set_is_substantial(self):
        assert len(package_source_files()) >= 50


class TestBaselineMachinery:
    def _tree(self, tmp_path, source):
        root = tmp_path / "proj"
        (root / "gpu").mkdir(parents=True)
        path = root / "gpu" / "batch_x.py"
        path.write_text(textwrap.dedent(source))
        return root, path

    DIRTY = """
        import numpy as np
        def combine(w, k):
            return np.tensordot(w, k, axes=(0, 0))
    """

    def test_baseline_subtracts_known_findings(self, tmp_path):
        root, path = self._tree(tmp_path, self.DIRTY)
        dirty = lint_deep([path], root=root)
        assert dirty.by_rule("DET001")
        baseline = tmp_path / "baseline.json"
        count = write_baseline(dirty, baseline)
        assert count == len(dirty.findings)
        clean = lint_deep([path], root=root, baseline_path=baseline)
        assert clean.findings == []
        assert clean.metadata["baselined"] == count

    def test_stale_baseline_entry_becomes_lnt001(self, tmp_path):
        root, path = self._tree(tmp_path, self.DIRTY)
        dirty = lint_deep([path], root=root)
        baseline = tmp_path / "baseline.json"
        write_baseline(dirty, baseline)
        # Fix the defect: the baseline entry now matches nothing.
        path.write_text("def combine(w, k):\n    return w[0] * k[0]\n")
        report = lint_deep([path], root=root, baseline_path=baseline)
        hits = report.by_rule("LNT001")
        assert len(hits) == 1
        assert "DET001" in hits[0].message
        # the ratchet: a stale baseline is itself a warning-level fail
        assert report.exceeds("warning")

    def test_write_baseline_excludes_meta_findings(self, tmp_path):
        root, path = self._tree(tmp_path, self.DIRTY)
        dirty = lint_deep([path], root=root)
        stale_source = tmp_path / "baseline1.json"
        write_baseline(dirty, stale_source)
        path.write_text("def combine(w, k):\n    return w[0] * k[0]\n")
        with_stale = lint_deep([path], root=root,
                               baseline_path=stale_source)
        assert with_stale.by_rule("LNT001")
        regenerated = tmp_path / "baseline2.json"
        assert write_baseline(with_stale, regenerated) == 0

    def test_unknown_format_version_rejected(self, tmp_path):
        root, path = self._tree(tmp_path, self.DIRTY)
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"format_version": 99, "entries": []}')
        with pytest.raises(LintError, match="format_version"):
            lint_deep([path], root=root, baseline_path=baseline)

    def test_corrupt_baseline_rejected(self, tmp_path):
        root, path = self._tree(tmp_path, self.DIRTY)
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{not json")
        with pytest.raises(LintError, match="valid JSON"):
            lint_deep([path], root=root, baseline_path=baseline)


class TestRuleRegistryContract:
    def test_every_deep_rule_has_severity_and_doc(self):
        from repro.lint import rule_info
        for rule_id in DEEP_RULES:
            info = rule_info(rule_id)
            assert info is not None
            assert info.family == "deep"
            assert info.severity in ("info", "warning", "error")
            assert len(info.doc) > 20

    def test_deep_rule_ids_are_disjoint_from_shallow(self):
        from repro.lint import KERNEL_RULES, MODEL_RULES
        assert not set(DEEP_RULES) & set(KERNEL_RULES)
        assert not set(DEEP_RULES) & set(MODEL_RULES)
