"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings

from repro.model import ODESystem, ReactionBasedModel
from repro.models import (brusselator, cascade, decay_chain, dimerization,
                          lotka_volterra, metabolic_network, robertson)
from repro.solvers import SolverOptions

# Property-based tests pick their example budget from a profile so CI
# can fuzz harder than a local run: HYPOTHESIS_PROFILE=ci bumps every
# @given test without touching the test files.
hypothesis_settings.register_profile("dev", max_examples=30, deadline=None)
hypothesis_settings.register_profile("ci", max_examples=150, deadline=None)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def toy_model() -> ReactionBasedModel:
    """Small mixed-order mass-action model used across unit tests."""
    model = ReactionBasedModel("toy")
    model.add_species("A", 1.0)
    model.add_species("B", 2.0)
    model.add("A + B -> C @ 0.5")
    model.add("C -> A + B @ 0.2")
    model.add("2 A -> D @ 0.1")
    model.add("0 -> A @ 0.01")
    model.add("D -> 0 @ 0.3")
    return model


@pytest.fixture
def toy_system(toy_model) -> ODESystem:
    return ODESystem.from_model(toy_model)


@pytest.fixture
def robertson_model() -> ReactionBasedModel:
    return robertson()


@pytest.fixture
def chain_model() -> ReactionBasedModel:
    return decay_chain(3)


@pytest.fixture
def dimer_model() -> ReactionBasedModel:
    return dimerization()


@pytest.fixture
def lv_model() -> ReactionBasedModel:
    return lotka_volterra()


@pytest.fixture
def brusselator_model() -> ReactionBasedModel:
    return brusselator()


@pytest.fixture
def cascade_model() -> ReactionBasedModel:
    return cascade()


@pytest.fixture
def metabolic_model() -> ReactionBasedModel:
    return metabolic_network()


@pytest.fixture
def tight_options() -> SolverOptions:
    return SolverOptions(rtol=1e-8, atol=1e-10)


@pytest.fixture
def loose_options() -> SolverOptions:
    return SolverOptions(rtol=1e-5, atol=1e-9)


@pytest.fixture
def stiff_options() -> SolverOptions:
    return SolverOptions(rtol=1e-6, atol=1e-10, max_steps=100_000)


def finite_difference_jacobian(fun, state: np.ndarray,
                               epsilon: float = 1e-7) -> np.ndarray:
    """Forward-difference reference Jacobian for verification."""
    base = fun(state)
    result = np.empty((base.size, state.size))
    for j in range(state.size):
        perturbed = state.copy()
        perturbed[j] += epsilon
        result[:, j] = (fun(perturbed) - base) / epsilon
    return result
