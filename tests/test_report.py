"""Tests for the model-analysis report."""

import pytest

from repro.core import analyze_model
from repro.models import brusselator, dimerization, robertson
from repro.solvers import SolverOptions

OPTIONS = SolverOptions(max_steps=200_000)


class TestAnalyzeModel:
    def test_brusselator_report(self):
        report = analyze_model(brusselator(), probe_horizon=60.0,
                               options=OPTIONS)
        assert report.n_conservation_laws == 0
        assert not report.classified_stiff
        assert report.steady_state is not None
        assert report.steady_state.converged
        assert report.steady_state.stable is False   # above the Hopf
        assert set(report.oscillating_species) == {"X", "Y"}
        assert report.probe_status == "success"

    def test_dimerization_report(self):
        report = analyze_model(dimerization(), probe_horizon=20.0,
                               options=OPTIONS)
        assert report.n_conservation_laws == 1
        assert report.steady_state.converged
        assert report.steady_state.stable
        assert report.oscillating_species == []

    def test_robertson_report(self):
        report = analyze_model(robertson(), probe_horizon=50.0,
                               options=OPTIONS)
        assert report.n_conservation_laws == 1
        # At t=0 (B = C = 0) Robertson looks non-stiff; stiffness
        # develops later — the report captures the t=0 view.
        assert not report.classified_stiff
        assert report.probe_status == "success"

    def test_render_mentions_everything(self):
        report = analyze_model(brusselator(), probe_horizon=60.0,
                               options=OPTIONS)
        rendered = report.render()
        assert "conservation laws" in rendered
        assert "spectral radius" in rendered
        assert "steady state" in rendered
        assert "oscillations" in rendered
        assert "X" in rendered


class TestSteadyStateErrorCapture:
    def test_exception_message_lands_in_report(self, monkeypatch):
        """A crash in the steady-state search must not be swallowed:
        its message is captured and rendered."""
        import repro.core.report as report_module

        def boom(model, nominal):
            raise RuntimeError("Newton exploded")

        monkeypatch.setattr(report_module, "find_steady_state", boom)
        report = analyze_model(dimerization(), probe_horizon=5.0,
                               options=OPTIONS)
        assert report.steady_state is None
        assert report.steady_state_error == "RuntimeError: Newton exploded"
        assert "Newton exploded" in report.render()

    def test_no_error_recorded_on_success(self):
        report = analyze_model(dimerization(), probe_horizon=5.0,
                               options=OPTIONS)
        assert report.steady_state_error is None


class TestCLIAnalyze:
    def test_analyze_command(self, tmp_path, capsys):
        from repro.cli import main
        from repro.io import write_model
        folder = tmp_path / "dimer"
        write_model(dimerization(), folder)
        assert main(["analyze", str(folder), "--horizon", "10"]) == 0
        out = capsys.readouterr().out
        assert "conservation laws       : 1" in out
        assert "steady state" in out
