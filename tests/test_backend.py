"""Backend-protocol contract and bit-identity of the ported kernels.

The protocol extraction (``repro.backend``) must be invisible to the
numbers: each batched integrator run through the ``xp`` substrate must
produce byte-for-byte the arrays it produces through a raw numpy
namespace assembled independently of :class:`NumpyBackend`. Exact
``tobytes`` comparison — not allclose — because the whole point of the
indirection is that it adds *nothing* numerically.
"""

import numpy as np
import pytest

from repro.backend import (Array, BackendError, NumpyBackend,
                           REQUIRED_OPS, get_backend, validate_backend,
                           xp)
from repro.gpu import (BatchBDF, BatchDopri5, BatchRadau5,
                       BatchedODEProblem)
from repro.model import ODESystem, perturbed_batch
from repro.models import decay_chain, robertson
from repro.solvers import SolverOptions


def _problem(model, batch_size=6, seed=3, spread=0.2):
    system = ODESystem.from_model(model)
    batch = perturbed_batch(model.nominal_parameterization(), batch_size,
                            np.random.default_rng(seed), spread)
    return BatchedODEProblem(system, batch)


def _raw_numpy_namespace():
    """A protocol-complete namespace built straight from numpy,
    bypassing :class:`NumpyBackend` entirely."""

    class _Raw:
        name = "raw-numpy"

    raw = _Raw()
    for op in REQUIRED_OPS:
        if hasattr(np, op):
            setattr(raw, op, getattr(np, op))
    raw.inv = np.linalg.inv
    raw.batched_inv = np.linalg.inv
    raw.norm = np.linalg.norm
    raw.batched_matvec = (
        lambda matrices, vectors: np.einsum("bij,bj->bi",
                                            matrices, vectors))
    return raw


#: Every gpu module that binds ``xp`` at import time.
_XP_MODULES = ("batch_dopri5", "batch_radau5", "batch_bdf",
               "batch_result", "batched_ode", "engine", "router")


def _swap_backend(monkeypatch, namespace):
    import repro.gpu as gpu_package
    for name in _XP_MODULES:
        module = getattr(__import__(f"repro.gpu.{name}",
                                    fromlist=[name]), "__dict__")
        monkeypatch.setitem(module, "xp", namespace)
    return gpu_package


def _run(solver_cls, model, span, grid, **options):
    problem = _problem(model)
    result = solver_cls(SolverOptions(**options)).solve(
        problem, span, grid)
    return result


def _fingerprint(result):
    return (result.y.tobytes(), result.t.tobytes(),
            result.status_codes.tobytes(), result.n_steps.tobytes())


CASES = [
    (BatchDopri5, decay_chain(3), (0, 5),
     np.linspace(0, 5, 9), {"rtol": 1e-7, "atol": 1e-10}),
    (BatchRadau5, robertson(), (0, 1.0),
     np.array([0.0, 0.5, 1.0]), {"rtol": 1e-6, "atol": 1e-9}),
    (BatchBDF, robertson(), (0, 1.0),
     np.array([0.0, 0.5, 1.0]), {"rtol": 1e-6, "atol": 1e-9}),
]


class TestBitIdentityThroughBackend:
    @pytest.mark.parametrize(
        "solver_cls,model,span,grid,options", CASES,
        ids=["dopri5", "radau5", "bdf"])
    def test_integrator_matches_raw_numpy_exactly(
            self, monkeypatch, solver_cls, model, span, grid, options):
        through_backend = _fingerprint(
            _run(solver_cls, model, span, grid, **options))
        _swap_backend(monkeypatch, validate_backend(
            _raw_numpy_namespace()))
        through_raw = _fingerprint(
            _run(solver_cls, model, span, grid, **options))
        assert through_backend == through_raw

    def test_repeated_runs_are_deterministic(self):
        first = _fingerprint(_run(*CASES[0][:4], **CASES[0][4]))
        second = _fingerprint(_run(*CASES[0][:4], **CASES[0][4]))
        assert first == second


class TestProtocolContract:
    def test_shipped_substrate_conforms(self):
        assert validate_backend(xp) is xp
        assert xp.name == "numpy"

    def test_array_alias_is_the_substrate_array_type(self):
        assert Array is xp.ndarray
        assert isinstance(np.zeros(3), Array)

    def test_fresh_numpy_backend_conforms(self):
        assert validate_backend(NumpyBackend()) is not xp

    def test_incomplete_backend_rejected_with_named_ops(self):
        class Partial:
            name = "partial"

        with pytest.raises(BackendError) as err:
            validate_backend(Partial())
        message = str(err.value)
        assert "partial" in message
        assert "einsum" in message and "batched_matvec" in message

    def test_required_ops_have_no_duplicates(self):
        assert len(REQUIRED_OPS) == len(set(REQUIRED_OPS))

    def test_batched_ops_preserve_the_batch_axis(self):
        rng = np.random.default_rng(7)
        matrices = rng.standard_normal((4, 3, 3)) + 3 * np.eye(3)
        vectors = rng.standard_normal((4, 3))
        products = xp.batched_matvec(matrices, vectors)
        assert products.shape == (4, 3)
        expected = np.stack([m @ v for m, v in zip(matrices, vectors)])
        assert np.allclose(products, expected)
        inverses = xp.batched_inv(matrices)
        assert inverses.shape == (4, 3, 3)
        assert np.allclose(inverses @ matrices,
                           np.broadcast_to(np.eye(3), (4, 3, 3)),
                           atol=1e-10)


class TestBackendRegistry:
    def test_default_lookup_is_the_numpy_substrate(self):
        assert get_backend() is xp
        assert get_backend("numpy") is xp

    def test_unknown_backend_raises(self):
        with pytest.raises(BackendError, match="cupy"):
            get_backend("cupy")
