"""Perfmodel calibration: launch-cost records, table fitting, the
report's admission/routing hooks, and the ``repro calibrate`` CLI."""

import asyncio
import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.cli import main
from repro.errors import TelemetryError, WorkingSetExceeded
from repro.gpu import BatchSimulator, BatchedODEProblem, StiffnessRouter
from repro.gpu.engine import EngineReport
from repro.gpu.perfmodel import memory_footprint_doubles
from repro.io import write_model
from repro.model import ODESystem, perturbed_batch
from repro.models import lotka_volterra, robertson
from repro.service import (CampaignService, JobRequest, ServiceConfig,
                           TenantQuota)
from repro.solvers import SolverOptions
from repro.telemetry import CalibrationReport, CalibrationTable
from repro.telemetry.calibration import (MAX_SAMPLES_PER_BUCKET,
                                         BucketCalibration, LaunchCost,
                                         bucket_exponent,
                                         calibrate_workload)

T_EVAL = np.linspace(0.0, 2.0, 5)


def cost(method="auto", rows=8, n_species=4, predicted=1.0,
         observed=4.0, predicted_doubles=100, actual_doubles=100):
    return LaunchCost(method=method, rows=rows, n_species=n_species,
                      n_reactions=6, predicted_seconds=predicted,
                      observed_seconds=observed,
                      predicted_doubles=predicted_doubles,
                      actual_doubles=actual_doubles)


class TestLaunchCost:
    def test_ratios(self):
        record = cost(predicted=2.0, observed=6.0,
                      predicted_doubles=100, actual_doubles=250)
        assert record.time_ratio == pytest.approx(3.0)
        assert record.ws_ratio == pytest.approx(2.5)

    def test_degenerate_predictions_ratio_one(self):
        record = cost(predicted=0.0, predicted_doubles=0)
        assert record.time_ratio == 1.0
        assert record.ws_ratio == 1.0

    def test_round_trip(self):
        record = cost()
        assert LaunchCost.from_dict(record.to_dict()) == record

    def test_bucket_exponent_matches_histogram_rule(self):
        assert [bucket_exponent(v) for v in (0, 1, 2, 3, 8, 1000)] \
            == [0, 1, 2, 2, 4, 10]


class TestCalibrationTable:
    def test_fit_recovers_a_misscaled_perfmodel(self):
        """The acceptance bar: a 4x-off model calibrates to >= 2x
        smaller median error."""
        table = CalibrationTable()
        rng = np.random.default_rng(3)
        for _ in range(32):
            jitter = float(rng.uniform(3.8, 4.2))
            table.record(cost(observed=jitter))
        report = table.fit()
        assert report.n_records == 32
        bucket = report.lookup("auto", 8, 4)
        assert bucket.time_factor == pytest.approx(4.0, rel=0.1)
        assert report.median_error() == pytest.approx(np.log(4.0),
                                                      rel=0.1)
        assert report.median_error(calibrated=True) < 0.1
        assert report.error_reduction() >= 2.0
        assert not report.drifting

    def test_bucket_sample_cap_keeps_counting(self):
        table = CalibrationTable()
        for _ in range(MAX_SAMPLES_PER_BUCKET + 50):
            table.record(cost())
        assert table.n_records == MAX_SAMPLES_PER_BUCKET + 50
        assert len(table.records()) == MAX_SAMPLES_PER_BUCKET
        assert table.fit().n_records == MAX_SAMPLES_PER_BUCKET + 50

    def test_drift_detection(self):
        table = CalibrationTable()
        for observed in [1.0] * 4 + [10.0] * 4:
            table.record(cost(observed=observed))
        report = table.fit()
        assert report.drifting
        assert report.buckets[0].drifting

    def test_ingest_span_feeds_the_launch_bucket(self):
        table = CalibrationTable()
        launch = SimpleNamespace(
            category="launch", duration=0.02,
            attrs={"method": "dopri5", "rows": 16, "species": 3,
                   "reactions": 4, "predicted_ms": 10.0,
                   "predicted_doubles": 500, "actual_doubles": 600})
        assert table.ingest_span(launch)
        # Non-launch spans and launches without predictions are skipped.
        assert not table.ingest_span(SimpleNamespace(
            category="phase", duration=0.1, attrs={}))
        assert not table.ingest_span(SimpleNamespace(
            category="launch", duration=0.1, attrs={}))
        record = table.records()[0]
        assert record.method == "dopri5"
        assert record.time_ratio == pytest.approx(2.0)
        assert record.ws_ratio == pytest.approx(1.2)


class TestCalibrationReport:
    def make_report(self):
        return CalibrationReport(
            buckets=(
                BucketCalibration("auto", 3, 3, 16, 4.0, 2.0, 0.01,
                                  1.4, 0.1),
                BucketCalibration("radau5", 3, 3, 16, 1.0, 1.0, 0.05,
                                  0.2, 0.1),
                BucketCalibration("bdf", 3, 3, 16, 1.0, 1.0, 0.02,
                                  0.2, 0.1),
            ),
            global_time_factor=3.0, global_ws_factor=1.5, n_records=48)

    def test_lookup_prefers_nearest_same_method_bucket(self):
        report = self.make_report()
        assert report.lookup("auto", 8, 4).time_factor == 4.0
        # Far-off sizes still land on the only auto bucket...
        assert report.lookup("auto", 1024, 100).time_factor == 4.0
        # ...but an unknown method falls back to the globals.
        assert report.lookup("dopri5", 8, 4) is None
        assert report.time_correction("dopri5", 8, 4) == 3.0
        assert report.ws_correction("dopri5", 8, 4) == 1.5

    def test_calibrated_estimates(self):
        report = self.make_report()
        assert report.calibrated_seconds(2.0, "auto", 8, 4) == \
            pytest.approx(8.0)
        assert report.calibrated_doubles(100, "auto", 8, 4) == 200
        assert report.calibrated_doubles(0, "auto", 8, 4) == 1

    def test_preferred_stiff_method_needs_both_rungs(self):
        report = self.make_report()
        assert report.preferred_stiff_method(8, 4) == "bdf"
        radau_only = CalibrationReport(buckets=(
            BucketCalibration("radau5", 3, 3, 16, 1.0, 1.0, 0.05,
                              0.2, 0.1),))
        assert radau_only.preferred_stiff_method(8, 4) is None
        assert CalibrationReport().preferred_stiff_method(8, 4) is None

    def test_save_load_round_trip(self, tmp_path):
        report = self.make_report()
        path = report.save(tmp_path / "calib.json")
        loaded = CalibrationReport.load(path)
        assert loaded == report
        assert loaded.to_dict() == report.to_dict()

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(TelemetryError, match="cannot load"):
            CalibrationReport.load(bad)
        with pytest.raises(TelemetryError):
            CalibrationReport.load(tmp_path / "missing.json")

    def test_render_lists_buckets(self):
        text = self.make_report().render()
        assert "48 launch(es)" in text
        assert "auto" in text and "bdf" in text
        assert "reduction" in text


class TestEngineLaunchCosts:
    def test_every_launch_records_a_cost(self):
        model = lotka_volterra()
        batch = perturbed_batch(model.nominal_parameterization(), 8,
                                np.random.default_rng(5))
        simulator = BatchSimulator(model, method="dopri5",
                                   max_batch_per_launch=4)
        simulator.simulate((0.0, 2.0), T_EVAL, batch)
        costs = simulator.last_report.launch_costs
        assert len(costs) == 2  # 8 rows at 4 per launch
        for record in costs:
            assert record.method == "dopri5"
            assert record.rows == 4
            assert record.n_species == model.n_species
            assert record.observed_seconds > 0.0
            assert record.predicted_seconds > 0.0
            assert record.predicted_doubles > 0
            assert record.actual_doubles == record.predicted_doubles

    def test_report_round_trip_keeps_costs(self):
        model = lotka_volterra()
        batch = perturbed_batch(model.nominal_parameterization(), 4,
                                np.random.default_rng(5))
        simulator = BatchSimulator(model, method="dopri5")
        simulator.simulate((0.0, 2.0), T_EVAL, batch)
        report = simulator.last_report
        restored = EngineReport.from_dict(
            json.loads(json.dumps(report.to_dict())))
        assert restored.launch_costs == report.launch_costs

    def test_calibrate_workload_meets_the_reduction_bar(self):
        table = calibrate_workload(lotka_volterra(), widths=(4, 8),
                                   repeats=2, t_eval=T_EVAL)
        assert table.n_records == 4
        report = table.fit()
        # The stock perfmodel is scaled for a GPU, not this host: the
        # fit must shrink the median |log error| at least 2x.
        assert report.error_reduction() >= 2.0


class _PreferBDF:
    def preferred_stiff_method(self, rows, n_species):
        return "bdf"


class _NoEvidence:
    def preferred_stiff_method(self, rows, n_species):
        return None


def stiff_problem(batch_size=4):
    model = robertson()
    batch = perturbed_batch(model.nominal_parameterization(), batch_size,
                            np.random.default_rng(0))
    return BatchedODEProblem(ODESystem.from_model(model), batch)


class TestCalibratedRouting:
    OPTIONS = SolverOptions(max_steps=100_000)
    GRID = np.array([0.0, 1.0e3])

    def test_default_stiff_rung_is_radau(self):
        router = StiffnessRouter(self.OPTIONS,
                                 cost_model=_NoEvidence())
        result, decision = router.solve(stiff_problem(), (0, 1e3),
                                        self.GRID)
        assert result.all_success
        assert decision.stiff_method == "radau5"
        assert set(result.methods()) == {"radau5"}

    def test_calibrated_preference_switches_to_bdf(self):
        router = StiffnessRouter(self.OPTIONS, cost_model=_PreferBDF())
        result, decision = router.solve(stiff_problem(), (0, 1e3),
                                        self.GRID)
        assert result.all_success
        assert decision.stiff_method == "bdf"
        assert set(result.methods()) == {"bdf"}

    def test_engine_threads_cost_model_through(self):
        model = robertson()
        batch = perturbed_batch(model.nominal_parameterization(), 2,
                                np.random.default_rng(0))
        simulator = BatchSimulator(model, method="auto",
                                   options=self.OPTIONS,
                                   cost_model=_PreferBDF())
        result = simulator.simulate((0.0, 1.0e3), self.GRID, batch)
        assert result.all_success
        assert "bdf" in set(result.methods())

    def test_decision_round_trip_keeps_stiff_method(self):
        router = StiffnessRouter(self.OPTIONS, cost_model=_PreferBDF())
        _result, decision = router.solve(stiff_problem(), (0, 1e3),
                                         self.GRID)
        restored = type(decision).from_dict(decision.to_dict())
        assert restored.stiff_method == "bdf"


class TestCalibratedAdmission:
    def admit(self, config, request, calibration=None):
        async def _run():
            service = CampaignService(config=config,
                                      calibration=calibration)
            await service.start()
            try:
                return service.submit(request)
            finally:
                await service.stop(drain=False)
        return asyncio.run(_run())

    def make_request(self, model):
        batch = perturbed_batch(model.nominal_parameterization(), 6,
                                np.random.default_rng(11))
        return JobRequest(model=model, t_span=(0.0, 2.0), t_eval=T_EVAL,
                          parameters=batch, chunk_size=3)

    def test_calibration_flips_the_admission_verdict(self):
        model = lotka_volterra()
        raw = memory_footprint_doubles(3, model.n_species,
                                       model.n_reactions, len(T_EVAL))
        quota = TenantQuota(max_inflight_chunks=2,
                            working_set_doubles=3 * raw)
        config = ServiceConfig(default_quota=quota)
        # Uncalibrated: 2 chunks of `raw` fit the 3x budget.
        job = self.admit(config, self.make_request(model))
        assert job is not None
        # A measured 10x working-set blowup pushes it over.
        inflated = CalibrationReport(global_ws_factor=10.0)
        with pytest.raises(WorkingSetExceeded):
            self.admit(config, self.make_request(model),
                       calibration=inflated)
        # A measured shrink keeps an otherwise-borderline job in.
        tight = ServiceConfig(default_quota=TenantQuota(
            max_inflight_chunks=2, working_set_doubles=raw))
        with pytest.raises(WorkingSetExceeded):
            self.admit(tight, self.make_request(model))
        shrunk = CalibrationReport(global_ws_factor=0.25)
        job = self.admit(tight, self.make_request(model),
                         calibration=shrunk)
        assert job is not None

    def test_config_path_loads_the_report(self, tmp_path):
        path = CalibrationReport(global_ws_factor=2.0,
                                 n_records=9).save(tmp_path / "c.json")
        config = ServiceConfig(calibration_path=str(path))
        service = CampaignService(config=config)
        assert service.calibration.n_records == 9
        assert service.calibration.global_ws_factor == 2.0


class TestCalibrateCLI:
    def test_calibrate_writes_a_loadable_report(self, tmp_path, capsys):
        folder = write_model(lotka_volterra(), tmp_path / "lv")
        out = tmp_path / "calib.json"
        assert main(["calibrate", str(folder), "--out", str(out),
                     "--widths", "4,8", "--repeats", "1"]) == 0
        text = capsys.readouterr().out
        assert "calibration:" in text
        assert "reduction" in text
        report = CalibrationReport.load(out)
        assert report.n_records == 2
        assert len(report.buckets) == 2
