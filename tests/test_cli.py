"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.io import read_batch, read_model, write_model
from repro.models import robertson


@pytest.fixture
def model_folder(tmp_path):
    folder = tmp_path / "rob"
    write_model(robertson(), folder)
    return folder


class TestInfo:
    def test_info_on_folder(self, model_folder, capsys):
        assert main(["info", str(model_folder)]) == 0
        out = capsys.readouterr().out
        assert "N=3" in out and "M=3" in out
        assert "conservation laws : 1" in out

    def test_info_on_sbml(self, tmp_path, model_folder, capsys):
        xml = tmp_path / "rob.xml"
        assert main(["convert", str(model_folder), str(xml)]) == 0
        assert main(["info", str(xml)]) == 0
        assert "N=3" in capsys.readouterr().out

    def test_info_on_missing_path(self, tmp_path, capsys):
        assert main(["info", str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err


class TestSimulate:
    def test_simulate_writes_csv(self, model_folder, tmp_path, capsys):
        out = tmp_path / "dyn.csv"
        code = main(["simulate", str(model_folder), "--t-end", "1",
                     "--points", "5", "--max-steps", "100000",
                     "--out", str(out)])
        assert code == 0
        lines = out.read_text().splitlines()
        assert lines[0] == "simulation,time,A,B,C"
        assert len(lines) == 1 + 5

    def test_simulate_perturbed_batch(self, model_folder, capsys):
        code = main(["simulate", str(model_folder), "--t-end", "1",
                     "--points", "3", "--perturb", "6",
                     "--max-steps", "100000"])
        assert code == 0
        assert "6 parameterization(s)" in capsys.readouterr().out

    def test_simulate_uses_shipped_batch(self, tmp_path, capsys):
        from repro.model import perturbed_batch
        model = robertson()
        folder = tmp_path / "swept"
        batch = perturbed_batch(model.nominal_parameterization(), 4,
                                np.random.default_rng(0))
        write_model(model, folder, batch=batch,
                    t_vector=np.array([0.0, 0.5, 1.0]))
        code = main(["simulate", str(folder), "--t-grid",
                     "--max-steps", "100000"])
        assert code == 0
        assert "4 parameterization(s)" in capsys.readouterr().out

    def test_sequential_engine_choice(self, model_folder, capsys):
        code = main(["simulate", str(model_folder), "--t-end", "1",
                     "--points", "3", "--engine", "lsoda",
                     "--max-steps", "100000"])
        assert code == 0
        assert "'lsoda'" in capsys.readouterr().out


class TestConvertAndGenerate:
    def test_round_trip_through_cli(self, model_folder, tmp_path):
        xml = tmp_path / "m.xml"
        back = tmp_path / "back"
        assert main(["convert", str(model_folder), str(xml)]) == 0
        assert main(["convert", str(xml), str(back)]) == 0
        original = read_model(model_folder)
        final = read_model(back)
        assert np.array_equal(original.matrices.net, final.matrices.net)

    def test_generate_with_batch(self, tmp_path, capsys):
        destination = tmp_path / "synthetic"
        code = main(["generate", str(destination), "--species", "10",
                     "--reactions", "12", "--seed", "5", "--batch", "7"])
        assert code == 0
        model = read_model(destination)
        assert model.size == (10, 12)
        assert read_batch(destination).size == 7

    def test_generated_model_simulates_via_cli(self, tmp_path):
        destination = tmp_path / "synthetic"
        assert main(["generate", str(destination), "--species", "8",
                     "--reactions", "8"]) == 0
        assert main(["simulate", str(destination), "--t-end", "0.5",
                     "--points", "3", "--max-steps", "100000"]) == 0


class TestTrace:
    @pytest.fixture
    def lv_folder(self, tmp_path):
        from repro.models import lotka_volterra
        folder = tmp_path / "lv"
        write_model(lotka_volterra(), folder)
        return folder

    def test_record_summarize_export(self, lv_folder, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        code = main(["trace", "record", str(lv_folder),
                     "--out", str(trace), "--batch", "9",
                     "--chunk-size", "4", "--t-end", "2",
                     "--points", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign complete: 3/3 chunks" in out
        assert "steps.accepted" in out

        assert main(["trace", "summarize", str(trace)]) == 0
        assert "campaign" in capsys.readouterr().out

        exported = tmp_path / "trace.json"
        assert main(["trace", "export", str(trace),
                     "--out", str(exported)]) == 0
        capsys.readouterr()
        import json

        events = json.loads(exported.read_text())["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)

    def test_record_overwrites_stale_trace(self, lv_folder, tmp_path,
                                           capsys):
        trace = tmp_path / "trace.jsonl"
        arguments = ["trace", "record", str(lv_folder), "--out",
                     str(trace), "--batch", "4", "--chunk-size", "4",
                     "--t-end", "1", "--points", "3"]
        assert main(arguments) == 0
        assert main(arguments) == 0
        capsys.readouterr()
        # A fresh (checkpoint-free) recording replaced the old trace:
        # one campaign root, not two.
        from repro.telemetry import read_trace_jsonl, validate_trace

        spans = read_trace_jsonl(trace)
        assert validate_trace(spans) == []
        assert len([s for s in spans if s.category == "campaign"]) == 1

    def test_summarize_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["trace", "summarize", str(bad)]) == 2
        assert "error" in capsys.readouterr().err
