"""Cross-cutting property tests on end-to-end simulations.

These hypothesis-driven tests assert the physical invariants every
engine must preserve on randomly generated mass-action networks:
conservation laws hold along trajectories, engines agree with each
other, and dynamics stay finite for the benchmark-style workloads.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import simulate
from repro.model import invariant_totals, perturbed_batch
from repro.solvers import SolverOptions
from repro.synth import generate_model, SyntheticModelSpec

OPTIONS = SolverOptions(max_steps=100_000)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 500))
def test_conservation_laws_hold_along_trajectories(seed):
    """Any conserved linear combination stays constant under the
    batched engine, for random synthetic networks."""
    model = generate_model(SyntheticModelSpec(6, 8, seed))
    laws = model.conservation_law_basis()
    grid = np.linspace(0, 1, 5)
    result = simulate(model, (0, 1), grid, options=OPTIONS)
    if not result.all_success:   # pathological random dynamics
        return
    trajectories = result.y[0]
    if laws.shape[0] == 0:
        return
    totals = invariant_totals(laws, trajectories)
    scale = np.max(np.abs(totals)) + 1.0
    assert np.allclose(totals, totals[0], atol=1e-5 * scale)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 500))
def test_batched_and_sequential_engines_agree(seed):
    """The GPU-style engine and the scalar DOPRI5 loop compute the same
    dynamics on random networks."""
    model = generate_model(SyntheticModelSpec(5, 6, seed))
    grid = np.linspace(0, 0.5, 4)
    batch = perturbed_batch(model.nominal_parameterization(), 3,
                            np.random.default_rng(seed))
    batched = simulate(model, (0, 0.5), grid, batch, engine="batched",
                       options=OPTIONS)
    sequential = simulate(model, (0, 0.5), grid, batch, engine="dopri5",
                          options=OPTIONS)
    if batched.all_success and sequential.all_success:
        # Both run at rtol 1e-6 locally; global error on decaying
        # components can be a couple of orders larger.
        assert np.allclose(batched.y, sequential.y, rtol=3e-3, atol=1e-6)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 500), batch_size=st.integers(1, 6))
def test_batch_rows_are_independent(seed, batch_size):
    """Simulating a batch gives row-for-row the same answer as
    simulating each parameterization alone (no cross-talk)."""
    model = generate_model(SyntheticModelSpec(4, 5, seed))
    grid = np.array([0.0, 0.3])
    batch = perturbed_batch(model.nominal_parameterization(), batch_size,
                            np.random.default_rng(seed + 1))
    together = simulate(model, (0, 0.3), grid, batch, options=OPTIONS)
    if not together.all_success:
        return
    for index in range(batch_size):
        alone = simulate(model, (0, 0.3), grid, batch[index],
                         options=OPTIONS)
        assert np.allclose(alone.y[0], together.y[index], rtol=1e-7,
                           atol=1e-10)


def test_robertson_long_horizon_totals():
    """The hard stiff benchmark conserves mass to tight tolerance over
    six decades of time."""
    from repro.models import robertson
    grid = np.geomspace(1e-3, 1e6, 10)
    grid = np.concatenate([[0.0], grid])
    result = simulate(robertson(), (0, 1e6), grid, options=OPTIONS)
    assert result.all_success
    assert np.allclose(result.y[0].sum(axis=1), 1.0, atol=1e-5)


def test_concentrations_remain_finite_on_benchmark_workload():
    """The E1-style workload (perturbed synthetic batch) stays finite."""
    model = generate_model(SyntheticModelSpec(16, 16, 1))
    batch = perturbed_batch(model.nominal_parameterization(), 32,
                            np.random.default_rng(0))
    result = simulate(model, (0, 2), np.linspace(0, 2, 5), batch,
                      options=OPTIONS)
    assert result.all_success
    assert np.all(np.isfinite(result.y))
