"""Tests for the curated biological models."""

import numpy as np
import pytest

from repro.core import oscillation_metrics, simulate
from repro.models import (brusselator, cascade, decay_chain, dimerization,
                          hill_switch, lotka_volterra,
                          michaelis_menten_cycle, metabolic_network,
                          oscillates, robertson)
from repro.solvers import SolverOptions

STIFF = SolverOptions(max_steps=200_000)


class TestRobertson:
    def test_classic_dynamics(self):
        grid = np.array([0.0, 0.4, 4.0, 40.0])
        result = simulate(robertson(), (0, 40), grid, options=STIFF)
        a, b, c = result.y[0, -1]
        # Known Robertson behaviour: A decays slowly, B stays tiny.
        assert 0.7 < a < 1.0
        assert b < 1e-4
        assert a + b + c == pytest.approx(1.0, abs=1e-6)


class TestDecayChain:
    def test_bateman_solution_first_species(self):
        model = decay_chain(2, rate=1.0, initial=10.0)
        grid = np.linspace(0, 3, 7)
        result = simulate(model, (0, 3), grid)
        assert np.allclose(result.species("X0")[0], 10.0 * np.exp(-grid),
                           rtol=1e-5)

    def test_mass_flows_to_terminal_species(self):
        model = decay_chain(3)
        result = simulate(model, (0, 200), np.array([0.0, 200.0]),
                          options=STIFF)
        assert result.y[0, -1, -1] == pytest.approx(10.0, rel=1e-3)

    def test_invalid_length_rejected(self):
        with pytest.raises(Exception):
            decay_chain(0)


class TestLotkaVolterra:
    def test_sustained_oscillations(self):
        grid = np.linspace(0, 30, 601)
        result = simulate(lotka_volterra(), (0, 30), grid, options=STIFF)
        metrics = oscillation_metrics(grid, result.species("Y1")[0])
        assert metrics.oscillating
        assert metrics.n_peaks >= 2

    def test_conserved_quantity_along_orbit(self):
        """V = k2*(Y1+Y2) - k3*ln(Y1) - k1*ln(Y2) is a first integral."""
        grid = np.linspace(0, 10, 101)
        options = SolverOptions(rtol=1e-10, atol=1e-12, max_steps=200_000)
        result = simulate(lotka_volterra(), (0, 10), grid, options=options)
        prey = result.species("Y1")[0]
        predator = result.species("Y2")[0]
        integral = (0.1 * (prey + predator) - 0.5 * np.log(prey)
                    - 1.0 * np.log(predator))
        assert np.std(integral) < 1e-4 * np.abs(np.mean(integral))


class TestBrusselator:
    def test_oscillation_criterion(self):
        assert oscillates(1.0, 3.0)
        assert not oscillates(1.0, 1.5)

    def test_supercritical_parameters_oscillate(self):
        grid = np.linspace(0, 60, 601)
        result = simulate(brusselator(a=1.0, b=3.0), (0, 60), grid,
                          options=STIFF)
        metrics = oscillation_metrics(grid, result.species("X")[0])
        assert metrics.oscillating

    def test_subcritical_parameters_settle(self):
        grid = np.linspace(0, 60, 601)
        result = simulate(brusselator(a=1.0, b=1.2), (0, 60), grid,
                          options=STIFF)
        metrics = oscillation_metrics(grid, result.species("X")[0])
        assert not metrics.oscillating
        # Fixed point is (a, b/a) = (1, 1.2).
        assert result.y[0, -1, 0] == pytest.approx(1.0, abs=0.05)
        assert result.y[0, -1, 1] == pytest.approx(1.2, abs=0.05)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(Exception):
            brusselator(a=-1.0)


class TestSaturatingModels:
    def test_mm_cycle_conserves_total(self):
        model = michaelis_menten_cycle()
        grid = np.linspace(0, 20, 21)
        result = simulate(model, (0, 20), grid, options=STIFF)
        totals = result.y[0].sum(axis=1)
        assert np.allclose(totals, 1.0, atol=1e-6)

    def test_mm_cycle_reaches_interior_steady_state(self):
        model = michaelis_menten_cycle()
        result = simulate(model, (0, 50), np.array([0.0, 50.0]),
                          options=STIFF)
        s, p = result.y[0, -1]
        assert 0.0 < s < 1.0 and 0.0 < p < 1.0

    def test_hill_switch_turns_on_from_high_seed(self):
        model = hill_switch()
        # Seed above threshold: the switch latches high.
        high = model.nominal_parameterization().with_initial_value(0, 1.0)
        result = simulate(model, (0, 50), np.array([0.0, 50.0]), high,
                          options=STIFF)
        assert result.y[0, -1, 0] > 0.5

    def test_hill_switch_decays_from_low_seed(self):
        model = hill_switch()
        low = model.nominal_parameterization().with_initial_value(0, 0.01)
        result = simulate(model, (0, 50), np.array([0.0, 50.0]), low,
                          options=STIFF)
        assert result.y[0, -1, 0] < 0.1


class TestCascade:
    def test_activation_propagates_down_tiers(self):
        grid = np.linspace(0, 10, 11)
        result = simulate(cascade(), (0, 10), grid, options=STIFF)
        assert result.y[0, -1, result.model.species.index_of("X3a")] > 0.1

    def test_tier_totals_conserved(self):
        grid = np.linspace(0, 10, 11)
        result = simulate(cascade(), (0, 10), grid, options=STIFF)
        model = result.model
        for tier in ("1", "2", "3"):
            inactive = result.species(f"X{tier}")[0]
            active = result.species(f"X{tier}a")[0]
            assert np.allclose(inactive + active, 1.0, atol=1e-6)


class TestMetabolic:
    def test_shape_matches_docstring(self):
        model = metabolic_network()
        assert model.n_species == 22
        assert model.n_reactions == 20

    def test_dynamics_stay_finite_and_nonnegative(self):
        grid = np.linspace(0, 5, 11)
        result = simulate(metabolic_network(), (0, 5), grid, options=STIFF)
        assert result.all_success
        assert np.all(np.isfinite(result.y))
        assert np.all(result.y > -1e-8)

    def test_r5p_responds_to_hk2_knockdown(self):
        """Removing the dominant isoform changes the read-out — the
        premise of the SA experiment."""
        model = metabolic_network()
        nominal = simulate(model, (0, 5), np.array([0.0, 5.0]),
                           options=STIFF)
        knocked = model.nominal_parameterization().with_initial_value(
            model.species.index_of("HK2"), 0.0)
        knockdown = simulate(model, (0, 5), np.array([0.0, 5.0]), knocked,
                             options=STIFF)
        r5p = model.species.index_of("R5P")
        assert nominal.y[0, -1, r5p] != pytest.approx(
            knockdown.y[0, -1, r5p], rel=1e-3)
