"""Tests for the scalar Radau IIA order-5 solver."""

import numpy as np
import pytest
from scipy.integrate import solve_ivp

from repro.solvers import (MU_COMPLEX, MU_REAL, RADAU_A, RADAU_C, RADAU_T,
                           RADAU_TI, Radau5, SolverOptions)


def robertson_rhs(t, y):
    return np.array([
        -0.04 * y[0] + 1e4 * y[1] * y[2],
        0.04 * y[0] - 1e4 * y[1] * y[2] - 3e7 * y[1] ** 2,
        3e7 * y[1] ** 2,
    ])


def robertson_jac(t, y):
    return np.array([
        [-0.04, 1e4 * y[2], 1e4 * y[1]],
        [0.04, -1e4 * y[2] - 6e7 * y[1], -1e4 * y[1]],
        [0.0, 6e7 * y[1], 0.0],
    ])


class TestDerivedConstants:
    """The transformation is derived numerically at import; check it
    against the known closed forms of the RADAU5 literature."""

    def test_mu_real_closed_form(self):
        expected = 3.0 + 3.0 ** (2.0 / 3.0) - 3.0 ** (1.0 / 3.0)
        assert MU_REAL == pytest.approx(expected, rel=1e-12)

    def test_mu_complex_closed_form(self):
        expected_real = 3.0 + 0.5 * (3.0 ** (1.0 / 3.0)
                                     - 3.0 ** (2.0 / 3.0))
        expected_imag = -0.5 * (3.0 ** (5.0 / 6.0) + 3.0 ** (7.0 / 6.0))
        assert MU_COMPLEX.real == pytest.approx(expected_real, rel=1e-12)
        assert MU_COMPLEX.imag == pytest.approx(expected_imag, rel=1e-12)

    def test_nodes_are_radau_points(self):
        sqrt6 = np.sqrt(6.0)
        assert np.allclose(RADAU_C, [(4 - sqrt6) / 10, (4 + sqrt6) / 10, 1])

    def test_stage_matrix_row_sums_are_nodes(self):
        assert np.allclose(RADAU_A.sum(axis=1), RADAU_C)

    def test_transformation_block_diagonalizes(self):
        a_inv = np.linalg.inv(RADAU_A)
        lam = RADAU_TI @ a_inv @ RADAU_T
        assert lam[0, 0] == pytest.approx(MU_REAL)
        assert abs(lam[0, 1]) < 1e-10 and abs(lam[0, 2]) < 1e-10
        assert abs(lam[1, 0]) < 1e-10 and abs(lam[2, 0]) < 1e-10
        # 2x2 rotation block [[alpha, beta], [-beta, alpha]].
        assert lam[1, 1] == pytest.approx(MU_COMPLEX.real)
        assert lam[2, 2] == pytest.approx(MU_COMPLEX.real)
        assert lam[1, 2] == pytest.approx(-MU_COMPLEX.imag)
        assert lam[2, 1] == pytest.approx(MU_COMPLEX.imag)

    def test_method_is_stiffly_accurate(self):
        """b equals the last row of A."""
        assert np.allclose(RADAU_A[-1], [(16 - np.sqrt(6)) / 36,
                                         (16 + np.sqrt(6)) / 36, 1 / 9])


class TestAccuracy:
    def test_linear_decay(self):
        solver = Radau5(SolverOptions(rtol=1e-9, atol=1e-12))
        grid = np.linspace(0, 5, 6)
        result = solver.solve(lambda t, y: -y, (0, 5), np.array([1.0]), grid)
        assert result.success
        assert np.allclose(result.y[:, 0], np.exp(-grid), atol=1e-8)

    def test_robertson_against_scipy_radau(self):
        grid = np.array([0.0, 1e-2, 1.0, 1e2, 1e4])
        solver = Radau5(SolverOptions(rtol=1e-6, atol=1e-10,
                                      max_steps=100_000))
        result = solver.solve(robertson_rhs, (0, 1e4), np.array([1.0, 0, 0]),
                              grid, jac=robertson_jac)
        assert result.success
        reference = solve_ivp(robertson_rhs, (0, 1e4), [1.0, 0, 0],
                              method="Radau", t_eval=grid, rtol=1e-10,
                              atol=1e-13, jac=robertson_jac)
        assert np.allclose(result.y, reference.y.T, rtol=1e-4, atol=1e-10)

    def test_robertson_mass_conservation(self):
        grid = np.array([0.0, 1e2, 1e4])
        solver = Radau5(SolverOptions(max_steps=100_000))
        result = solver.solve(robertson_rhs, (0, 1e4), np.array([1.0, 0, 0]),
                              grid, jac=robertson_jac)
        assert np.allclose(result.y.sum(axis=1), 1.0, atol=1e-7)

    def test_finite_difference_jacobian_fallback(self):
        """Radau works without an analytic Jacobian."""
        grid = np.array([0.0, 1.0, 100.0])
        solver = Radau5(SolverOptions(max_steps=100_000))
        result = solver.solve(robertson_rhs, (0, 100), np.array([1.0, 0, 0]),
                              grid)
        assert result.success
        assert result.stats.n_jacobian_evaluations > 0

    def test_van_der_pol_efficiency(self):
        """Radau solves stiff VdP in far fewer steps than its step cap."""

        def vdp(t, y, mu=1000.0):
            return np.array([y[1], mu * (1 - y[0] ** 2) * y[1] - y[0]])

        def vdp_jac(t, y, mu=1000.0):
            return np.array([[0.0, 1.0],
                             [-2 * mu * y[0] * y[1] - 1.0,
                              mu * (1 - y[0] ** 2)]])

        solver = Radau5(SolverOptions(max_steps=20_000))
        result = solver.solve(vdp, (0, 3), np.array([2.0, 0.0]),
                              np.array([0.0, 3.0]), jac=vdp_jac)
        assert result.success
        assert result.stats.n_steps < 2_000


class TestBehaviour:
    def test_stats_accumulate(self):
        solver = Radau5()
        result = solver.solve(lambda t, y: -y, (0, 1), np.array([1.0]),
                              np.array([0.0, 1.0]))
        stats = result.stats
        assert stats.n_accepted > 0
        assert stats.n_factorizations > 0
        assert stats.n_newton_iterations >= stats.n_accepted

    def test_jacobian_reuse_reduces_evaluations(self):
        grid = np.array([0.0, 1e2])
        evaluations = {}
        for reuse in (True, False):
            solver = Radau5(SolverOptions(max_steps=100_000),
                            reuse_jacobian=reuse)
            result = solver.solve(robertson_rhs, (0, 1e2),
                                  np.array([1.0, 0, 0]), grid,
                                  jac=robertson_jac)
            assert result.success
            evaluations[reuse] = result.stats.n_jacobian_evaluations
        assert evaluations[True] < evaluations[False]

    def test_max_steps_status(self):
        solver = Radau5(SolverOptions(max_steps=3))
        result = solver.solve(robertson_rhs, (0, 1e4),
                              np.array([1.0, 0, 0]), np.array([0.0, 1e4]))
        assert result.status == "max_steps"

    def test_save_grid_hit_exactly(self):
        solver = Radau5()
        grid = np.array([0.0, 0.21, 0.9, 1.0])
        result = solver.solve(lambda t, y: -y, (0, 1), np.array([1.0]), grid)
        assert np.array_equal(result.t, grid)
        assert np.allclose(result.y[:, 0], np.exp(-grid), atol=1e-7)
