"""Tests for spectral-radius estimation and stiffness classification."""

import numpy as np
import pytest

from repro.solvers import (classify_stiffness, power_iteration,
                           spectral_radius, stiffness_ratio)


def random_matrix_with_radius(n, radius, rng):
    """Matrix with a controlled dominant eigenvalue magnitude."""
    eigenvalues = rng.uniform(-0.5, 0.5, n)
    eigenvalues[0] = radius
    basis = rng.standard_normal((n, n))
    return basis @ np.diag(eigenvalues) @ np.linalg.inv(basis)


class TestPowerIteration:
    def test_matches_dense_eigendecomposition(self):
        rng = np.random.default_rng(0)
        matrix = random_matrix_with_radius(6, 12.5, rng)
        estimate = spectral_radius(matrix, max_iterations=200, tol=1e-8)
        exact = np.max(np.abs(np.linalg.eigvals(matrix)))
        assert estimate == pytest.approx(exact, rel=1e-3)

    def test_batched_estimates(self):
        rng = np.random.default_rng(1)
        radii = [3.0, 300.0, 3000.0]
        matrices = np.stack([random_matrix_with_radius(5, r, rng)
                             for r in radii])
        estimate = power_iteration(matrices, max_iterations=200, tol=1e-6)
        assert estimate.spectral_radius == pytest.approx(radii, rel=1e-2)

    def test_zero_matrix_has_zero_radius(self):
        estimate = power_iteration(np.zeros((1, 4, 4)))
        assert estimate.spectral_radius[0] == pytest.approx(0.0, abs=1e-12)

    def test_complex_pair_dominance_converges_in_magnitude(self):
        """Rotation-like matrices (conjugate dominant pair) still yield
        the right magnitude."""
        omega = 50.0
        matrix = np.array([[0.0, omega], [-omega, 0.0]])
        estimate = spectral_radius(matrix, max_iterations=100)
        assert estimate == pytest.approx(omega, rel=1e-2)


class TestClassification:
    def test_threshold_splits_batch(self):
        rng = np.random.default_rng(2)
        matrices = np.stack([
            random_matrix_with_radius(4, 5.0, rng),
            random_matrix_with_radius(4, 5e4, rng),
        ])
        mask = classify_stiffness(matrices, threshold=500.0,
                                  max_iterations=100)
        assert mask.tolist() == [False, True]


class TestStiffnessRatio:
    def test_diagonal_ratio(self):
        matrix = np.diag([-1.0, -1000.0])
        assert stiffness_ratio(matrix) == pytest.approx(1000.0)

    def test_pure_rotation_reports_unit_ratio(self):
        matrix = np.array([[0.0, 1.0], [-1.0, 0.0]])
        assert stiffness_ratio(matrix) == pytest.approx(1.0)
