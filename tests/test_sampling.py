"""Tests for the parameter-space samplers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (ParameterRange, saltelli_block_count,
                        saltelli_sample, sample_grid,
                        sample_latin_hypercube, sample_sobol,
                        sample_uniform)
from repro.errors import AnalysisError


class TestParameterRange:
    def test_linear_grid(self):
        grid = ParameterRange(0.0, 10.0).grid(11)
        assert np.allclose(grid, np.arange(11.0))

    def test_log_grid(self):
        grid = ParameterRange(1e-3, 1e3, log=True).grid(7)
        assert np.allclose(np.log10(grid), np.arange(-3, 4))

    def test_from_unit_endpoints(self):
        linear = ParameterRange(2.0, 4.0)
        assert np.allclose(linear.from_unit(np.array([0.0, 1.0])),
                           [2.0, 4.0])
        logarithmic = ParameterRange(1e-2, 1e2, log=True)
        assert np.allclose(logarithmic.from_unit(np.array([0.5])), [1.0])

    def test_empty_range_rejected(self):
        with pytest.raises(AnalysisError):
            ParameterRange(1.0, 1.0)

    def test_log_range_requires_positive_low(self):
        with pytest.raises(AnalysisError):
            ParameterRange(0.0, 1.0, log=True)

    def test_grid_needs_two_points(self):
        with pytest.raises(AnalysisError):
            ParameterRange(0, 1).grid(1)

    @settings(max_examples=20, deadline=None)
    @given(low=st.floats(1e-6, 1.0), span=st.floats(0.1, 100.0),
           unit=st.floats(0.0, 1.0))
    def test_from_unit_stays_in_range(self, low, span, unit):
        prange = ParameterRange(low, low + span)
        value = prange.from_unit(np.array([unit]))[0]
        assert low - 1e-12 <= value <= low + span + 1e-12


RANGES = [ParameterRange(0.0, 1.0), ParameterRange(1e-2, 1e2, log=True)]


class TestSamplers:
    def test_uniform_shape_and_bounds(self):
        samples = sample_uniform(RANGES, 100, np.random.default_rng(0))
        assert samples.shape == (100, 2)
        assert np.all(samples[:, 0] >= 0.0) and np.all(samples[:, 0] <= 1.0)
        assert np.all(samples[:, 1] >= 1e-2) and np.all(samples[:, 1] <= 1e2)

    def test_grid_is_full_factorial(self):
        samples = sample_grid(RANGES, 4)
        assert samples.shape == (16, 2)
        assert len(np.unique(samples[:, 0])) == 4

    def test_latin_hypercube_stratification(self):
        """Each axis has exactly one sample per stratum."""
        count = 32
        samples = sample_latin_hypercube([ParameterRange(0, 1)] * 2, count,
                                         np.random.default_rng(1))
        for axis in range(2):
            strata = np.floor(samples[:, axis] * count).astype(int)
            assert len(np.unique(strata)) == count

    def test_sobol_deterministic_per_seed(self):
        first = sample_sobol(RANGES, 16, seed=3)
        second = sample_sobol(RANGES, 16, seed=3)
        assert np.array_equal(first, second)
        third = sample_sobol(RANGES, 16, seed=4)
        assert not np.array_equal(first, third)

    def test_sobol_non_power_of_two(self):
        samples = sample_sobol(RANGES, 10, seed=0)
        assert samples.shape == (10, 2)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            from repro.core.sampling import _map_unit
            _map_unit(np.zeros((3, 3)), RANGES)


class TestSaltelli:
    def test_block_layout(self):
        base = 8
        design = saltelli_sample(RANGES, base, seed=0)
        assert design.shape == (base * saltelli_block_count(2), 2)
        a_block = design[:base]
        b_block = design[-base:]
        ab_first = design[base:2 * base]
        # AB_0 takes column 0 from B and column 1 from A.
        assert np.allclose(ab_first[:, 0], b_block[:, 0])
        assert np.allclose(ab_first[:, 1], a_block[:, 1])

    def test_second_order_layout(self):
        base = 4
        design = saltelli_sample(RANGES, base, seed=0, second_order=True)
        assert design.shape == (base * saltelli_block_count(2, True), 2)

    def test_block_count(self):
        assert saltelli_block_count(3) == 5
        assert saltelli_block_count(3, second_order=True) == 8
