"""Unit tests for kinetic laws."""

import pytest

from repro.errors import KineticsError
from repro.model import Hill, MassAction, MichaelisMenten
from repro.model.kinetics import validate_law_for_reaction


class TestLaws:
    def test_mass_action_is_stateless_and_equal(self):
        assert MassAction() == MassAction()
        assert "mass-action" in MassAction().describe()

    def test_michaelis_menten_requires_positive_km(self):
        with pytest.raises(KineticsError):
            MichaelisMenten(km=0.0)
        with pytest.raises(KineticsError):
            MichaelisMenten(km=-1.0)

    def test_hill_requires_positive_parameters(self):
        with pytest.raises(KineticsError):
            Hill(km=0.0, n=2.0)
        with pytest.raises(KineticsError):
            Hill(km=1.0, n=0.0)

    def test_describe_mentions_parameters(self):
        assert "0.5" in MichaelisMenten(km=0.5).describe()
        description = Hill(km=0.5, n=4.0).describe()
        assert "0.5" in description and "4.0" in description


class TestValidation:
    def test_mass_action_accepts_any_shape(self):
        validate_law_for_reaction(MassAction(), 0, 0)
        validate_law_for_reaction(MassAction(), 3, 2)

    def test_saturating_laws_need_single_unit_substrate(self):
        validate_law_for_reaction(MichaelisMenten(km=1.0), 1, 1)
        validate_law_for_reaction(Hill(km=1.0, n=2.0), 1, 1)
        with pytest.raises(KineticsError):
            validate_law_for_reaction(MichaelisMenten(km=1.0), 2, 1)
        with pytest.raises(KineticsError):
            validate_law_for_reaction(Hill(km=1.0, n=2.0), 1, 2)
