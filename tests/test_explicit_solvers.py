"""Tests for the scalar adaptive explicit Runge-Kutta solver."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solvers import (BOGACKI_SHAMPINE_23, CASH_KARP_45, DOPRI5,
                           FEHLBERG_45, ExplicitRungeKutta, SolverOptions,
                           SUCCESS, MAX_STEPS)

ALL = [BOGACKI_SHAMPINE_23, FEHLBERG_45, CASH_KARP_45, DOPRI5]


def exponential(t, y):
    return -y


def oscillator(t, y):
    return np.array([y[1], -y[0]])


def van_der_pol_stiff(t, y, mu=1000.0):
    return np.array([y[1], mu * (1 - y[0] ** 2) * y[1] - y[0]])


@pytest.mark.parametrize("tableau", ALL, ids=lambda t: t.name)
class TestAccuracy:
    def test_exponential_decay(self, tableau):
        solver = ExplicitRungeKutta(tableau, SolverOptions(rtol=1e-8,
                                                           atol=1e-12))
        grid = np.linspace(0, 5, 6)
        result = solver.solve(exponential, (0, 5), np.array([1.0]), grid)
        assert result.success
        assert np.allclose(result.y[:, 0], np.exp(-grid), atol=1e-6)

    def test_harmonic_oscillator(self, tableau):
        solver = ExplicitRungeKutta(tableau, SolverOptions(rtol=1e-9,
                                                           atol=1e-12))
        grid = np.linspace(0, 2 * np.pi, 9)
        result = solver.solve(oscillator, (0, 2 * np.pi),
                              np.array([1.0, 0.0]), grid)
        assert result.success
        assert np.allclose(result.y[:, 0], np.cos(grid), atol=1e-5)

    def test_tightening_tolerance_reduces_error(self, tableau):
        grid = np.array([0.0, 3.0])
        errors = []
        for rtol in (1e-4, 1e-8):
            solver = ExplicitRungeKutta(
                tableau, SolverOptions(rtol=rtol, atol=1e-14))
            result = solver.solve(exponential, (0, 3), np.array([1.0]), grid)
            errors.append(abs(result.y[-1, 0] - np.exp(-3.0)))
        assert errors[1] < errors[0]


class TestConvergenceOrder:
    @pytest.mark.parametrize("tableau,expected_order",
                             [(BOGACKI_SHAMPINE_23, 3), (DOPRI5, 5)],
                             ids=["bs23", "dopri5"])
    def test_fixed_step_convergence_order(self, tableau, expected_order):
        """Halving a forced fixed step divides the error by ~2^order."""

        def solve_fixed(h):
            options = SolverOptions(rtol=1e300, atol=1e300, first_step=h,
                                    max_step=h, max_steps=100_000,
                                    max_step_factor=1.0000001)
            solver = ExplicitRungeKutta(tableau, options,
                                        use_pi_controller=False)
            result = solver.solve(exponential, (0, 1), np.array([1.0]),
                                  np.array([0.0, 1.0]))
            return abs(result.y[-1, 0] - np.exp(-1.0))

        coarse = solve_fixed(0.1)
        fine = solve_fixed(0.05)
        observed_order = np.log2(coarse / fine)
        assert observed_order > expected_order - 0.7


class TestControlFlow:
    def test_save_grid_hit_exactly(self):
        solver = ExplicitRungeKutta(DOPRI5)
        grid = np.array([0.0, 0.37, 1.114, 2.0])
        result = solver.solve(exponential, (0, 2), np.array([1.0]), grid)
        assert np.array_equal(result.t, grid)
        assert np.allclose(result.y[:, 0], np.exp(-grid), atol=1e-6)

    def test_grid_not_starting_at_t0(self):
        solver = ExplicitRungeKutta(DOPRI5)
        grid = np.array([0.5, 1.0])
        result = solver.solve(exponential, (0, 1), np.array([1.0]), grid)
        assert result.success
        assert np.allclose(result.y[:, 0], np.exp(-grid), atol=1e-6)

    def test_default_grid_is_span_endpoints(self):
        solver = ExplicitRungeKutta(DOPRI5)
        result = solver.solve(exponential, (0, 1), np.array([1.0]))
        assert np.allclose(result.t, [0.0, 1.0])

    def test_max_steps_reported(self):
        solver = ExplicitRungeKutta(DOPRI5, SolverOptions(max_steps=5))
        result = solver.solve(oscillator, (0, 100), np.array([1.0, 0.0]),
                              np.linspace(0, 100, 3))
        assert result.status == MAX_STEPS
        assert result.t_stop is not None
        assert not result.success

    def test_invalid_grid_rejected(self):
        solver = ExplicitRungeKutta(DOPRI5)
        with pytest.raises(SolverError):
            solver.solve(exponential, (0, 1), np.array([1.0]),
                         np.array([0.0, 2.0]))
        with pytest.raises(SolverError):
            solver.solve(exponential, (1, 0), np.array([1.0]))

    def test_statistics_are_consistent(self):
        solver = ExplicitRungeKutta(DOPRI5)
        result = solver.solve(oscillator, (0, 10), np.array([1.0, 0.0]),
                              np.linspace(0, 10, 5))
        stats = result.stats
        assert stats.n_steps == stats.n_accepted + stats.n_rejected
        assert stats.n_rhs_evaluations >= 6 * stats.n_steps

    def test_pi_controller_not_worse_than_elementary(self):
        grid = np.array([0.0, 10.0])
        steps = {}
        for use_pi in (True, False):
            solver = ExplicitRungeKutta(DOPRI5, use_pi_controller=use_pi)
            result = solver.solve(oscillator, (0, 10),
                                  np.array([1.0, 0.0]), grid)
            steps[use_pi] = result.stats.n_steps
        assert steps[True] <= steps[False] * 1.5


class TestStiffnessDetection:
    def test_van_der_pol_flags_stiffness(self):
        solver = ExplicitRungeKutta(DOPRI5, SolverOptions(max_steps=5000),
                                    abort_on_stiffness=True)
        result = solver.solve(van_der_pol_stiff, (0, 2),
                              np.array([2.0, 0.0]), np.array([0.0, 2.0]))
        assert result.status == "stiff_detected"
        assert result.stiffness_detected
        assert result.t_stop is not None and result.y_stop is not None

    def test_nonstiff_problem_not_flagged(self):
        solver = ExplicitRungeKutta(DOPRI5, abort_on_stiffness=True)
        result = solver.solve(oscillator, (0, 20), np.array([1.0, 0.0]),
                              np.linspace(0, 20, 5))
        assert result.success
        assert not result.stiffness_detected

    def test_detection_disabled_for_non_c1_tableaus(self):
        solver = ExplicitRungeKutta(FEHLBERG_45, abort_on_stiffness=True)
        assert not solver.detect_stiffness


class TestDenseOutput:
    def test_interpolant_matches_interior_solution(self):
        solver = ExplicitRungeKutta(DOPRI5, SolverOptions(rtol=1e-10,
                                                          atol=1e-12))
        result = solver.solve(oscillator, (0, 3), np.array([1.0, 0.0]),
                              np.array([0.0, 3.0]),
                              collect_interpolants=True)
        interpolants = result.interpolants
        assert interpolants
        for interpolant in interpolants[::3]:
            midpoint = 0.5 * (interpolant.t_start + interpolant.t_end)
            value = interpolant(midpoint)
            assert np.allclose(value, [np.cos(midpoint), -np.sin(midpoint)],
                               atol=1e-7)

    def test_interpolant_endpoints_exact(self):
        solver = ExplicitRungeKutta(DOPRI5)
        result = solver.solve(exponential, (0, 1), np.array([1.0]),
                              np.array([0.0, 1.0]),
                              collect_interpolants=True)
        first = result.interpolants[0]
        assert np.allclose(first(first.t_start), first._y_start)
