"""Tests for trajectory analysis metrics."""

import numpy as np
import pytest

from repro.core import (batch_relative_distances, oscillation_metrics,
                        relative_distance, steady_state_time)
from repro.core.analysis import (batch_oscillation_amplitudes, final_value)
from repro.errors import AnalysisError


class TestOscillationMetrics:
    def test_pure_sine(self):
        times = np.linspace(0, 20 * np.pi, 2000)
        metrics = oscillation_metrics(times, 2.0 + 1.5 * np.sin(times))
        assert metrics.oscillating
        assert metrics.amplitude == pytest.approx(1.5, rel=1e-2)
        assert metrics.period == pytest.approx(2 * np.pi, rel=1e-2)

    def test_constant_signal_is_flat(self):
        times = np.linspace(0, 10, 100)
        metrics = oscillation_metrics(times, np.full(100, 3.0))
        assert not metrics.oscillating
        assert metrics.amplitude == 0.0

    def test_damped_ringdown_rejected(self):
        times = np.linspace(0, 60, 3000)
        signal = 1.0 + np.exp(-0.3 * times) * np.sin(times)
        metrics = oscillation_metrics(times, signal)
        assert not metrics.oscillating

    def test_tiny_numerical_noise_rejected(self):
        rng = np.random.default_rng(0)
        times = np.linspace(0, 10, 500)
        signal = 1.0 + 1e-9 * rng.standard_normal(500)
        metrics = oscillation_metrics(times, signal)
        assert not metrics.oscillating

    def test_settle_fraction_skips_transient(self):
        times = np.linspace(0, 100, 5000)
        # Strong transient then clean oscillation.
        signal = np.where(times < 20, 10 * np.exp(-times),
                          np.sin(times))
        metrics = oscillation_metrics(times, signal, settle_fraction=0.25)
        assert metrics.oscillating

    def test_shape_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            oscillation_metrics(np.arange(5.0), np.arange(4.0))

    def test_short_window(self):
        metrics = oscillation_metrics(np.arange(4.0), np.arange(4.0))
        assert not metrics.oscillating


class TestSteadyState:
    def test_exponential_settles(self):
        times = np.linspace(0, 20, 2001)
        signal = 1.0 + np.exp(-times)
        settle = steady_state_time(times, signal, relative_tolerance=1e-3)
        # exp(-t) < 1e-3 around t = 6.9.
        assert 6.0 < settle < 8.5

    def test_already_settled(self):
        times = np.linspace(0, 1, 10)
        assert steady_state_time(times, np.ones(10)) == 0.0

    def test_never_settles(self):
        times = np.linspace(0, 10, 1000)
        assert np.isnan(steady_state_time(times, np.sin(times)))


class TestDistances:
    def test_identical_dynamics_score_zero(self):
        target = np.random.default_rng(0).random((10, 3))
        assert relative_distance(target, target) == 0.0

    def test_scaling_by_two_scores_one(self):
        target = np.ones((5, 2))
        assert relative_distance(target, 2 * target) == pytest.approx(1.0)

    def test_non_finite_candidate_is_infinite(self):
        target = np.ones((4, 1))
        candidate = target.copy()
        candidate[2, 0] = np.nan
        assert relative_distance(target, candidate) == np.inf

    def test_shape_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            relative_distance(np.ones((3, 2)), np.ones((2, 3)))

    def test_batch_distances(self):
        target = np.ones((6, 2))
        candidates = np.stack([target, 2 * target, np.full_like(target,
                                                                np.nan)])
        scores = batch_relative_distances(target, candidates)
        assert scores[0] == 0.0
        assert scores[1] == pytest.approx(1.0)
        assert scores[2] == np.inf


class TestBatchHelpers:
    def test_final_value(self):
        trajectories = np.arange(24.0).reshape(2, 4, 3)
        assert np.allclose(final_value(trajectories, 1), [10.0, 22.0])

    def test_batch_amplitudes_handle_nan_rows(self):
        times = np.linspace(0, 20 * np.pi, 1500)
        good = 1.0 + np.sin(times)
        bad = np.full_like(times, np.nan)
        trajectories = np.stack([good, bad])[:, :, None]
        amplitudes = batch_oscillation_amplitudes(times, trajectories, 0)
        assert amplitudes[0] == pytest.approx(1.0, rel=5e-2)
        assert amplitudes[1] == 0.0
