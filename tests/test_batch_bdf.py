"""Tests for the batched variable-order BDF (cupSODA-analog) engine."""

import numpy as np
import pytest

from repro.gpu import BatchBDF, BatchSimulator, BatchedODEProblem
from repro.model import ODESystem, perturbed_batch
from repro.models import decay_chain, dimerization, robertson
from repro.solvers import BDF, SolverOptions

OPTIONS = SolverOptions(rtol=1e-6, atol=1e-10, max_steps=200_000)


def make_problem(model, batch_size=6, seed=0, spread=0.25):
    system = ODESystem.from_model(model)
    batch = perturbed_batch(model.nominal_parameterization(), batch_size,
                            np.random.default_rng(seed), spread)
    return BatchedODEProblem(system, batch), batch


class TestAgainstScalar:
    def test_matches_scalar_bdf_on_nonstiff_batch(self):
        model = decay_chain(3)
        problem, batch = make_problem(model, 6)
        grid = np.linspace(0, 4, 9)
        batched = BatchBDF(OPTIONS).solve(problem, (0, 4), grid)
        assert batched.all_success
        scalar = BDF(OPTIONS)
        for index in range(batch.size):
            fun = problem.system.as_scipy_rhs(batch.rate_constants[index])
            jac = problem.system.as_scipy_jacobian(
                batch.rate_constants[index])
            reference = scalar.solve(fun, (0, 4),
                                     batch.initial_states[index], grid,
                                     jac=jac)
            assert np.allclose(batched.y[index], reference.y, rtol=1e-3,
                               atol=1e-6)

    def test_stiff_robertson_batch(self):
        problem, batch = make_problem(robertson(), 8, seed=1)
        grid = np.array([0.0, 1e-2, 1.0, 1e2, 1e4])
        result = BatchBDF(OPTIONS).solve(problem, (0, 1e4), grid)
        assert result.all_success
        # Multistep efficiency: a few hundred steps across six decades.
        assert np.all(result.n_steps < 2_000)
        assert np.allclose(result.y[:, -1, :].sum(axis=1), 1.0, atol=1e-5)

    def test_accuracy_against_high_precision_reference(self):
        from repro.solvers import Radau5
        problem, batch = make_problem(robertson(), 4, seed=1)
        grid = np.array([0.0, 1.0, 1e2, 1e4])
        result = BatchBDF(OPTIONS).solve(problem, (0, 1e4), grid)
        truth_solver = Radau5(SolverOptions(rtol=1e-11, atol=1e-14,
                                            max_steps=1_000_000))
        for index in range(batch.size):
            fun = problem.system.as_scipy_rhs(batch.rate_constants[index])
            jac = problem.system.as_scipy_jacobian(
                batch.rate_constants[index])
            truth = truth_solver.solve(fun, (0, 1e4),
                                       batch.initial_states[index], grid,
                                       jac=jac)
            error = np.max(np.abs(truth.y - result.y[index])
                           / (np.abs(truth.y) + 1e-8))
            assert error < 1e-3


class TestBatchSemantics:
    def test_per_simulation_orders_diverge(self):
        """Different rows settle at different BDF orders — the
        per-thread order adaptation of the original tool."""
        problem, _ = make_problem(robertson(), 8, seed=2)
        solver = BatchBDF(OPTIONS)
        result = solver.solve(problem, (0, 1e2),
                              np.array([0.0, 1e2]))
        assert result.all_success
        assert len(np.unique(result.n_steps)) > 1

    def test_conservation_laws_respected(self):
        model = dimerization()
        problem, _ = make_problem(model, 4)
        laws = model.conservation_law_basis()
        grid = np.linspace(0, 5, 6)
        result = BatchBDF(OPTIONS).solve(problem, (0, 5), grid)
        assert result.all_success
        invariants = np.einsum("btn,ln->btl", result.y, laws)
        assert np.allclose(invariants, invariants[:, :1, :], rtol=1e-5)

    def test_max_steps_marks_exhausted(self):
        problem, _ = make_problem(robertson(), 3)
        result = BatchBDF(SolverOptions(max_steps=3)).solve(
            problem, (0, 1e4), np.array([0.0, 1e4]))
        assert set(result.statuses()) <= {"max_steps", "failed"}

    def test_save_grid_complete(self):
        problem, _ = make_problem(decay_chain(2), 4)
        grid = np.array([0.0, 0.4, 1.3, 3.0])
        result = BatchBDF(OPTIONS).solve(problem, (0, 3), grid)
        assert result.all_success
        assert not np.any(np.isnan(result.y))


class TestEngineIntegration:
    def test_engine_method_bdf(self):
        model = robertson()
        engine = BatchSimulator(model, OPTIONS, method="bdf")
        batch = perturbed_batch(model.nominal_parameterization(), 4,
                                np.random.default_rng(3))
        result = engine.simulate((0, 1e2), np.array([0.0, 1.0, 1e2]),
                                 batch)
        assert result.all_success
        assert set(result.methods()) == {"bdf"}
        radau = BatchSimulator(model, OPTIONS, method="radau5").simulate(
            (0, 1e2), np.array([0.0, 1.0, 1e2]), batch)
        assert np.allclose(result.y, radau.y, rtol=1e-3, atol=1e-7)
