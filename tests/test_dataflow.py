"""Tests for the dataflow engine under the deep analyzer.

Synthetic-snippet unit tests for CFG construction, def-use chains,
alias tracking and call-graph reachability (including decorated
functions and ``functools.partial`` bindings), plus a hypothesis
property test that analyzing arbitrary generated programs never
raises.
"""

import ast
import textwrap

import pytest
from hypothesis import given, strategies as st

from repro.lint.dataflow import (AliasSets, DefUseChains, ProjectIndex,
                                 WaiverIndex, build_cfg, parse_waivers)


def function_node(source, name=None):
    tree = ast.parse(textwrap.dedent(source))
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) \
                and (name is None or node.name == name):
            return node
    raise AssertionError("no function in snippet")


def make_index(tmp_path, files):
    root = tmp_path / "proj"
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return ProjectIndex(sorted(root.rglob("*.py")), root=root)


class TestCFG:
    def test_straight_line_single_block(self):
        cfg = build_cfg(function_node("""
            def f(x):
                a = x + 1
                b = a * 2
                return b
        """))
        # entry, exit, and one code block
        populated = [b for b in cfg.blocks if b.elements]
        assert len(populated) == 1
        assert len(populated[0].elements) == 3

    def test_if_else_branches_and_join(self):
        cfg = build_cfg(function_node("""
            def f(x):
                if x > 0:
                    y = 1
                else:
                    y = 2
                return y
        """))
        test_block = next(b for b in cfg.blocks
                          if any(e.kind == "test" for e in b.elements))
        assert len(test_block.successors) == 2

    def test_while_has_back_edge(self):
        cfg = build_cfg(function_node("""
            def f(n):
                while n > 0:
                    n = n - 1
                return n
        """))
        head = next(b for b in cfg.blocks
                    if any(e.kind == "test" for e in b.elements))
        body = [cfg.blocks[s] for s in head.successors]
        assert any(head.index in b.successors for b in body)

    def test_for_loop_element_kind(self):
        cfg = build_cfg(function_node("""
            def f(rows):
                total = 0
                for row in rows:
                    total += row
                return total
        """))
        kinds = [e.kind for e in cfg.elements()]
        assert "for" in kinds

    def test_break_edges_to_after_loop(self):
        cfg = build_cfg(function_node("""
            def f(rows):
                for row in rows:
                    if row < 0:
                        break
                return rows
        """))
        # the function must still reach the exit block
        assert cfg.blocks[cfg.exit].predecessors

    def test_return_edges_to_exit(self):
        cfg = build_cfg(function_node("""
            def f(x):
                if x:
                    return 1
                return 2
        """))
        assert len(cfg.blocks[cfg.exit].predecessors) >= 2

    def test_try_except_reaches_handler(self):
        cfg = build_cfg(function_node("""
            def f(x):
                try:
                    y = 1 / x
                except ZeroDivisionError:
                    y = 0
                return y
        """))
        kinds = [e.kind for e in cfg.elements()]
        assert "except" in kinds
        assert cfg.blocks[cfg.exit].predecessors


class TestDefUse:
    def test_simple_chain(self):
        chains = DefUseChains(function_node("""
            def f(x):
                a = x + 1
                b = a * 2
                return b
        """))
        (a_def,) = chains.definitions_of("a")
        assert len(chains.uses_of[a_def]) == 1
        assert chains.uses_of[a_def][0].id == "a"

    def test_parameter_reaches_use(self):
        chains = DefUseChains(function_node("""
            def f(x):
                return x + 1
        """))
        (x_def,) = chains.definitions_of("x")
        assert x_def.kind == "param"
        assert len(chains.uses_of[x_def]) == 1

    def test_rebinding_kills_old_definition(self):
        chains = DefUseChains(function_node("""
            def f():
                a = 1
                a = 2
                return a
        """))
        first, second = chains.definitions_of("a")
        assert chains.uses_of[first] == []
        assert len(chains.uses_of[second]) == 1

    def test_branches_merge_both_definitions(self):
        chains = DefUseChains(function_node("""
            def f(c):
                if c:
                    y = 1
                else:
                    y = 2
                return y
        """))
        defs = chains.definitions_of("y")
        assert all(len(chains.uses_of[d]) == 1 for d in defs)
        use = chains.uses_of[defs[0]][0]
        assert set(chains.reaching_definitions(use)) == set(defs)

    def test_loop_carried_definition_reaches_header(self):
        chains = DefUseChains(function_node("""
            def f(rows):
                total = 0
                for row in rows:
                    total = total + row
                return total
        """))
        init, carried = chains.definitions_of("total")
        # the loop-body use sees both the init and the carried def
        body_use = chains.uses_of[carried][0]
        assert set(chains.reaching_definitions(body_use)) >= {init, carried}

    def test_taint_closure_follows_assignment_flow(self):
        chains = DefUseChains(function_node("""
            def f(x):
                a = x
                b = a + 1
                c = b * 2
                d = x - 1
                return c + d
        """))
        (a_def,) = chains.definitions_of("a")
        tainted = chains.tainted_closure([a_def])
        names = {d.name for d in tainted}
        assert names == {"a", "b", "c"}

    def test_augassign_reads_and_rebinds(self):
        chains = DefUseChains(function_node("""
            def f():
                a = 1
                a += 2
                return a
        """))
        first, second = chains.definitions_of("a")
        assert second.kind == "aug"
        assert len(chains.uses_of[first]) == 1  # read by the +=


class TestAliases:
    def test_name_binding_aliases(self):
        aliases = AliasSets(function_node("""
            def f(a):
                b = a
                c = b
        """))
        left = ast.parse("c").body[0].value
        right = ast.parse("a").body[0].value
        assert aliases.may_alias(left, right)

    def test_basic_slice_view_aliases(self):
        aliases = AliasSets(function_node("""
            def f(a):
                view = a[1:]
        """))
        assert aliases.may_alias(ast.parse("view").body[0].value,
                                 ast.parse("a").body[0].value)

    def test_asarray_view_aliases(self):
        aliases = AliasSets(function_node("""
            def f(a):
                b = np.asarray(a)
        """))
        assert aliases.may_alias(ast.parse("b").body[0].value,
                                 ast.parse("a").body[0].value)

    def test_copy_does_not_alias(self):
        aliases = AliasSets(function_node("""
            def f(a):
                b = a.copy()
        """))
        assert not aliases.may_alias(ast.parse("b").body[0].value,
                                     ast.parse("a").body[0].value)

    def test_identical_expressions_alias(self):
        aliases = AliasSets(function_node("""
            def f(a):
                pass
        """))
        assert aliases.may_alias(ast.parse("a[0]").body[0].value,
                                 ast.parse("a[0]").body[0].value)


class TestCallGraph:
    def test_direct_call_edge_and_reachability(self, tmp_path):
        index = make_index(tmp_path, {"mod.py": """
            def helper():
                return 1

            def entry():
                return helper()
        """})
        (entry,) = [r for r in index.functions() if r.name == "entry"]
        reachable = index.reachable([entry.qualname])
        assert any(q.endswith("::helper") for q in reachable)

    def test_cross_module_edge(self, tmp_path):
        index = make_index(tmp_path, {
            "a.py": """
                def compute():
                    return 42
            """,
            "b.py": """
                def run_all():
                    return compute()
            """,
        })
        (root,) = [r for r in index.functions() if r.name == "run_all"]
        assert any(q == "a.py::compute"
                   for q in index.reachable([root.qualname]))

    def test_decorated_function_reachable(self, tmp_path):
        index = make_index(tmp_path, {"mod.py": """
            def wrap(fn):
                def inner(*args):
                    return fn(*args)
                return inner

            @wrap
            def worker():
                return leaf()

            def leaf():
                return 0

            def entry():
                return worker()
        """})
        (entry,) = [r for r in index.functions() if r.name == "entry"]
        reachable = index.reachable([entry.qualname])
        assert any(q.endswith("::worker") for q in reachable)
        assert any(q.endswith("::leaf") for q in reachable)

    def test_functools_partial_binding_reachable(self, tmp_path):
        index = make_index(tmp_path, {"mod.py": """
            import functools

            def solver(tol):
                return kernel(tol)

            def kernel(tol):
                return tol

            def entry():
                bound = functools.partial(solver, 1e-6)
                return bound()
        """})
        (entry,) = [r for r in index.functions() if r.name == "entry"]
        reachable = index.reachable([entry.qualname])
        # solver is referenced only as a bare name inside partial(...)
        assert any(q.endswith("::solver") for q in reachable)
        assert any(q.endswith("::kernel") for q in reachable)

    def test_unreferenced_function_not_reachable(self, tmp_path):
        index = make_index(tmp_path, {"mod.py": """
            def entry():
                return 1

            def island():
                return 2
        """})
        (entry,) = [r for r in index.functions() if r.name == "entry"]
        assert not any(q.endswith("::island")
                       for q in index.reachable([entry.qualname]))

    def test_module_level_code_is_a_pseudo_function(self, tmp_path):
        index = make_index(tmp_path, {"mod.py": """
            def init():
                return 3

            CONSTANT = init()
        """})
        (record,) = index.module_records()
        assert any(q.endswith("::init")
                   for q in index.reachable([record.qualname]))


class TestWaivers:
    def test_pragma_inside_docstring_is_not_a_waiver(self):
        waivers = parse_waivers(
            '"""Example:\n\n    # lint: skip=KRN001\n"""\n'
            "x = 1  # lint: skip=DET001 -- real\n")
        assert len(waivers) == 1
        assert waivers[0].rules == ("DET001",)

    def test_consumption_tracking(self):
        index = WaiverIndex.from_source(
            "a = 1  # lint: skip=DET001 -- used\n"
            "b = 2  # lint: skip=DET002 -- never used\n")
        assert index.suppresses("DET001", 1)
        stale = index.stale(lambda r: r.startswith("DET"))
        assert stale == [(2, "DET002")]

    def test_pragma_covers_next_line(self):
        index = WaiverIndex.from_source(
            "# lint: skip=DET003 -- next line\n"
            "c = narrow + 1\n")
        assert index.suppresses("DET003", 2)
        assert index.stale(lambda r: True) == []


# -- the hypothesis property: analysis never raises --------------------

_names = st.sampled_from(["a", "b", "c", "rows", "x"])
_exprs = st.sampled_from([
    "1", "a + b", "f(a)", "a[0]", "a[1:]", "{1, 2}", "set(rows)",
    "np.dot(a, b)", "a.copy()", "(a, b)", "[x for x in rows]",
])


@st.composite
def _statements(draw, depth=0):
    kind = draw(st.integers(0, 5 if depth < 2 else 2))
    name, expr = draw(_names), draw(_exprs)
    if kind == 0:
        return f"{name} = {expr}"
    if kind == 1:
        return f"{name} += 1"
    if kind == 2:
        return f"return {expr}"
    inner = draw(st.lists(_statements(depth=depth + 1),
                          min_size=1, max_size=3))
    body = textwrap.indent("\n".join(inner), "    ")
    if kind == 3:
        return f"if {name}:\n{body}"
    if kind == 4:
        return f"for {name} in rows:\n{body}"
    return f"while {name}:\n{body}"


@given(st.lists(_statements(), min_size=1, max_size=6))
def test_analysis_never_raises_on_generated_programs(statements):
    body = textwrap.indent("\n".join(statements), "    ")
    source = f"def f(rows):\n{body}\n"
    function = ast.parse(source).body[0]
    cfg = build_cfg(function)
    chains = DefUseChains(function, cfg)
    aliases = AliasSets(function)
    for definition in chains.definitions:
        chains.tainted_closure([definition])
        for use in chains.uses_of[definition]:
            chains.reaching_definitions(use)
    assert cfg.n_blocks >= 2
    assert aliases is not None
