"""Tests for the synthetic RBM generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.synth import (SyntheticModelSpec, generate_asymmetric,
                         generate_model, generate_symmetric, log_uniform)


class TestSpec:
    def test_invalid_sizes_rejected(self):
        with pytest.raises(ModelError):
            SyntheticModelSpec(0, 5)
        with pytest.raises(ModelError):
            SyntheticModelSpec(5, 0)

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ModelError):
            SyntheticModelSpec(4, 4, concentration_range=(1.0, 0.5))
        with pytest.raises(ModelError):
            SyntheticModelSpec(4, 4, rate_range=(0.0, 1.0))


class TestLogUniform:
    def test_range_respected(self):
        rng = np.random.default_rng(0)
        samples = log_uniform(rng, 1e-4, 1.0, 10_000)
        assert np.all(samples >= 1e-4) and np.all(samples < 1.0)

    def test_log_scale_spread(self):
        """Log-uniform sampling gives ~uniform density per decade."""
        rng = np.random.default_rng(1)
        samples = log_uniform(rng, 1e-4, 1.0, 40_000)
        decades = np.floor(np.log10(samples)).astype(int)
        counts = np.bincount(decades + 4, minlength=4)
        assert np.all(counts > 8_000)   # 4 decades, ~10k each


class TestGeneration:
    def test_exact_shape(self):
        model = generate_symmetric(16, seed=0)
        assert model.size == (16, 16)
        model = generate_asymmetric(8, 24, seed=0)
        assert model.size == (8, 24)

    def test_deterministic_per_seed(self):
        first = generate_symmetric(12, seed=3)
        second = generate_symmetric(12, seed=3)
        assert first.summary() == second.summary()
        assert np.allclose(first.initial_state(), second.initial_state())

    def test_different_seeds_differ(self):
        first = generate_symmetric(12, seed=3)
        second = generate_symmetric(12, seed=4)
        assert first.summary() != second.summary()

    def test_order_bounded_by_two(self):
        model = generate_symmetric(32, seed=5)
        assert model.max_order() <= 2

    def test_products_bounded_by_two(self):
        model = generate_symmetric(32, seed=6)
        for reaction in model.reactions:
            assert sum(reaction.products.values()) <= 2

    def test_every_species_participates_when_feasible(self):
        """With M >= N the backbone consumes every species, so no
        species can be inert."""
        for seed in range(5):
            model = generate_asymmetric(10, 24, seed=seed)
            touched = set()
            for reaction in model.reactions:
                touched.update(reaction.species_names())
            assert touched == set(model.species.names)

    def test_wide_models_cover_backbone_species(self):
        """With N > M at least the M backbone species participate."""
        model = generate_asymmetric(24, 10, seed=0)
        touched = set()
        for reaction in model.reactions:
            touched.update(reaction.species_names())
        assert {f"S{i}" for i in range(10)} <= touched

    def test_concentration_statistics(self):
        model = generate_symmetric(64, seed=7)
        state = model.initial_state()
        assert np.all(state >= 1e-4) and np.all(state < 1.0)

    def test_rate_statistics(self):
        model = generate_symmetric(64, seed=8)
        constants = model.rate_constants()
        assert np.all(constants >= 1e-6) and np.all(constants <= 10.0)

    def test_generated_model_is_simulable(self):
        from repro.core import simulate
        from repro.solvers import SolverOptions
        model = generate_symmetric(12, seed=1)
        result = simulate(model, (0, 1), np.array([0.0, 1.0]),
                          options=SolverOptions(max_steps=50_000))
        assert result.all_success

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(2, 20), m=st.integers(2, 30),
           seed=st.integers(0, 1000))
    def test_generator_properties(self, n, m, seed):
        """Any (N, M, seed) produces a structurally valid model of the
        requested shape with in-range parameters."""
        model = generate_model(SyntheticModelSpec(n, m, seed))
        assert model.size == (n, m)
        model.validate()
        assert model.max_order() <= 2
        assert np.all(model.rate_constants() > 0)
        if m >= n:
            touched = set()
            for reaction in model.reactions:
                touched.update(reaction.species_names())
            assert touched == set(model.species.names)
