"""Tests for PSO, the fuzzy system, and FST-PSO."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.optim import (FuzzySelfTuningPSO, FuzzyVariable,
                         ParticleSwarmOptimizer, PSOOptions, SugenoRule,
                         SugenoSystem, TriangularSet)


def sphere(positions):
    return np.sum(positions ** 2, axis=1)


def rosenbrock(positions):
    x, y = positions[:, 0], positions[:, 1]
    return (1 - x) ** 2 + 100 * (y - x ** 2) ** 2


BOUNDS_2D = np.array([[-5.0, 5.0], [-5.0, 5.0]])


class TestPSOOptions:
    def test_invalid_swarm_rejected(self):
        with pytest.raises(AnalysisError):
            PSOOptions(swarm_size=1)

    def test_invalid_velocity_fraction_rejected(self):
        with pytest.raises(AnalysisError):
            PSOOptions(velocity_fraction=0.0)


class TestPSO:
    def test_sphere_minimum_found(self):
        optimizer = ParticleSwarmOptimizer(
            PSOOptions(swarm_size=24, n_iterations=60, seed=0))
        result = optimizer.minimize(sphere, BOUNDS_2D)
        assert result.best_fitness < 1e-4
        assert np.allclose(result.best_position, 0.0, atol=0.05)

    def test_rosenbrock_progress(self):
        optimizer = ParticleSwarmOptimizer(
            PSOOptions(swarm_size=30, n_iterations=80, seed=1))
        result = optimizer.minimize(rosenbrock, BOUNDS_2D)
        assert result.best_fitness < 0.5

    def test_bounds_respected(self):
        optimizer = ParticleSwarmOptimizer(
            PSOOptions(swarm_size=16, n_iterations=20, seed=2))
        tight = np.array([[1.0, 2.0], [3.0, 4.0]])
        result = optimizer.minimize(sphere, tight)
        assert 1.0 <= result.best_position[0] <= 2.0
        assert 3.0 <= result.best_position[1] <= 4.0
        assert np.all(result.positions >= tight[:, 0] - 1e-12)
        assert np.all(result.positions <= tight[:, 1] + 1e-12)

    def test_deterministic_per_seed(self):
        options = PSOOptions(swarm_size=10, n_iterations=10, seed=5)
        first = ParticleSwarmOptimizer(options).minimize(sphere, BOUNDS_2D)
        second = ParticleSwarmOptimizer(options).minimize(sphere, BOUNDS_2D)
        assert np.array_equal(first.best_position, second.best_position)

    def test_evaluation_count(self):
        optimizer = ParticleSwarmOptimizer(
            PSOOptions(swarm_size=8, n_iterations=5, seed=0))
        result = optimizer.minimize(sphere, BOUNDS_2D)
        assert result.n_evaluations == 8 * 6

    def test_invalid_bounds_rejected(self):
        optimizer = ParticleSwarmOptimizer()
        with pytest.raises(AnalysisError):
            optimizer.minimize(sphere, np.array([[1.0, 1.0]]))

    def test_callback_invoked(self):
        seen = []
        optimizer = ParticleSwarmOptimizer(
            PSOOptions(swarm_size=6, n_iterations=4, seed=0))
        optimizer.minimize(sphere, BOUNDS_2D,
                           callback=lambda i, f: seen.append((i, f)))
        assert len(seen) == 4

    def test_infinite_fitness_handled(self):
        """Candidates scoring inf (failed simulations) do not crash."""

        def partial(positions):
            values = sphere(positions)
            values[positions[:, 0] > 0] = np.inf
            return values

        optimizer = ParticleSwarmOptimizer(
            PSOOptions(swarm_size=12, n_iterations=15, seed=3))
        result = optimizer.minimize(partial, BOUNDS_2D)
        assert np.isfinite(result.best_fitness)


class TestFuzzySystem:
    @pytest.fixture
    def simple_system(self):
        temperature = FuzzyVariable("temperature", (
            TriangularSet("cold", -np.inf, 0.0, 1.0),
            TriangularSet("hot", 0.0, 1.0, np.inf),
        ))
        rules = [
            SugenoRule((("temperature", "cold"),), "power", 1.0),
            SugenoRule((("temperature", "hot"),), "power", 0.0),
        ]
        return SugenoSystem([temperature], rules)

    def test_membership_triangle(self):
        fset = TriangularSet("mid", 0.0, 0.5, 1.0)
        values = fset.membership(np.array([0.0, 0.25, 0.5, 0.75, 1.0]))
        assert np.allclose(values, [0.0, 0.5, 1.0, 0.5, 0.0])

    def test_open_shoulders(self):
        fset = TriangularSet("low", -np.inf, 0.0, 1.0)
        values = fset.membership(np.array([-5.0, 0.0, 0.5, 2.0]))
        assert np.allclose(values, [1.0, 1.0, 0.5, 0.0])

    def test_interpolation_between_rules(self, simple_system):
        outputs = simple_system.evaluate(
            {"temperature": np.array([0.0, 0.5, 1.0])})
        assert np.allclose(outputs["power"], [1.0, 0.5, 0.0])

    def test_unknown_set_rejected(self):
        var = FuzzyVariable("x", (TriangularSet("a", 0, 1, 2),))
        with pytest.raises(AnalysisError):
            SugenoSystem([var], [SugenoRule((("x", "zzz"),), "out", 1.0)])

    def test_missing_input_rejected(self, simple_system):
        with pytest.raises(AnalysisError):
            simple_system.evaluate({"pressure": np.array([1.0])})


class TestFSTPSO:
    def test_sphere_minimum_found(self):
        optimizer = FuzzySelfTuningPSO(
            PSOOptions(swarm_size=24, n_iterations=60, seed=0))
        result = optimizer.minimize(sphere, BOUNDS_2D)
        assert result.best_fitness < 1e-3

    def test_coefficients_become_heterogeneous(self):
        optimizer = FuzzySelfTuningPSO(
            PSOOptions(swarm_size=16, n_iterations=10, seed=1))
        optimizer.minimize(sphere, BOUNDS_2D)
        # After observing the swarm, particles carry distinct settings.
        assert len(np.unique(optimizer._inertia_values)) > 1

    def test_coefficients_stay_in_published_ranges(self):
        from repro.optim import (COGNITIVE_RANGE, INERTIA_RANGE,
                                 SOCIAL_RANGE)
        optimizer = FuzzySelfTuningPSO(
            PSOOptions(swarm_size=16, n_iterations=15, seed=2))
        optimizer.minimize(rosenbrock, BOUNDS_2D)
        assert np.all(optimizer._inertia_values >= INERTIA_RANGE[0])
        assert np.all(optimizer._inertia_values <= INERTIA_RANGE[1])
        assert np.all(optimizer._cognitive_values >= COGNITIVE_RANGE[0])
        assert np.all(optimizer._cognitive_values <= COGNITIVE_RANGE[1])
        assert np.all(optimizer._social_values >= SOCIAL_RANGE[0])
        assert np.all(optimizer._social_values <= SOCIAL_RANGE[1])

    def test_not_worse_than_plain_pso_on_sphere(self):
        options = PSOOptions(swarm_size=20, n_iterations=40, seed=4)
        plain = ParticleSwarmOptimizer(options).minimize(sphere, BOUNDS_2D)
        fuzzy = FuzzySelfTuningPSO(options).minimize(sphere, BOUNDS_2D)
        assert fuzzy.best_fitness < max(plain.best_fitness * 100, 1e-2)
