"""Tests for the npz result persistence layer."""

import numpy as np
import pytest

from repro.core import simulate
from repro.errors import FormatError
from repro.io import load_result, save_result
from repro.models import decay_chain
from repro.solvers import SolverOptions


@pytest.fixture
def sample_result(chain_model):
    result = simulate(chain_model, (0, 2), np.linspace(0, 2, 5),
                      chain_model.batch(3),
                      options=SolverOptions(max_steps=50_000))
    return result


class TestRoundTrip:
    def test_exact_round_trip(self, sample_result, tmp_path):
        path = save_result(tmp_path / "run.npz", sample_result.raw,
                           sample_result.species_names)
        loaded, names = load_result(path)
        assert np.array_equal(loaded.t, sample_result.raw.t)
        assert np.array_equal(loaded.y, sample_result.raw.y)
        assert np.array_equal(loaded.status_codes,
                              sample_result.raw.status_codes)
        assert np.array_equal(loaded.n_steps, sample_result.raw.n_steps)
        assert loaded.elapsed_seconds == pytest.approx(
            sample_result.raw.elapsed_seconds)
        assert names == sample_result.species_names

    def test_suffix_added_automatically(self, sample_result, tmp_path):
        path = save_result(tmp_path / "run", sample_result.raw)
        assert path.suffix == ".npz"
        loaded, names = load_result(path)
        assert names == []
        assert loaded.batch_size == 3

    def test_methods_survive(self, sample_result, tmp_path):
        path = save_result(tmp_path / "run.npz", sample_result.raw)
        loaded, _ = load_result(path)
        assert loaded.methods() == sample_result.raw.methods()


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FormatError):
            load_result(tmp_path / "nope.npz")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not an archive")
        with pytest.raises(Exception):
            load_result(path)

    def test_wrong_version_rejected(self, sample_result, tmp_path):
        path = save_result(tmp_path / "run.npz", sample_result.raw)
        data = dict(np.load(path))
        data["format_version"] = np.array(99)
        np.savez_compressed(path, **data)
        with pytest.raises(FormatError):
            load_result(path)
