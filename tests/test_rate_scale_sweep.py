"""End-to-end tests of the P9-style rate-scale sweep.

The paper family's PSA-2D varies one logical parameter that rescales
thousands of derived kinetic constants at once (their P9). These tests
exercise that workflow on the metabolic model: one scale factor
multiplying the whole hexokinase-isoform reaction group.
"""

import numpy as np
import pytest

from repro.core import (ParameterRange, SweepTarget, endpoint_metric,
                        run_psa_1d, run_psa_2d)
from repro.models import metabolic_network
from repro.solvers import SolverOptions

OPTIONS = SolverOptions(max_steps=200_000)

#: Reactions 0-7 are the two hexokinase isoform mechanisms.
HK_REACTIONS = tuple(range(8))


@pytest.fixture(scope="module")
def model():
    return metabolic_network()


class TestRateScaleSweep:
    def test_scale_sweep_changes_flux_monotonically(self, model):
        """Scaling the whole HK group up pushes more carbon into the
        pathway: G6P production (and the R5P read-out) increase."""
        target = SweepTarget.rate_scale(model, HK_REACTIONS,
                                        ParameterRange(0.1, 4.0), "HKx")
        result = run_psa_1d(model, target, 6, (0, 5),
                            np.array([0.0, 5.0]),
                            metric=endpoint_metric(model, "R5P"),
                            options=OPTIONS)
        assert result.simulation.all_success
        assert result.target.label == "HKx"
        # More HK activity -> more R5P at the endpoint (monotone).
        assert np.all(np.diff(result.metric_values) > 0)

    def test_scale_times_one_equals_nominal(self, model):
        target = SweepTarget.rate_scale(model, HK_REACTIONS,
                                        ParameterRange(0.5, 1.5), "HKx")
        from repro.core.psa import build_sweep_batch
        batch = build_sweep_batch(model, [target], np.array([[1.0]]))
        assert np.allclose(batch.rate_constants[0],
                           model.rate_constants())

    def test_2d_scale_and_concentration_sweep(self, model):
        """The paper's PSA-2D shape: one initial concentration against
        one group-scaling parameter."""
        target_x = SweepTarget.initial_concentration(
            model, "GLC", ParameterRange(1.0, 10.0))
        target_y = SweepTarget.rate_scale(model, HK_REACTIONS,
                                          ParameterRange(0.2, 2.0), "HKx")
        result = run_psa_2d(model, target_x, target_y, 3, 3, (0, 3),
                            np.array([0.0, 3.0]),
                            metric=endpoint_metric(model, "R5P"),
                            options=OPTIONS)
        assert result.simulation.all_success
        assert result.metric_map.shape == (3, 3)
        # The map is monotone along both axes for this pathway.
        assert np.all(np.diff(result.metric_map, axis=0) > 0)
        assert np.all(np.diff(result.metric_map, axis=1) > 0)
        rendered = result.render_map()
        assert "HKx" in rendered
