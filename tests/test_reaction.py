"""Unit tests for reactions and the reaction-string parser."""

import pytest

from repro.errors import ModelError, ParseError
from repro.model import MichaelisMenten, Reaction, parse_reaction


class TestReaction:
    def test_basic_construction(self):
        reaction = Reaction({"A": 1, "B": 1}, {"C": 1}, 0.5)
        assert reaction.order == 2
        assert reaction.rate_constant == 0.5

    def test_order_counts_molecules_not_species(self):
        assert Reaction({"A": 2}, {"B": 1}, 1.0).order == 2
        assert Reaction({}, {"A": 1}, 1.0).order == 0

    def test_net_change(self):
        reaction = Reaction({"A": 2}, {"A": 3}, 1.0)
        assert reaction.net_change("A") == 1
        assert reaction.net_change("Z") == 0

    def test_species_names_union(self):
        reaction = Reaction({"A": 1}, {"B": 1, "C": 2}, 1.0)
        assert reaction.species_names() == {"A", "B", "C"}

    @pytest.mark.parametrize("rate", [0.0, -1.0])
    def test_nonpositive_rate_rejected(self, rate):
        with pytest.raises(ModelError):
            Reaction({"A": 1}, {"B": 1}, rate)

    def test_zero_coefficient_rejected(self):
        with pytest.raises(ModelError):
            Reaction({"A": 0}, {"B": 1}, 1.0)

    def test_fully_empty_reaction_rejected(self):
        with pytest.raises(ModelError):
            Reaction({}, {}, 1.0)

    def test_with_rate_constant_copies(self):
        original = Reaction({"A": 1}, {"B": 1}, 1.0)
        changed = original.with_rate_constant(2.0)
        assert changed.rate_constant == 2.0
        assert original.rate_constant == 1.0

    def test_michaelis_menten_requires_single_substrate(self):
        with pytest.raises(ModelError):
            Reaction({"A": 1, "B": 1}, {"C": 1}, 1.0,
                     law=MichaelisMenten(km=0.5))
        with pytest.raises(ModelError):
            Reaction({"A": 2}, {"C": 1}, 1.0, law=MichaelisMenten(km=0.5))

    def test_text_round_trips_through_parser(self):
        reaction = Reaction({"A": 2, "B": 1}, {"C": 1}, 0.75)
        parsed = parse_reaction(reaction.text())
        assert parsed.reactants == reaction.reactants
        assert parsed.products == reaction.products
        assert parsed.rate_constant == pytest.approx(0.75)


class TestParser:
    def test_simple_reaction(self):
        reaction = parse_reaction("A + B -> C @ 0.5")
        assert reaction.reactants == {"A": 1, "B": 1}
        assert reaction.products == {"C": 1}
        assert reaction.rate_constant == 0.5

    def test_coefficients(self):
        reaction = parse_reaction("2 A -> 3 B @ 1")
        assert reaction.reactants == {"A": 2}
        assert reaction.products == {"B": 3}

    def test_coefficient_with_star(self):
        reaction = parse_reaction("2*A -> B @ 1")
        assert reaction.reactants == {"A": 2}

    def test_repeated_species_accumulate(self):
        reaction = parse_reaction("A + A -> B @ 1")
        assert reaction.reactants == {"A": 2}

    @pytest.mark.parametrize("empty", ["0", "", "_"])
    def test_empty_side_tokens(self, empty):
        synthesis = parse_reaction(f"{empty} -> A @ 1")
        assert synthesis.reactants == {}
        degradation = parse_reaction(f"A -> {empty} @ 1")
        assert degradation.products == {}

    def test_explicit_rate_argument_overrides_suffix(self):
        reaction = parse_reaction("A -> B @ 1.0", rate_constant=3.0)
        assert reaction.rate_constant == 3.0

    def test_missing_rate_rejected(self):
        with pytest.raises(ParseError):
            parse_reaction("A -> B")

    def test_missing_arrow_rejected(self):
        with pytest.raises(ParseError):
            parse_reaction("A + B @ 1")

    def test_malformed_term_rejected(self):
        with pytest.raises(ParseError):
            parse_reaction("A + -> B @ 1")

    def test_malformed_rate_rejected(self):
        with pytest.raises(ParseError):
            parse_reaction("A -> B @ fast")

    def test_scientific_notation_rate(self):
        assert parse_reaction("A -> B @ 3e7").rate_constant == 3e7
