"""Tests for the stiffness router and the batch engine."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.gpu import (BatchSimulator, BatchedODEProblem, StiffnessRouter,
                       classify_batch)
from repro.model import ODESystem, ParameterizationBatch, perturbed_batch
from repro.models import decay_chain, robertson
from repro.solvers import SolverOptions


def make_problem(model, batch_size=4, seed=0):
    system = ODESystem.from_model(model)
    batch = perturbed_batch(model.nominal_parameterization(), batch_size,
                            np.random.default_rng(seed))
    return BatchedODEProblem(system, batch)


class TestClassification:
    def test_mixed_batch_split(self):
        """Stiff and benign parameterizations of one model separate."""
        model = robertson()
        nominal = model.nominal_parameterization()
        soft = nominal.with_rate_constant(1, 1.0).with_rate_constant(2, 1.0)
        batch = ParameterizationBatch.from_parameterizations(
            [nominal, soft])
        # Start with some B so the Jacobian sees the fast reactions.
        states = batch.initial_states.copy()
        states[:, 1] = 1e-3
        problem = BatchedODEProblem(ODESystem.from_model(model),
                                    ParameterizationBatch(
                                        batch.rate_constants, states))
        decision = classify_batch(problem, 0.0, threshold=500.0)
        assert decision.stiff_mask.tolist() == [True, False]
        assert decision.n_stiff == 1

    def test_threshold_is_respected(self):
        problem = make_problem(decay_chain(3))
        decision = classify_batch(problem, 0.0, threshold=1e-9)
        assert decision.n_stiff == problem.batch_size


class TestStaticPrefilter:
    def test_low_risk_batch_skips_probe(self):
        """Rate spread under STIFFNESS_SAFE_DECADES: no power iteration."""
        problem = make_problem(decay_chain(3), 4)
        decision = classify_batch(problem, 0.0, threshold=500.0,
                                  static_risk=0.5)
        assert decision.probe_skipped
        assert decision.n_stiff == 0
        assert np.all(decision.spectral_radii == 0.0)

    def test_high_risk_batch_still_probed(self):
        problem = make_problem(decay_chain(3), 4)
        decision = classify_batch(problem, 0.0, threshold=500.0,
                                  static_risk=8.0)
        assert not decision.probe_skipped
        assert np.all(decision.spectral_radii > 0.0)

    def test_router_applies_prefilter_automatically(self):
        problem = make_problem(decay_chain(3), 4)
        result, decision = StiffnessRouter().solve(
            problem, (0, 2), np.linspace(0, 2, 5))
        assert decision.probe_skipped
        assert result.all_success
        assert set(result.methods()) == {"dopri5"}

    def test_prefilter_never_engages_on_wide_spread(self):
        problem = make_problem(robertson(), 2)
        _, decision = StiffnessRouter(
            SolverOptions(max_steps=100_000)).solve(
                problem, (0, 1e3), np.array([0.0, 1e3]))
        assert not decision.probe_skipped

    def test_prefilter_can_be_disabled(self):
        problem = make_problem(decay_chain(3), 4)
        _, decision = StiffnessRouter(use_static_prefilter=False).solve(
            problem, (0, 2), np.linspace(0, 2, 5))
        assert not decision.probe_skipped

    def test_prefilter_requires_retry_safety_net(self):
        """Without the Radau retry the skip is not correctness-safe, so
        the router must keep probing."""
        problem = make_problem(decay_chain(3), 4)
        _, decision = StiffnessRouter(
            retry_failed_with_radau=False).solve(
                problem, (0, 2), np.linspace(0, 2, 5))
        assert not decision.probe_skipped

    def test_prefilter_results_match_probed_results(self):
        problem = make_problem(decay_chain(3), 6)
        grid = np.linspace(0, 2, 5)
        fast, _ = StiffnessRouter().solve(problem, (0, 2), grid)
        slow, _ = StiffnessRouter(use_static_prefilter=False).solve(
            problem, (0, 2), grid)
        assert np.allclose(fast.y, slow.y, rtol=1e-12, atol=1e-15)


class TestRouter:
    def test_stiff_batch_lands_on_radau(self):
        problem = make_problem(robertson(), 4)
        router = StiffnessRouter(SolverOptions(max_steps=100_000))
        result, decision = router.solve(problem, (0, 1e3),
                                        np.array([0.0, 1e3]))
        assert result.all_success
        assert set(result.methods()) == {"radau5"}

    def test_nonstiff_batch_lands_on_dopri5(self):
        problem = make_problem(decay_chain(3), 4)
        router = StiffnessRouter()
        result, decision = router.solve(problem, (0, 2),
                                        np.linspace(0, 2, 5))
        assert result.all_success
        assert set(result.methods()) == {"dopri5"}
        assert decision.n_stiff == 0

    def test_retry_disabled_leaves_failures(self):
        problem = make_problem(robertson(), 2)
        # Undetectable at t=0 (B=C=0), budget too small for explicit.
        router = StiffnessRouter(SolverOptions(max_steps=300),
                                 retry_failed_with_radau=False)
        result, _ = router.solve(problem, (0, 1e3), np.array([0.0, 1e3]))
        assert not result.all_success


class TestEngine:
    def test_auto_method_on_developing_stiffness(self):
        """Robertson is non-stiff at t=0 but the engine still solves it
        (stiffness abort + Radau re-execution)."""
        model = robertson()
        engine = BatchSimulator(model, SolverOptions(max_steps=100_000))
        batch = perturbed_batch(model.nominal_parameterization(), 8,
                                np.random.default_rng(1))
        result = engine.simulate((0, 1e4),
                                 np.array([0.0, 1.0, 1e2, 1e4]), batch)
        assert result.all_success
        assert set(result.methods()) == {"radau5"}

    def test_launch_chunking(self):
        model = decay_chain(2)
        engine = BatchSimulator(model, max_batch_per_launch=3)
        batch = model.batch(10)
        result = engine.simulate((0, 1), np.array([0.0, 1.0]), batch)
        assert result.batch_size == 10
        assert result.all_success
        assert engine.last_report.n_launches == 4

    def test_chunked_results_identical_to_single_launch(self):
        model = decay_chain(3)
        batch = perturbed_batch(model.nominal_parameterization(), 9,
                                np.random.default_rng(2))
        grid = np.linspace(0, 2, 5)
        single = BatchSimulator(model, max_batch_per_launch=512).simulate(
            (0, 2), grid, batch)
        chunked = BatchSimulator(model, max_batch_per_launch=2).simulate(
            (0, 2), grid, batch)
        assert np.allclose(single.y, chunked.y, rtol=1e-12, atol=1e-15)

    def test_forced_methods(self):
        model = decay_chain(2)
        batch = model.batch(3)
        grid = np.array([0.0, 1.0])
        explicit = BatchSimulator(model, method="dopri5").simulate(
            (0, 1), grid, batch)
        implicit = BatchSimulator(model, method="radau5").simulate(
            (0, 1), grid, batch)
        assert set(explicit.methods()) == {"dopri5"}
        assert set(implicit.methods()) == {"radau5"}
        assert np.allclose(explicit.y, implicit.y, rtol=1e-5, atol=1e-8)

    def test_unknown_method_rejected(self):
        with pytest.raises(SolverError):
            BatchSimulator(decay_chain(2), method="cranknicolson")

    def test_report_contents(self):
        model = decay_chain(2)
        engine = BatchSimulator(model)
        engine.simulate((0, 1), np.array([0.0, 1.0]), model.batch(4))
        report = engine.last_report
        assert report.elapsed_seconds > 0
        assert report.n_launches == 1
        assert len(report.routing) == 1
        assert report.modeled_device_time is not None
        assert report.modeled_device_time.total_seconds > 0

    def test_single_parameterization_accepted(self):
        model = decay_chain(2)
        engine = BatchSimulator(model)
        result = engine.simulate((0, 1), np.array([0.0, 1.0]),
                                 model.nominal_parameterization())
        assert result.batch_size == 1

    @pytest.mark.parametrize("policy", ["hybrid", "coarse", "fine"])
    def test_policies_give_same_dynamics(self, policy):
        model = decay_chain(3)
        batch = perturbed_batch(model.nominal_parameterization(), 4,
                                np.random.default_rng(3))
        grid = np.linspace(0, 2, 5)
        result = BatchSimulator(model, policy=policy).simulate(
            (0, 2), grid, batch)
        reference = BatchSimulator(model, policy="hybrid").simulate(
            (0, 2), grid, batch)
        assert np.allclose(result.y, reference.y, rtol=1e-12, atol=1e-15)
