"""Tests for the unified simulate() facade and sequential engines."""

import numpy as np
import pytest

from repro.core import SEQUENTIAL_ENGINES, SequentialSimulator, simulate
from repro.errors import AnalysisError
from repro.model import perturbed_batch
from repro.models import decay_chain, robertson


class TestFacade:
    def test_default_single_nominal_simulation(self, chain_model):
        result = simulate(chain_model, (0, 2), np.linspace(0, 2, 5))
        assert result.batch_size == 1
        assert result.all_success
        assert result.engine == "batched"

    def test_species_accessor(self, chain_model):
        grid = np.linspace(0, 2, 5)
        result = simulate(chain_model, (0, 2), grid)
        x0 = result.species("X0")
        assert x0.shape == (1, 5)
        assert x0[0, 0] == pytest.approx(10.0)
        with pytest.raises(AnalysisError):
            result.species("missing")

    def test_unknown_engine_rejected(self, chain_model):
        with pytest.raises(AnalysisError):
            simulate(chain_model, (0, 1), engine="quantum")

    def test_trajectory_and_final_states(self, chain_model):
        grid = np.linspace(0, 2, 5)
        result = simulate(chain_model, (0, 2), grid,
                          chain_model.batch(3))
        assert result.trajectory(1).shape == (5, chain_model.n_species)
        assert result.final_states().shape == (3, chain_model.n_species)


@pytest.mark.parametrize("engine", SEQUENTIAL_ENGINES)
class TestSequentialEngines:
    def test_engine_agrees_with_batched(self, engine):
        model = decay_chain(3)
        grid = np.linspace(0, 3, 7)
        batch = perturbed_batch(model.nominal_parameterization(), 3,
                                np.random.default_rng(0))
        batched = simulate(model, (0, 3), grid, batch, engine="batched")
        sequential = simulate(model, (0, 3), grid, batch, engine=engine)
        assert sequential.all_success
        assert np.allclose(sequential.y, batched.y, rtol=1e-4, atol=1e-7)

    def test_method_code_matches_engine(self, engine):
        model = decay_chain(2)
        result = simulate(model, (0, 1), np.array([0.0, 1.0]),
                          engine=engine)
        assert result.raw.methods()[0] == engine


class TestTimeBudget:
    def test_budget_cuts_off_batch(self):
        model = robertson()
        batch = perturbed_batch(model.nominal_parameterization(), 64,
                                np.random.default_rng(1))
        simulator = SequentialSimulator(model)
        result = simulator.simulate(
            (0, 1e4), np.array([0.0, 1e4]), batch,
            time_budget_seconds=0.05)
        statuses = result.statuses()
        assert statuses.count("failed") > 0
        assert result.elapsed_seconds < 5.0

    def test_unknown_sequential_engine_rejected(self):
        with pytest.raises(AnalysisError):
            SequentialSimulator(decay_chain(2), engine="magic")
