"""Tests for the stochastic engines behind the simulate() facade."""

import numpy as np
import pytest

from repro.core import (ParameterRange, SweepTarget, endpoint_metric,
                        run_psa_1d, simulate)
from repro.errors import AnalysisError
from repro.models import decay_chain


class TestFacade:
    def test_ssa_returns_concentration_units(self):
        model = decay_chain(1, rate=1.0, initial=10.0)
        result = simulate(model, (0, 1), np.array([0.0, 1.0]),
                          engine="ssa", volume=500.0, seed=0,
                          n_replicates=10)
        assert result.engine == "ssa"
        assert result.batch_size == 10
        # Initial concentration round-trips through counts.
        assert np.allclose(result.y[:, 0, 0], 10.0)
        assert result.raw.methods()[0] == "ssa"

    def test_tau_leaping_engine(self):
        model = decay_chain(1, rate=1.0, initial=10.0)
        result = simulate(model, (0, 1), np.array([0.0, 1.0]),
                          engine="tau-leaping", volume=5000.0, seed=0,
                          n_replicates=4)
        assert result.all_success
        assert result.raw.methods()[0] == "tau-leaping"

    def test_ensemble_mean_near_ode(self):
        model = decay_chain(2, rate=1.0, initial=10.0)
        grid = np.linspace(0, 2, 5)
        stochastic = simulate(model, (0, 2), grid, engine="ssa",
                              volume=500.0, seed=1, n_replicates=60)
        deterministic = simulate(model, (0, 2), grid)
        error = np.max(np.abs(stochastic.y.mean(axis=0)
                              - deterministic.y[0])
                       / (np.abs(deterministic.y[0]) + 0.1))
        assert error < 0.05

    def test_event_budget_maps_to_max_steps_status(self):
        model = decay_chain(1, rate=1.0, initial=10.0)
        result = simulate(model, (0, 10), np.array([0.0, 10.0]),
                          engine="ssa", volume=50_000.0, seed=0,
                          max_events=5)
        assert set(result.statuses()) == {"max_steps"}

    def test_stochastic_psa(self):
        """Parameter sweeps run unchanged on the stochastic engine."""
        model = decay_chain(1, rate=1.0, initial=10.0)
        target = SweepTarget.rate_constant(model, 0,
                                           ParameterRange(0.5, 2.0))
        psa = run_psa_1d(model, target, 5, (0, 2),
                         np.array([0.0, 2.0]),
                         metric=endpoint_metric(model, "X0"),
                         engine="ssa", volume=2000.0, seed=2)
        assert psa.simulation.all_success
        # Faster decay leaves less X0 (up to noise, monotone at this
        # volume).
        assert psa.metric_values[0] > psa.metric_values[-1]

    def test_unknown_engine_still_rejected(self):
        with pytest.raises(AnalysisError):
            simulate(decay_chain(1), (0, 1), engine="langevin")
