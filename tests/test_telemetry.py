"""Telemetry subsystem: tracer, metrics, exporters, engine/campaign
integration, and crash/resume trace continuity."""

import json

import numpy as np
import pytest

from repro.core import run_psa_1d
from repro.core.psa import ParameterRange, SweepTarget
from repro.errors import CampaignInterrupted, TelemetryError
from repro.gpu import BatchSimulator
from repro.gpu.engine import EngineReport
from repro.guards import MemoryGovernor
from repro.model import perturbed_batch
from repro.models import lotka_volterra
from repro.resilience import (CampaignConfig, FaultPlan,
                              default_retry_policy, run_campaign)
from repro.telemetry import (CATEGORIES, Histogram, JsonlSink,
                             MetricsRegistry, NULL_TRACER, Tracer,
                             as_tracer, nesting_allowed, read_trace_jsonl,
                             render_summary, to_chrome_trace,
                             validate_trace, write_chrome_trace)
from repro.telemetry.clock import FakeClock

T_EVAL = np.linspace(0.0, 2.0, 5)


def lv_batch(model, size=8, seed=7):
    rng = np.random.default_rng(seed)
    return perturbed_batch(model.nominal_parameterization(), size, rng)


class TestTracer:
    def test_structural_ids_and_durations(self):
        tracer = Tracer(clock=FakeClock())
        campaign = tracer.start("campaign", "campaign")
        chunk = tracer.start("chunk-0", "chunk", parent=campaign)
        tracer.end(chunk)
        tracer.end(campaign)
        ids = [span.span_id for span in tracer.spans]
        assert ids == ["campaign/chunk-0", "campaign"]
        # FakeClock ticks once per read: start/start/end/end.
        assert tracer.spans[0].duration == pytest.approx(1.0)
        assert tracer.spans[1].duration == pytest.approx(3.0)

    def test_sibling_names_are_deduplicated(self):
        tracer = Tracer(clock=FakeClock())
        root = tracer.start("launch-0", "launch")
        first = tracer.start("compile", "phase", parent=root)
        tracer.end(first)
        second = tracer.start("compile", "phase", parent=root)
        tracer.end(second)
        tracer.end(root)
        ids = [span.span_id for span in tracer.spans]
        assert ids == ["launch-0/compile", "launch-0/compile#2",
                       "launch-0"]

    def test_context_manager_records_attrs(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("merge", "phase", launches=3):
            pass
        (span,) = tracer.spans
        assert span.name == "merge"
        assert span.attrs == {"launches": 3}

    def test_bad_nesting_rejected(self):
        tracer = Tracer(clock=FakeClock())
        launch = tracer.start("launch-0", "launch")
        with pytest.raises(TelemetryError):
            tracer.start("campaign", "campaign", parent=launch)

    def test_phase_in_phase_allowed(self):
        assert nesting_allowed("phase", "phase")
        assert not nesting_allowed("chunk", "launch")
        assert sorted(CATEGORIES) == ["campaign", "chunk", "job", "launch",
                                      "phase", "rung", "service", "worker"]
        assert nesting_allowed("worker", "campaign")
        assert nesting_allowed("chunk", "worker")
        assert not nesting_allowed("worker", "chunk")
        assert nesting_allowed("job", "service")
        assert nesting_allowed("campaign", "job")
        assert not nesting_allowed("service", "job")

    def test_unknown_category_rejected(self):
        with pytest.raises(TelemetryError):
            Tracer(clock=FakeClock()).start("x", "banana")

    def test_double_end_rejected(self):
        tracer = Tracer(clock=FakeClock())
        handle = tracer.start("chunk-0", "chunk")
        tracer.end(handle)
        with pytest.raises(TelemetryError):
            tracer.end(handle)

    def test_null_tracer_is_inert(self):
        handle = NULL_TRACER.start("campaign", "campaign")
        NULL_TRACER.end(handle)
        with NULL_TRACER.span("merge", "phase"):
            pass
        NULL_TRACER.flush()
        assert not NULL_TRACER.enabled

    def test_as_tracer_dispatch(self, tmp_path):
        assert as_tracer(None) is NULL_TRACER
        tracer = Tracer()
        assert as_tracer(tracer) is tracer
        assert isinstance(as_tracer(tmp_path / "t.jsonl"), Tracer)
        with pytest.raises(TelemetryError):
            as_tracer(42)

    def test_jsonl_sink_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=JsonlSink(path), clock=FakeClock())
        with tracer.span("campaign", "campaign", model="lv"):
            pass
        tracer.flush()
        (span,) = read_trace_jsonl(path)
        assert span.span_id == "campaign"
        assert span.attrs == {"model": "lv"}

    def test_malformed_trace_file_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "x"}\nnot json\n')
        with pytest.raises(TelemetryError):
            read_trace_jsonl(path)


class TestValidateAndExport:
    def spans(self):
        tracer = Tracer(clock=FakeClock())
        root = tracer.start("campaign", "campaign")
        chunk = tracer.start("chunk-0", "chunk", parent=root)
        launch = tracer.start("launch-0", "launch", parent=chunk)
        tracer.end(launch)
        tracer.end(chunk)
        tracer.end(root)
        return tracer.spans

    def test_valid_trace_passes_containment(self):
        assert validate_trace(self.spans(), check_containment=True) == []

    def test_duplicate_and_orphan_detected(self):
        spans = self.spans()
        problems = validate_trace(spans + [spans[0]])
        assert any("duplicate" in p for p in problems)
        orphan = spans[0]
        orphan = type(orphan)(orphan.name, "lost", "no-such-parent",
                              orphan.category, orphan.t_start,
                              orphan.duration, {})
        assert any("missing parent" in p
                   for p in validate_trace(spans + [orphan]))

    def test_rank_violation_detected(self):
        tracer = Tracer(clock=FakeClock())
        chunk = tracer.start("chunk-0", "chunk")
        tracer.end(chunk)
        bad = type(tracer.spans[0])("campaign", "chunk-0/campaign",
                                    "chunk-0", "campaign", 0.0, 1.0, {})
        problems = validate_trace(tracer.spans + [bad])
        assert any("nest" in p for p in problems)

    def test_chrome_trace_shape(self, tmp_path):
        document = to_chrome_trace(self.spans())
        events = document["traceEvents"]
        assert len(events) == 3
        assert {event["ph"] for event in events} == {"X"}
        assert min(event["ts"] for event in events) == 0
        out = tmp_path / "trace.json"
        write_chrome_trace(self.spans(), out)
        assert json.loads(out.read_text())["traceEvents"]

    def test_render_summary_mentions_categories(self):
        text = render_summary(self.spans())
        assert "campaign" in text and "chunk" in text

    def outcome_spans(self):
        tracer = Tracer(clock=FakeClock())
        service = tracer.start("service", "service")
        for index, state in enumerate(["completed", "quarantined"]):
            job = tracer.start(f"job-{index}", "job", parent=service)
            campaign = tracer.start("campaign", "campaign", parent=job)
            tracer.end(campaign, degraded=index == 1,
                       deadline_hit=False, cancelled=False,
                       quarantined=3 * index)
            tracer.end(job, state=state)
        tracer.end(service)
        return tracer.spans

    def test_summarize_outcomes(self):
        from repro.telemetry import summarize_outcomes

        spans = self.outcome_spans()
        assert validate_trace(spans) == []
        outcome = summarize_outcomes(spans)
        assert outcome["campaigns"] == 2
        assert outcome["degraded"] == 1
        assert outcome["cancelled"] == 0
        assert outcome["quarantined_rows"] == 3
        assert outcome["job_states"] == {"completed": 1,
                                         "quarantined": 1}

    def test_render_summary_surfaces_outcomes(self):
        text = render_summary(self.outcome_spans())
        assert "outcomes:" in text
        assert "1 degraded" in text
        assert "jobs completed: 1" in text
        assert "jobs quarantined: 1" in text
        # a trace with no campaign/job spans has no outcomes section
        assert "outcomes:" not in render_summary(self.spans()[:1])


class TestMetrics:
    def test_counters_gauges_histograms(self):
        metrics = MetricsRegistry()
        metrics.count("steps.accepted", 3)
        metrics.count("steps.accepted")
        metrics.gauge("budget.doubles", 1024.0)
        metrics.observe("launch.rows", 8)
        assert metrics.counters["steps.accepted"] == 4
        assert bool(metrics)
        assert not bool(MetricsRegistry())

    def test_kind_collision_rejected(self):
        metrics = MetricsRegistry()
        metrics.count("x")
        with pytest.raises(TelemetryError):
            metrics.observe("x", 1.0)

    def test_merge_and_round_trip(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.count("a", 2)
        left.observe("h", 3.0)
        right.count("a", 5)
        right.observe("h", 9.0)
        left.merge(right)
        restored = MetricsRegistry.from_dict(left.to_dict())
        assert restored.counters["a"] == 7
        assert restored.histograms["h"].n == 2
        assert restored.histograms["h"].total == pytest.approx(12.0)
        assert restored.to_dict() == left.to_dict()

    def test_histogram_buckets_and_empty(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 1000.0):
            histogram.observe(value)
        restored = Histogram.from_dict(histogram.to_dict())
        assert restored.n == 3
        assert restored.maximum == 1000.0
        assert Histogram().to_dict()["min"] is None


class TestEngineIntegration:
    def test_launch_rung_phase_hierarchy(self):
        model = lotka_volterra()
        tracer = Tracer()
        simulator = BatchSimulator(model, method="dopri5",
                                   max_batch_per_launch=3, tracer=tracer)
        result = simulator.simulate((0.0, 2.0), T_EVAL, lv_batch(model))
        assert result.all_success
        assert validate_trace(tracer.spans, check_containment=True) == []
        categories = {span.category for span in tracer.spans}
        assert categories == {"launch", "rung", "phase"}
        phases = {span.name for span in tracer.spans
                  if span.category == "phase"}
        assert {"compile", "step-loop", "dense-output",
                "merge"} <= phases
        launches = [span for span in tracer.spans
                    if span.category == "launch"]
        assert len(launches) == 3  # 8 rows / 3 per launch

    def test_metrics_populated_on_report(self):
        model = lotka_volterra()
        simulator = BatchSimulator(model, method="dopri5",
                                   max_batch_per_launch=3)
        simulator.simulate((0.0, 2.0), T_EVAL, lv_batch(model))
        metrics = simulator.last_report.metrics
        assert metrics.counters["steps.accepted"] > 0
        assert metrics.counters["kernel.rhs_launches"] > 0
        assert metrics.histograms["launch.rows"].n == 3
        assert metrics.histograms["launch.working_set_doubles"].total > 0

    def test_retry_rungs_traced_and_counted(self):
        model = lotka_volterra()
        tracer = Tracer()
        simulator = BatchSimulator(
            model, method="dopri5", tracer=tracer,
            retry_policy=default_retry_policy(),
            fault_plan=FaultPlan(fail_launches=(0,)))
        simulator.simulate((0.0, 2.0), T_EVAL, lv_batch(model))
        rungs = sorted(span.name for span in tracer.spans
                       if span.category == "rung")
        assert rungs[0] == "rung-0" and len(rungs) > 1
        metrics = simulator.last_report.metrics
        assert metrics.counters["retry.retried_rows"] == 8
        assert metrics.counters["retry.rung1.rows"] == 8
        assert metrics.counters["retry.recovered_rows"] == 8

    def test_report_round_trip_with_quarantine_and_memory(self):
        model = lotka_volterra()
        simulator = BatchSimulator(
            model, method="auto",
            retry_policy=default_retry_policy(),
            memory_governor=MemoryGovernor(),
            fault_plan=FaultPlan(nan_rows=(2,), oom_launches=(0,),
                                 oom_fit_rows=3))
        simulator.simulate((0.0, 2.0), T_EVAL, lv_batch(model))
        report = simulator.last_report
        assert len(report.quarantine) == 1
        assert report.memory_events
        exported = json.loads(report.to_json())
        # the derived headline count travels in the dict...
        assert exported["n_quarantined"] == 1
        restored = EngineReport.from_dict(exported)
        assert restored.n_launches == report.n_launches
        assert restored.quarantine.rows().tolist() == [2]
        # ...and the round-trip re-derives it identically
        assert json.loads(restored.to_json())["n_quarantined"] == 1
        assert restored.memory_events == report.memory_events
        assert restored.guard_log.n_clamped_steps == \
            report.guard_log.n_clamped_steps
        assert restored.metrics.to_dict() == report.metrics.to_dict()
        assert restored.counters == report.counters
        assert np.array_equal(restored.routing[0].stiff_mask,
                              report.routing[0].stiff_mask)


class TestCampaignTelemetry:
    def test_campaign_trace_and_metrics(self, tmp_path):
        model = lotka_volterra()
        trace_path = tmp_path / "trace.jsonl"
        campaign = run_campaign(
            model, (0.0, 2.0), T_EVAL, lv_batch(model),
            config=CampaignConfig(chunk_size=3),
            telemetry=trace_path)
        assert not campaign.incomplete
        spans = read_trace_jsonl(trace_path)
        assert validate_trace(spans, check_containment=True) == []
        roots = [span for span in spans if span.category == "campaign"]
        assert [root.span_id for root in roots] == ["campaign"]
        chunks = sorted(span.span_id for span in spans
                        if span.category == "chunk")
        assert chunks == ["campaign/chunk-0", "campaign/chunk-1",
                          "campaign/chunk-2"]
        assert campaign.metrics.counters["campaign.chunks.executed"] == 3
        assert campaign.metrics.counters["steps.accepted"] > 0

    def test_crash_resume_yields_one_coherent_trace(self, tmp_path):
        model = lotka_volterra()
        trace_path = tmp_path / "trace.jsonl"
        config = CampaignConfig(chunk_size=3,
                                checkpoint_path=tmp_path / "journal.json")
        with pytest.raises(CampaignInterrupted):
            run_campaign(model, (0.0, 2.0), T_EVAL, lv_batch(model),
                         config=config,
                         fault_plan=FaultPlan(crash_after_launches=2),
                         telemetry=trace_path)
        # The crashed run journaled (and flushed spans for) two chunks
        # but never wrote its campaign root.
        partial = read_trace_jsonl(trace_path)
        assert {span.category for span in partial} >= {"chunk"}
        assert [s for s in partial if s.category == "campaign"] == []

        resumed = run_campaign(model, (0.0, 2.0), T_EVAL,
                               lv_batch(model), config=config,
                               telemetry=trace_path)
        assert not resumed.incomplete
        assert resumed.resumed_chunks == 2
        spans = read_trace_jsonl(trace_path)
        # One well-formed tree: no duplicate ids, no orphans, exactly
        # one campaign root adopting the pre-crash chunk spans.
        assert validate_trace(spans) == []
        roots = [span for span in spans if span.category == "campaign"]
        assert [root.span_id for root in roots] == ["campaign"]
        chunk_ids = sorted(span.span_id for span in spans
                           if span.category == "chunk")
        assert chunk_ids == ["campaign/chunk-0", "campaign/chunk-1",
                             "campaign/chunk-2"]
        # Metrics rehydrate from journaled payloads: the resumed
        # chunks' step counts are still aggregated.
        assert resumed.metrics.counters["campaign.chunks.resumed"] == 2
        assert resumed.metrics.counters["campaign.chunks.executed"] == 1
        assert resumed.metrics.counters["steps.accepted"] > 0

    def test_psa_telemetry_knob(self, tmp_path):
        model = lotka_volterra()
        trace_path = tmp_path / "psa.jsonl"
        target = SweepTarget.rate_constant(model, 0,
                                           ParameterRange(0.5, 1.5))
        run_psa_1d(model, target, 6, (0.0, 2.0), T_EVAL,
                   telemetry=trace_path)
        spans = read_trace_jsonl(trace_path)
        assert validate_trace(spans) == []
        assert {span.category for span in spans} >= {"launch", "phase"}

    def test_rerun_of_completed_campaign_is_trace_idempotent(
            self, tmp_path):
        model = lotka_volterra()
        trace_path = tmp_path / "trace.jsonl"
        config = CampaignConfig(chunk_size=3,
                                checkpoint_path=tmp_path / "journal.json")
        run_campaign(model, (0.0, 2.0), T_EVAL, lv_batch(model),
                     config=config, telemetry=trace_path)
        before = trace_path.read_text()
        rerun = run_campaign(model, (0.0, 2.0), T_EVAL, lv_batch(model),
                             config=config, telemetry=trace_path)
        assert rerun.resumed_chunks == 3
        # The rerun executed nothing, so it appended nothing: still one
        # campaign root, no duplicate ids.
        assert trace_path.read_text() == before
        assert validate_trace(read_trace_jsonl(trace_path)) == []
