"""Unit tests for the ReactionBasedModel container."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model import (MichaelisMenten, ReactionBasedModel, Reaction)


class TestConstruction:
    def test_add_reaction_autoregisters_species(self):
        model = ReactionBasedModel("auto")
        model.add("A -> B @ 1")
        assert model.n_species == 2
        assert model.species.index_of("B") == 1
        assert model.species[1].initial_concentration == 0.0

    def test_explicit_species_keep_concentration(self):
        model = ReactionBasedModel("explicit")
        model.add_species("A", 5.0)
        model.add("A -> B @ 1")
        assert model.initial_state()[0] == 5.0

    def test_size_property(self, toy_model):
        assert toy_model.size == (4, 5)

    def test_max_order(self, toy_model):
        assert toy_model.max_order() == 2

    def test_is_mass_action(self, toy_model):
        assert toy_model.is_mass_action()
        toy_model.add("C -> D", rate_constant=1.0,
                      law=MichaelisMenten(km=0.5))
        assert not toy_model.is_mass_action()

    def test_summary_lists_reactions(self, toy_model):
        summary = toy_model.summary()
        assert "N=4" in summary and "M=5" in summary
        assert summary.count("->") == toy_model.n_reactions


class TestValidation:
    def test_empty_model_rejected(self):
        with pytest.raises(ModelError):
            ReactionBasedModel("empty").validate()

    def test_model_without_reactions_rejected(self):
        model = ReactionBasedModel("no-reactions")
        model.add_species("A", 1.0)
        with pytest.raises(ModelError):
            model.validate()

    def test_matrices_require_valid_model(self):
        model = ReactionBasedModel("bad")
        model.add_species("A", 1.0)
        with pytest.raises(ModelError):
            _ = model.matrices


class TestDerivedState:
    def test_matrices_cached_and_invalidated(self, toy_model):
        first = toy_model.matrices
        assert toy_model.matrices is first
        toy_model.add("D -> C @ 1.0")
        second = toy_model.matrices
        assert second is not first
        assert second.n_reactions == first.n_reactions + 1

    def test_nominal_parameterization_matches_definition(self, toy_model):
        nominal = toy_model.nominal_parameterization()
        assert np.allclose(nominal.rate_constants,
                           [0.5, 0.2, 0.1, 0.01, 0.3])
        assert np.allclose(nominal.initial_state, [1.0, 2.0, 0.0, 0.0])

    def test_batch_replicates_nominal(self, toy_model):
        batch = toy_model.batch(3)
        assert batch.size == 3
        assert np.allclose(batch.rate_constants,
                           toy_model.rate_constants()[None, :])

    def test_check_parameterization_shape_mismatch(self, toy_model,
                                                   chain_model):
        wrong = chain_model.nominal_parameterization()
        with pytest.raises(ModelError):
            toy_model.check_parameterization(wrong)

    def test_conservation_basis_shape(self, toy_model):
        laws = toy_model.conservation_law_basis()
        assert laws.shape[1] == toy_model.n_species
