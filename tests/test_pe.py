"""Tests for parameter estimation."""

import numpy as np
import pytest

from repro.core import (FreeParameter, ParameterEstimation,
                        synthetic_target)
from repro.errors import AnalysisError
from repro.models import OBSERVED_SPECIES, TRUE_CONSTANTS, cascade
from repro.solvers import SolverOptions


@pytest.fixture(scope="module")
def target():
    truth = cascade(TRUE_CONSTANTS)
    return synthetic_target(truth, OBSERVED_SPECIES, (0, 8), 21)


class TestSetup:
    def test_free_parameter_validation(self):
        with pytest.raises(AnalysisError):
            FreeParameter(0, 1.0, 0.5)
        with pytest.raises(AnalysisError):
            FreeParameter(0, 0.0, 1.0)

    def test_log_bounds(self):
        free = FreeParameter(0, 1e-2, 1e2)
        assert free.log_bounds == (-2.0, 2.0)

    def test_out_of_range_index_rejected(self, target):
        times, dynamics = target
        with pytest.raises(AnalysisError):
            ParameterEstimation(cascade(), [FreeParameter(99, 0.1, 10)],
                                OBSERVED_SPECIES, times, dynamics)

    def test_target_shape_mismatch_rejected(self, target):
        times, dynamics = target
        with pytest.raises(AnalysisError):
            ParameterEstimation(cascade(), [FreeParameter(0, 0.1, 10)],
                                OBSERVED_SPECIES, times, dynamics[:, :1])

    def test_no_free_parameters_rejected(self, target):
        times, dynamics = target
        with pytest.raises(AnalysisError):
            ParameterEstimation(cascade(), [], OBSERVED_SPECIES, times,
                                dynamics)


class TestFitness:
    def test_truth_scores_zero(self, target):
        times, dynamics = target
        pe = ParameterEstimation(cascade(TRUE_CONSTANTS),
                                 [FreeParameter(0, 1e-2, 1e2)],
                                 OBSERVED_SPECIES, times, dynamics)
        score = pe.fitness(np.array([[np.log10(TRUE_CONSTANTS[0])]]))
        assert score[0] == pytest.approx(0.0, abs=1e-4)

    def test_wrong_constants_score_positive(self, target):
        times, dynamics = target
        pe = ParameterEstimation(cascade(TRUE_CONSTANTS),
                                 [FreeParameter(0, 1e-2, 1e2)],
                                 OBSERVED_SPECIES, times, dynamics)
        score = pe.fitness(np.array([[np.log10(50.0)]]))
        assert score[0] > 0.05

    def test_batch_fitness_evaluates_whole_swarm(self, target):
        times, dynamics = target
        pe = ParameterEstimation(cascade(TRUE_CONSTANTS),
                                 [FreeParameter(0, 1e-2, 1e2)],
                                 OBSERVED_SPECIES, times, dynamics)
        scores = pe.fitness(np.log10([[0.5], [2.0], [8.0]]))
        assert scores.shape == (3,)
        assert pe.n_simulations == 3


class TestEstimation:
    @pytest.mark.parametrize("optimizer", ["pso", "fstpso"])
    def test_single_parameter_recovery(self, target, optimizer):
        """With one unknown the swarm recovers the true constant."""
        times, dynamics = target
        wrong = list(TRUE_CONSTANTS)
        wrong[0] = 0.1
        pe = ParameterEstimation(cascade(tuple(wrong)),
                                 [FreeParameter(0, 1e-2, 1e2)],
                                 OBSERVED_SPECIES, times, dynamics)
        result = pe.estimate(optimizer, swarm_size=12, n_iterations=15,
                             seed=3)
        assert result.fitness < 0.05
        assert result.estimated_constants[0] == pytest.approx(
            TRUE_CONSTANTS[0], rel=0.5)

    def test_history_is_monotone_nonincreasing(self, target):
        times, dynamics = target
        pe = ParameterEstimation(cascade(TRUE_CONSTANTS),
                                 [FreeParameter(0, 1e-2, 1e2)],
                                 OBSERVED_SPECIES, times, dynamics)
        result = pe.estimate("pso", swarm_size=8, n_iterations=8, seed=0)
        history = result.optimization.converged_history
        assert np.all(np.diff(history) <= 1e-15)

    def test_simulation_count_tracked(self, target):
        times, dynamics = target
        pe = ParameterEstimation(cascade(TRUE_CONSTANTS),
                                 [FreeParameter(0, 1e-2, 1e2)],
                                 OBSERVED_SPECIES, times, dynamics)
        result = pe.estimate("pso", swarm_size=8, n_iterations=5, seed=0)
        assert result.n_simulations == 8 * 6   # initial + 5 iterations

    def test_unknown_optimizer_rejected(self, target):
        times, dynamics = target
        pe = ParameterEstimation(cascade(TRUE_CONSTANTS),
                                 [FreeParameter(0, 1e-2, 1e2)],
                                 OBSERVED_SPECIES, times, dynamics)
        with pytest.raises(AnalysisError):
            pe.estimate("genetic")

    def test_constants_table(self, target):
        times, dynamics = target
        pe = ParameterEstimation(cascade(TRUE_CONSTANTS),
                                 [FreeParameter(0, 1e-2, 1e2)],
                                 OBSERVED_SPECIES, times, dynamics)
        result = pe.estimate("pso", swarm_size=6, n_iterations=3, seed=0)
        table = result.constants_table(true_values=[TRUE_CONSTANTS[0]],
                                       names=["k_act1"])
        assert "k_act1" in table and "ratio" in table
