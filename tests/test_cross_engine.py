"""Cross-engine agreement property tests.

Every engine in the library integrates the same mathematics; these
tests assert pairwise agreement on randomly generated networks — the
strongest global consistency check the suite runs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import simulate
from repro.model import perturbed_batch
from repro.solvers import SolverOptions
from repro.synth import SyntheticModelSpec, generate_model

OPTIONS = SolverOptions(rtol=1e-8, atol=1e-12, max_steps=200_000)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 300))
def test_batched_dopri5_and_radau_agree(seed):
    """Forcing either batched method on a non-stiff random model gives
    the same trajectories (explicit and implicit math agree)."""
    model = generate_model(SyntheticModelSpec(5, 6, seed))
    grid = np.linspace(0, 0.5, 4)
    explicit = simulate(model, (0, 0.5), grid, model.batch(2),
                        options=OPTIONS, method="dopri5")
    implicit = simulate(model, (0, 0.5), grid, model.batch(2),
                        options=OPTIONS, method="radau5")
    if explicit.all_success and implicit.all_success:
        assert np.allclose(explicit.y, implicit.y, rtol=1e-5, atol=1e-8)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 300))
def test_own_bdf_agrees_with_lsoda(seed):
    """Our multistep solver tracks ODEPACK's on random networks."""
    model = generate_model(SyntheticModelSpec(4, 5, seed))
    grid = np.linspace(0, 0.5, 4)
    own = simulate(model, (0, 0.5), grid, engine="bdf", options=OPTIONS)
    reference = simulate(model, (0, 0.5), grid, engine="lsoda",
                         options=OPTIONS)
    if own.all_success and reference.all_success:
        assert np.allclose(own.y, reference.y, rtol=1e-4, atol=1e-7)


@pytest.mark.parametrize("engine", ["batched", "dopri5", "radau5", "bdf",
                                    "lsoda", "vode", "autoswitch"])
def test_all_engines_on_one_reference_problem(engine):
    """Seven engines, one problem, one answer."""
    from repro.models import decay_chain
    model = decay_chain(2, rate=1.0, initial=10.0)
    grid = np.linspace(0, 3, 7)
    result = simulate(model, (0, 3), grid, engine=engine, options=OPTIONS)
    assert result.all_success
    expected = 10.0 * np.exp(-grid)
    assert np.allclose(result.species("X0")[0], expected, rtol=1e-5,
                       atol=1e-8)


def test_perturbed_batch_consistency_across_engines():
    """A perturbed batch gives row-wise identical results whether run
    batched or through the scalar loop."""
    from repro.models import cascade
    model = cascade()
    batch = perturbed_batch(model.nominal_parameterization(), 5,
                            np.random.default_rng(3))
    grid = np.linspace(0, 5, 6)
    batched = simulate(model, (0, 5), grid, batch, options=OPTIONS)
    sequential = simulate(model, (0, 5), grid, batch, engine="radau5",
                          options=OPTIONS)
    assert batched.all_success and sequential.all_success
    assert np.allclose(batched.y, sequential.y, rtol=1e-5, atol=1e-8)
