"""Tests for the stochastic substrate: propensities, SSA, tau-leaping."""

import numpy as np
import pytest

from repro.core import simulate
from repro.errors import ModelError, SolverError
from repro.model import MichaelisMenten, ReactionBasedModel, perturbed_batch
from repro.models import decay_chain, dimerization
from repro.solvers import SolverOptions
from repro.stochastic import (BatchSSA, BatchTauLeaping,
                              StochasticSimulator, build_network,
                              concentrations_to_counts,
                              counts_to_concentrations)


class TestNetworkBuilding:
    def test_constant_conversion_orders(self):
        model = ReactionBasedModel("orders")
        model.add_species("A", 1.0)
        model.add_species("B", 1.0)
        model.add("0 -> A @ 2.0")        # order 0
        model.add("A -> B @ 3.0")        # order 1
        model.add("A + B -> A @ 4.0")    # order 2 distinct
        model.add("2 A -> B @ 5.0")      # order 2 same
        network = build_network(model, volume=10.0)
        # Slot-product convention: c = k * Omega^(1 - order); the
        # 2A combinatorics live in the n (n - 1) slot product.
        assert network.rate_constants_counts == pytest.approx(
            [2.0 * 10.0, 3.0, 4.0 / 10.0, 5.0 / 10.0])

    def test_propensity_values(self):
        model = ReactionBasedModel("prop")
        model.add_species("A", 1.0)
        model.add("2 A -> 0 @ 1.0")
        network = build_network(model, volume=1.0)
        counts = np.array([[5.0]])
        # c = 2k/Omega = 2; a = c * n(n-1)/2 = 2 * 10 = 20.
        assert network.propensities(counts)[0, 0] == pytest.approx(20.0)

    def test_zero_counts_zero_propensity(self):
        model = decay_chain(1)
        network = build_network(model, volume=1.0)
        assert np.all(network.propensities(np.zeros((1, 2))) == 0.0)

    def test_rejects_non_mass_action(self):
        model = ReactionBasedModel("mm")
        model.add_species("S", 1.0)
        model.add("S -> P", rate_constant=1.0, law=MichaelisMenten(km=0.5))
        with pytest.raises(ModelError):
            build_network(model, volume=1.0)

    def test_third_order_supported(self):
        """Schlögl-style 3 X -> 2 X: a = c n (n-1) (n-2)."""
        model = ReactionBasedModel("cubic")
        model.add_species("X", 1.0)
        model.add("3 X -> 2 X @ 1.0")
        network = build_network(model, volume=2.0)
        # c = k * Omega^(1-3) = 0.25.
        assert network.rate_constants_counts[0] == pytest.approx(0.25)
        assert network.propensities(np.array([[5.0]]))[0, 0] == \
            pytest.approx(0.25 * 5 * 4 * 3)

    def test_rejects_order_above_three(self):
        model = ReactionBasedModel("quartic")
        model.add_species("X", 1.0)
        model.add("2 X + 2 X -> X @ 1.0")
        with pytest.raises(ModelError):
            build_network(model, volume=1.0)

    def test_rejects_bad_volume(self):
        with pytest.raises(ModelError):
            build_network(decay_chain(1), volume=0.0)

    def test_unit_round_trip(self):
        concentrations = np.array([0.5, 1.25])
        counts = concentrations_to_counts(concentrations, 100.0)
        assert np.array_equal(counts, [50.0, 125.0])
        assert np.allclose(counts_to_concentrations(counts, 100.0),
                           concentrations)


class TestSSA:
    def test_mean_matches_ode_on_linear_chain(self):
        """For linear kinetics the SSA mean equals the ODE solution."""
        model = decay_chain(2, rate=1.0, initial=10.0)
        grid = np.linspace(0, 3, 7)
        simulator = StochasticSimulator(model, volume=200.0, method="ssa",
                                        seed=1)
        stochastic = simulator.simulate((0, 3), grid, n_replicates=300)
        assert stochastic.all_success
        deterministic = simulate(model, (0, 3), grid)
        error = np.max(np.abs(stochastic.ensemble_mean()
                              - deterministic.y[0])
                       / (np.abs(deterministic.y[0]) + 0.1))
        assert error < 0.03

    def test_counts_are_integers_and_nonnegative(self):
        model = decay_chain(2)
        simulator = StochasticSimulator(model, volume=50.0, seed=0)
        result = simulator.simulate((0, 2), np.linspace(0, 2, 5),
                                    n_replicates=20)
        assert np.all(result.counts >= 0)
        assert np.allclose(result.counts, np.rint(result.counts))

    def test_conservation_exact_in_count_space(self):
        model = dimerization()
        simulator = StochasticSimulator(model, volume=300.0, seed=2)
        result = simulator.simulate((0, 2), np.linspace(0, 2, 5),
                                    n_replicates=30)
        totals = result.counts[..., 0] + 2 * result.counts[..., 1]
        assert np.all(totals == totals[:, :1])

    def test_deterministic_per_seed(self):
        model = decay_chain(1)
        grid = np.linspace(0, 1, 4)
        first = StochasticSimulator(model, volume=100.0, seed=9).simulate(
            (0, 1), grid, n_replicates=5)
        second = StochasticSimulator(model, volume=100.0, seed=9).simulate(
            (0, 1), grid, n_replicates=5)
        assert np.array_equal(first.counts, second.counts)
        third = StochasticSimulator(model, volume=100.0, seed=10).simulate(
            (0, 1), grid, n_replicates=5)
        assert not np.array_equal(first.counts, third.counts)

    def test_extinction_freezes_state(self):
        """Pure decay reaches zero and stays there on the grid."""
        model = decay_chain(1, rate=5.0, initial=1.0)
        simulator = StochasticSimulator(model, volume=5.0, seed=3)
        result = simulator.simulate((0, 50), np.linspace(0, 50, 6),
                                    n_replicates=10)
        assert result.all_success
        assert np.all(result.counts[:, -1, 0] == 0)

    def test_event_budget_enforced(self):
        model = decay_chain(1, rate=1.0, initial=10.0)
        simulator = StochasticSimulator(model, volume=10_000.0, seed=0,
                                        max_events=10)
        result = simulator.simulate((0, 10), np.array([0.0, 10.0]),
                                    n_replicates=3)
        assert set(result.statuses()) == {"max_events"}

    def test_variance_scales_inversely_with_volume(self):
        """Intrinsic noise shrinks as 1/sqrt(Omega)."""
        model = decay_chain(1, rate=1.0, initial=10.0)
        grid = np.array([0.0, 0.5])
        spreads = {}
        for volume in (20.0, 2000.0):
            simulator = StochasticSimulator(model, volume=volume, seed=4)
            result = simulator.simulate((0, 0.5), grid, n_replicates=150)
            spreads[volume] = result.ensemble_std()[-1, 0]
        assert spreads[2000.0] < spreads[20.0] / 3.0


class TestTauLeaping:
    def test_mean_matches_ode(self):
        model = decay_chain(2, rate=1.0, initial=10.0)
        grid = np.linspace(0, 3, 7)
        simulator = StochasticSimulator(model, volume=2000.0,
                                        method="tau-leaping", seed=5)
        stochastic = simulator.simulate((0, 3), grid, n_replicates=100)
        assert stochastic.all_success
        deterministic = simulate(model, (0, 3), grid)
        error = np.max(np.abs(stochastic.ensemble_mean()
                              - deterministic.y[0])
                       / (np.abs(deterministic.y[0]) + 0.1))
        assert error < 0.05

    def test_fewer_steps_than_ssa_events(self):
        """Leaping compresses many events into few steps at large
        populations."""
        model = decay_chain(1, rate=1.0, initial=10.0)
        grid = np.array([0.0, 1.0])
        ssa = StochasticSimulator(model, volume=5000.0, method="ssa",
                                  seed=6).simulate((0, 1), grid,
                                                   n_replicates=3)
        tau = StochasticSimulator(model, volume=5000.0,
                                  method="tau-leaping",
                                  seed=6).simulate((0, 1), grid,
                                                   n_replicates=3)
        ssa_work = ssa.n_events.mean()
        tau_work = (tau.n_leaps + tau.n_events).mean()
        assert tau_work < ssa_work / 5.0

    def test_no_negative_populations(self):
        model = dimerization(bind=5.0, unbind=0.1)
        simulator = StochasticSimulator(model, volume=30.0,
                                        method="tau-leaping", seed=7)
        result = simulator.simulate((0, 5), np.linspace(0, 5, 6),
                                    n_replicates=25)
        assert np.all(result.counts >= 0)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(SolverError):
            BatchTauLeaping(epsilon=1.5)


class TestEngine:
    def test_unknown_method_rejected(self):
        with pytest.raises(SolverError):
            StochasticSimulator(decay_chain(1), method="cle")

    def test_parameter_batch_rows_use_own_constants(self):
        model = decay_chain(1, rate=1.0, initial=10.0)
        batch = perturbed_batch(model.nominal_parameterization(), 4,
                                np.random.default_rng(0), spread=0.25)
        simulator = StochasticSimulator(model, volume=500.0, seed=8)
        result = simulator.simulate((0, 1), np.array([0.0, 1.0]), batch)
        assert result.batch_size == 4
        assert result.all_success

    def test_replicates_with_batch_rejected(self):
        model = decay_chain(1)
        batch = model.batch(2)
        simulator = StochasticSimulator(model)
        with pytest.raises(SolverError):
            simulator.simulate((0, 1), None, batch, n_replicates=5)

    def test_invalid_max_events_rejected(self):
        with pytest.raises(SolverError):
            BatchSSA(max_events=0)


class TestPropensityGuards:
    def build(self):
        return build_network(dimerization(), volume=100.0)

    def test_clean_counts_untouched(self):
        network = self.build()
        counts = np.array([[40.0, 10.0], [8.0, 2.0]])
        values = network.propensities(counts)
        assert np.all(values >= 0.0)
        assert np.all(np.isfinite(values))

    def test_tiny_negative_propensity_clamped(self):
        network = self.build()
        network.rate_constants_counts[0] = -1e-16
        values = network.propensities(np.array([[40.0, 10.0]]))
        assert np.all(values >= 0.0)

    def test_materially_negative_propensity_raises(self):
        from repro.errors import GuardError
        network = self.build()
        network.rate_constants_counts[1] = -2.0
        with pytest.raises(GuardError) as info:
            network.propensities(np.array([[40.0, 10.0], [4.0, 1.0]]))
        message = str(info.value)
        assert "reaction 1" in message
        assert "simulation 0" in message
