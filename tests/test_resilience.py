"""Resilience layer: retry escalation, quarantine, fault injection,
and the degradation paths of the analyses (PSA / SA / PE)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (ParameterRange, SweepTarget, endpoint_metric,
                        run_psa_2d, run_sobol_sa, simulate,
                        synthetic_target)
from repro.core.pe import FreeParameter, ParameterEstimation
from repro.errors import (AnalysisError, CampaignInterrupted,
                         ResilienceError)
from repro.gpu import BatchSimulator
from repro.model import perturbed_batch
from repro.resilience import (DEFAULT_RETRY_LADDER, FailureRecord,
                              FaultPlan, QuarantineLog, RetryAttempt,
                              RetryPolicy, RetryStage,
                              default_retry_policy)
from repro.solvers import SolverOptions


class TestRetryPolicy:
    def test_default_ladder_escalates_solver_and_tolerances(self):
        methods = [stage.method for stage in DEFAULT_RETRY_LADDER]
        assert methods == ["dopri5", "radau5", "bdf"]

    def test_derive_options_scales_tolerances_and_step_cap(self):
        base = SolverOptions(rtol=1e-6, atol=1e-9, max_steps=1000)
        stage = RetryStage("radau5", rtol_factor=0.1, atol_factor=0.5,
                           max_steps_factor=4.0)
        derived = stage.derive_options(base)
        assert derived.rtol == pytest.approx(1e-7)
        assert derived.atol == pytest.approx(5e-10)
        assert derived.max_steps == 4000

    def test_planned_stages_bounded_by_attempt_budget(self):
        policy = RetryPolicy(max_attempts=2)
        assert len(policy.planned_stages()) == 2

    def test_invalid_stage_rejected(self):
        with pytest.raises(ResilienceError):
            RetryStage("lsoda")
        with pytest.raises(ResilienceError):
            RetryStage("dopri5", rtol_factor=0.0)
        with pytest.raises(ResilienceError):
            RetryPolicy(max_attempts=-1)
        # zero attempts is legal: quarantine immediately, no retries
        assert RetryPolicy(max_attempts=0).planned_stages() == ()

    def test_describe_mentions_every_rung(self):
        text = default_retry_policy().describe()
        for method in ("dopri5", "radau5", "bdf"):
            assert method in text


class TestFaultPlan:
    def test_nan_mask_uses_global_row_ids(self):
        plan = FaultPlan(nan_rows=(3, 10))
        mask = plan.nan_mask(np.array([2, 3, 4, 10]))
        assert mask.tolist() == [False, True, False, True]

    def test_for_chunk_rebases_rows_and_strips_campaign_faults(self):
        plan = FaultPlan(nan_rows=(2, 5, 9), fail_launches=(1,),
                         crash_after_launches=2, deadline_after_chunks=1)
        local = plan.for_chunk(1, start=4, stop=8)
        assert local.nan_rows == (1,)
        assert local.fail_launches == (0,)
        assert local.crash_after_launches is None
        assert local.deadline_after_chunks is None

    def test_validation(self):
        with pytest.raises(ResilienceError):
            FaultPlan(nan_rows=(-1,))
        with pytest.raises(ResilienceError):
            FaultPlan(crash_after_launches=-1)


class TestQuarantineLog:
    def make_record(self, row):
        return FailureRecord(row, np.array([0.5]), np.array([1.0, 2.0]),
                             [RetryAttempt("first-pass", "dopri5",
                                           "failed", 7, 1e-6, 1e-9, 100)])

    def test_merge_shifts_rows_into_campaign_space(self):
        chunk = QuarantineLog()
        chunk.add(self.make_record(1))
        campaign = QuarantineLog()
        campaign.merge(chunk, row_offset=8)
        assert campaign.rows().tolist() == [9]

    def test_dict_round_trip(self):
        log = QuarantineLog([self.make_record(4)])
        restored = QuarantineLog.from_dicts(log.to_dicts())
        assert restored.rows().tolist() == [4]
        assert restored.records[0].status_history() == ["failed"]
        assert restored.records[0].attempts[0].max_steps == 100

    @given(st.lists(st.integers(min_value=0, max_value=63), max_size=8))
    def test_mask_matches_rows(self, rows):
        log = QuarantineLog()
        for row in set(rows):
            log.add(FailureRecord(row, np.zeros(1), np.zeros(1)))
        mask = log.mask(64)
        assert int(mask.sum()) == len(set(rows))
        assert np.array_equal(np.flatnonzero(mask), log.rows())


class TestRetryEscalation:
    def batch(self, lv_model, size=8):
        rng = np.random.default_rng(7)
        return perturbed_batch(lv_model.nominal_parameterization(), size,
                               rng)

    def test_transient_launch_failure_recovered(self, lv_model):
        result = simulate(lv_model, (0.0, 2.0), np.linspace(0, 2, 5),
                          self.batch(lv_model),
                          retry_policy=default_retry_policy(),
                          fault_plan=FaultPlan(fail_launches=(0,)))
        assert result.all_success
        assert result.n_quarantined == 0
        report = result.engine_report
        assert report.n_recovered_rows == 8
        assert report.n_retried_rows >= 8

    def test_persistent_fault_exhausts_ladder_into_quarantine(self,
                                                              lv_model):
        result = simulate(lv_model, (0.0, 2.0), np.linspace(0, 2, 5),
                          self.batch(lv_model),
                          retry_policy=default_retry_policy(),
                          fault_plan=FaultPlan(nan_rows=(2, 5)))
        assert result.n_quarantined == 2
        assert result.quarantine.rows().tolist() == [2, 5]
        # the healthy rows are untouched
        assert result.raw.success_mask.sum() == 6
        for record in result.quarantine:
            # first pass + every ladder rung, all non-success
            assert record.n_attempts == 4
            assert record.attempts[0].stage == "first-pass"
            assert "success" not in record.status_history()
            assert record.rate_constants.shape == (lv_model.n_reactions,)

    def test_without_policy_failures_stay_unretried(self, lv_model):
        result = simulate(lv_model, (0.0, 2.0), np.linspace(0, 2, 5),
                          self.batch(lv_model),
                          fault_plan=FaultPlan(nan_rows=(2,)))
        assert result.n_quarantined == 0
        assert not result.raw.success_mask[2]

    def test_quarantine_rows_are_global_across_launches(self, lv_model):
        result = simulate(lv_model, (0.0, 2.0), np.linspace(0, 2, 5),
                          self.batch(lv_model, size=8),
                          max_batch_per_launch=3,
                          retry_policy=default_retry_policy(),
                          fault_plan=FaultPlan(nan_rows=(1, 6)))
        assert result.quarantine.rows().tolist() == [1, 6]

    def test_injected_crash_raises_campaign_interrupted(self, lv_model):
        simulator = BatchSimulator(lv_model, max_batch_per_launch=4,
                                   fault_plan=FaultPlan(
                                       crash_after_launches=1))
        with pytest.raises(CampaignInterrupted) as excinfo:
            simulator.simulate((0.0, 2.0), np.linspace(0, 2, 5),
                               self.batch(lv_model, size=8))
        assert excinfo.value.completed_chunks == 1


class TestAnalysesDegradation:
    def test_psa2d_masks_quarantined_cells(self, lv_model):
        target_x = SweepTarget.rate_constant(lv_model, 0,
                                             ParameterRange(0.5, 1.5))
        target_y = SweepTarget.initial_concentration(
            lv_model, "Y2", ParameterRange(2.0, 6.0))
        result = run_psa_2d(lv_model, target_x, target_y, 3, 3,
                            (0.0, 2.0), np.linspace(0, 2, 5),
                            metric=endpoint_metric(lv_model, "Y1"),
                            retry_policy=default_retry_policy(),
                            fault_plan=FaultPlan(nan_rows=(4,)))
        assert result.n_quarantined == 1
        assert not np.isfinite(result.metric_map[1, 1])  # row-major cell 4
        assert np.isfinite(result.metric_map).sum() == 8
        assert "?" in result.render_map()
        assert result.valid_mask.sum() == 8

    def test_sobol_indices_finite_with_quarantined_rows(self, lv_model):
        result = run_sobol_sa(
            lv_model, species=["Y1", "Y2"],
            ranges=[ParameterRange(5.0, 15.0), ParameterRange(2.0, 8.0)],
            output_species="Y1", base_samples=8, t_span=(0.0, 3.0),
            t_eval=np.linspace(0, 3, 7), bootstrap=20,
            retry_policy=default_retry_policy(),
            fault_plan=FaultPlan(nan_rows=(0, 9)))
        assert len(result.quarantine) == 2
        assert result.n_failed_simulations == 2
        # row 0 kills base sample 0 (A block), row 9 kills base sample
        # 1 (AB_1 block): 6 of 8 columns survive.
        assert result.n_surviving_base_samples == 6
        for array in (result.first_order, result.total_order,
                      result.first_order_ci, result.total_order_ci):
            assert np.isfinite(array).all()

    def test_sobol_refuses_too_few_survivors(self, lv_model):
        with pytest.raises(AnalysisError, match="survived"):
            run_sobol_sa(
                lv_model, species=["Y1", "Y2"],
                ranges=[ParameterRange(5.0, 15.0),
                        ParameterRange(2.0, 8.0)],
                output_species="Y1", base_samples=4, t_span=(0.0, 3.0),
                t_eval=np.linspace(0, 3, 7), bootstrap=10,
                retry_policy=RetryPolicy(max_attempts=1),
                fault_plan=FaultPlan(nan_rows=tuple(range(4))))

    def test_pe_converges_with_penalized_failing_region(self, lv_model):
        times, target = synthetic_target(lv_model, ["Y1", "Y2"],
                                         (0.0, 3.0), n_points=12)
        estimation = ParameterEstimation(
            lv_model, [FreeParameter(0, 0.1, 10.0)], ["Y1", "Y2"],
            times, target, retry_policy=RetryPolicy(max_attempts=1),
            fault_plan=FaultPlan(nan_rows=(0, 1)))
        result = estimation.estimate(optimizer="pso", swarm_size=8,
                                     n_iterations=10, seed=3)
        assert estimation.n_penalized > 0
        assert np.isfinite(result.fitness)
        assert result.fitness < estimation.failure_penalty
        # true k0 = 1.0; penalty rows must not keep the swarm from it
        assert 0.3 <= result.estimated_constants[0] <= 3.0

    def test_pe_rejects_non_finite_penalty(self, lv_model):
        times, target = synthetic_target(lv_model, ["Y1"], (0.0, 1.0),
                                         n_points=4)
        with pytest.raises(AnalysisError):
            ParameterEstimation(lv_model, [FreeParameter(0, 0.1, 10.0)],
                                ["Y1"], times, target,
                                failure_penalty=np.inf)
