"""Tests for the Sobol sensitivity analysis."""

import numpy as np
import pytest

from repro.core import ParameterRange, run_sobol_sa
from repro.core.sa import _estimate_indices, _split_blocks
from repro.core.sampling import saltelli_sample
from repro.errors import AnalysisError
from repro.models import SA_OUTPUT_SPECIES, SA_TARGET_SPECIES, decay_chain


class TestEstimators:
    """Validate the index estimators on functions with known indices."""

    def run_on_function(self, function, ranges, base=2048, seed=0):
        design = saltelli_sample(ranges, base, seed)
        outputs = function(design)
        a_block, ab_blocks, _, b_block = _split_blocks(
            outputs, base, len(ranges))
        return _estimate_indices(a_block, ab_blocks, b_block)

    def test_additive_linear_function(self):
        """Y = 2 X1 + X2 with X ~ U(0,1): S1 = [0.8, 0.2], ST = S1."""
        ranges = [ParameterRange(0.0, 1.0)] * 2
        first, total = self.run_on_function(
            lambda x: 2.0 * x[:, 0] + x[:, 1], ranges)
        assert first == pytest.approx([0.8, 0.2], abs=0.03)
        assert total == pytest.approx([0.8, 0.2], abs=0.03)

    def test_pure_interaction_function(self):
        """Y = X1 * X2 centered: first-order ~ 1/7 of variance each
        wait - use (X1-.5)(X2-.5): S1 = S2 = 0, ST1 = ST2 = 1."""
        ranges = [ParameterRange(0.0, 1.0)] * 2
        first, total = self.run_on_function(
            lambda x: (x[:, 0] - 0.5) * (x[:, 1] - 0.5), ranges)
        assert first == pytest.approx([0.0, 0.0], abs=0.05)
        assert total == pytest.approx([1.0, 1.0], abs=0.05)

    def test_inert_input_scores_zero(self):
        ranges = [ParameterRange(0.0, 1.0)] * 3
        first, total = self.run_on_function(
            lambda x: np.sin(x[:, 0]) + x[:, 1] ** 2, ranges)
        assert abs(first[2]) < 0.05
        assert abs(total[2]) < 0.05

    def test_constant_output_gives_zero_indices(self):
        ranges = [ParameterRange(0.0, 1.0)] * 2
        first, total = self.run_on_function(
            lambda x: np.full(x.shape[0], 3.0), ranges, base=64)
        assert np.allclose(first, 0.0)
        assert np.allclose(total, 0.0)

    def test_block_split_validates_length(self):
        with pytest.raises(AnalysisError):
            _split_blocks(np.zeros(10), base=4, dimension=2)

    def test_second_order_estimator_on_interaction_function(self):
        """Y = X1 X2 + X3 (centered factors): S2_{12} carries all the
        interaction variance, other pairs none."""
        from repro.core.sa import _estimate_second_order
        ranges = [ParameterRange(0.0, 1.0)] * 3
        base = 4096
        design = saltelli_sample(ranges, base, seed=0, second_order=True)
        centered = design - 0.5
        outputs = centered[:, 0] * centered[:, 1] + centered[:, 2]
        a_block, ab_blocks, ba_blocks, b_block = _split_blocks(
            outputs, base, 3, second_order=True)
        first, _ = _estimate_indices(a_block, ab_blocks, b_block)
        interactions = _estimate_second_order(a_block, ab_blocks,
                                              ba_blocks, b_block, first)
        # Var = 1/144 (product) + 1/12 (X3): S2_12 = (1/144)/(13/144).
        assert interactions[0, 1] == pytest.approx(1.0 / 13.0, abs=0.03)
        assert interactions[1, 0] == pytest.approx(1.0 / 13.0, abs=0.03)
        assert abs(interactions[0, 2]) < 0.03
        assert abs(interactions[1, 2]) < 0.03
        assert np.isnan(interactions[0, 0])


class TestEndToEnd:
    def test_decay_chain_rate_dominates(self):
        """Sweeping X0(0) dominates the X3 endpoint; an inert species'
        initial value has no influence."""
        model = decay_chain(3)
        result = run_sobol_sa(
            model,
            species=["X0", "X2"],
            ranges=[ParameterRange(5.0, 15.0), ParameterRange(0.0, 0.01)],
            output_species="X3",
            base_samples=64,
            t_span=(0.0, 2.0),
            t_eval=np.array([0.0, 2.0]),
            bootstrap=30,
        )
        assert result.n_simulations == 64 * 4
        assert result.simulation.all_success
        # X0 is the dominant driver of X3's endpoint.
        assert result.total_order[0] > 0.5
        assert result.total_order[0] > result.total_order[1]
        ranking = result.ranking()
        assert ranking[0][0] == "X0(0)"

    def test_table_renders(self):
        model = decay_chain(2)
        result = run_sobol_sa(
            model, species=["X0"], ranges=[ParameterRange(5.0, 15.0)],
            output_species="X2", base_samples=16,
            t_span=(0.0, 1.0), t_eval=np.array([0.0, 1.0]), bootstrap=10)
        table = result.table()
        assert "S1" in table and "ST" in table and "X0(0)" in table

    def test_missing_output_spec_rejected(self):
        model = decay_chain(2)
        with pytest.raises(AnalysisError):
            run_sobol_sa(model, species=["X0"],
                         ranges=[ParameterRange(1.0, 2.0)],
                         base_samples=8)

    def test_species_ranges_mismatch_rejected(self):
        model = decay_chain(2)
        with pytest.raises(AnalysisError):
            run_sobol_sa(model, species=["X0", "X1"],
                         ranges=[ParameterRange(1.0, 2.0)],
                         output_species="X2", base_samples=8)

    def test_second_order_end_to_end(self):
        model = decay_chain(2)
        result = run_sobol_sa(
            model, species=["X0", "X1"],
            ranges=[ParameterRange(5.0, 15.0), ParameterRange(0.0, 5.0)],
            output_species="X2", base_samples=32,
            t_span=(0.0, 1.0), t_eval=np.array([0.0, 1.0]),
            bootstrap=10, second_order=True)
        assert result.second_order is not None
        assert result.second_order.shape == (2, 2)
        assert result.n_simulations == 32 * 6   # 2D+2 blocks
        # The chain output is additive in the two initial values:
        # no interaction.
        assert abs(result.second_order[0, 1]) < 0.15

    def test_memory_model_flags_oversized_radau_batches(self):
        from repro.gpu import fits_device, memory_footprint_doubles
        assert fits_device(512, 100, 100, 100)
        # 2048 sims x 2000^2 Jacobian quadruple: far beyond 12 GB.
        assert not fits_device(2048, 2000, 2000, 100)
        small = memory_footprint_doubles(16, 10, 10, 5)
        big = memory_footprint_doubles(16, 100, 10, 5)
        assert big > small

    def test_metabolic_sa_smoke(self, metabolic_model):
        """The paper-style SA workload runs end to end."""
        result = run_sobol_sa(
            metabolic_model,
            species=SA_TARGET_SPECIES,
            ranges=[ParameterRange(1e-6, 2e-4, log=True)] * 3,
            output_species=SA_OUTPUT_SPECIES,
            base_samples=16,
            t_span=(0.0, 2.0),
            t_eval=np.array([0.0, 2.0]),
            bootstrap=10,
            options=__import__("repro").SolverOptions(max_steps=100_000),
        )
        assert len(result.labels) == 3
        assert np.all(result.total_order_ci >= 0.0)
