"""Tests for the steady-state solver."""

import numpy as np
import pytest

from repro.core import find_steady_state, simulate
from repro.model import ReactionBasedModel
from repro.models import cascade, dimerization, michaelis_menten_cycle
from repro.solvers import SolverOptions


class TestAnalyticCases:
    def test_open_synthesis_degradation(self):
        """0 -> A (k1), A -> 0 (k2): steady state A* = k1/k2."""
        model = ReactionBasedModel("open")
        model.add_species("A", 0.0)
        model.add("0 -> A @ 3.0")
        model.add("A -> 0 @ 1.5")
        result = find_steady_state(model)
        assert result.converged
        assert result.state[0] == pytest.approx(2.0, rel=1e-8)
        assert result.stable

    def test_dimerization_equilibrium(self):
        """2A <-> D equilibrium satisfies k_b A^2 = k_u D on the
        conservation manifold A + 2D = A0."""
        model = dimerization(bind=2.0, unbind=1.0, initial=1.0)
        result = find_steady_state(model)
        assert result.converged
        a, d = result.state
        assert 2.0 * a ** 2 == pytest.approx(1.0 * d, rel=1e-6)
        assert a + 2 * d == pytest.approx(1.0, rel=1e-8)

    def test_matches_long_time_integration(self):
        model = cascade()
        result = find_steady_state(model)
        assert result.converged
        options = SolverOptions(max_steps=200_000)
        trajectory = simulate(model, (0, 500), np.array([0.0, 500.0]),
                              options=options)
        assert np.allclose(result.state, trajectory.y[0, -1], rtol=1e-4,
                           atol=1e-8)

    def test_saturating_kinetics(self):
        model = michaelis_menten_cycle()
        result = find_steady_state(model)
        assert result.converged
        assert result.state.sum() == pytest.approx(1.0, rel=1e-8)
        assert np.all(result.state > 0)


class TestBehaviour:
    def test_nonnegative_states(self):
        model = cascade()
        result = find_steady_state(model)
        assert np.all(result.state >= 0)

    def test_custom_initial_guess(self):
        model = dimerization()
        guess = np.array([0.5, 0.25])
        result = find_steady_state(model, initial_guess=guess)
        assert result.converged
        # Pinned to the guess's manifold: A + 2D = 1.0.
        assert result.state[0] + 2 * result.state[1] == \
            pytest.approx(1.0, rel=1e-8)

    def test_iteration_budget_respected(self):
        model = cascade()
        result = find_steady_state(model, max_iterations=1, tol=1e-14)
        assert result.n_iterations <= 1

    def test_residual_norm_reported(self):
        model = dimerization()
        result = find_steady_state(model)
        assert result.residual_norm <= 1e-10

    def test_stability_check_optional(self):
        model = dimerization()
        result = find_steady_state(model, check_stability=False)
        assert result.stable is None
