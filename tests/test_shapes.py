"""Self-application gate and seeded regressions of the shapes analyzer.

The shape/backend analysis must run clean over the repo's own package
source with the committed (empty) baseline — this test IS the
shape-safety regression guard: any future row-contracting tensordot,
float32 state accumulator, raw numpy call inside a kernel or
off-protocol ``xp`` op fails CI here.

Each seeded regression re-introduces one defect class the analyzer
exists to catch and asserts the exact rule fires; a hypothesis
property checks the abstract interpreter never crashes on generated
kernel bodies.
"""

import json
import tempfile
import textwrap
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.backend.protocol import REQUIRED_OPS
from repro.cli import main
from repro.errors import LintError
from repro.lint import (DEFAULT_SHAPES_BASELINE, SHAPE_RULES,
                        lint_shapes, write_baseline)


def _tree(tmp_path, source, name="batch_x.py"):
    root = tmp_path / "proj"
    (root / "gpu").mkdir(parents=True, exist_ok=True)
    path = root / "gpu" / name
    path.write_text(textwrap.dedent(source))
    return root, path


def _rules(report):
    return {finding.rule_id for finding in report.findings}


class TestSelfGate:
    def test_package_shapes_lint_is_clean(self):
        report = lint_shapes()
        offending = report.at_or_above("warning")
        assert offending == [], "\n" + "\n".join(
            finding.render() for finding in offending)

    def test_analysis_covers_the_kernel_modules(self):
        report = lint_shapes()
        covered = set(report.metadata["files"])
        for expected in ("gpu/batch_dopri5.py", "gpu/batch_radau5.py",
                         "gpu/batch_bdf.py", "gpu/engine.py",
                         "gpu/batched_ode.py", "gpu/router.py",
                         "solvers/stiffness.py"):
            assert expected in covered

    def test_committed_baseline_is_empty(self):
        """Acceptance criterion: the shipped kernels carry no accepted
        shape findings — the ratchet starts at zero."""
        payload = json.loads(DEFAULT_SHAPES_BASELINE.read_text())
        assert payload["format_version"] == 1
        assert payload["entries"] == []


class TestSeededShapeRegressions:
    def test_row_contracting_tensordot_is_shp001(self, tmp_path):
        root, path = _tree(tmp_path, """
            from ..backend import xp

            def norms(states):
                return xp.tensordot(states, states, axes=(0, 0))
        """)
        report = lint_shapes([path], root=root)
        hits = report.by_rule("SHP001")
        assert len(hits) == 1
        assert "batch" in hits[0].message

    def test_axis0_reduction_is_shp001(self, tmp_path):
        root, path = _tree(tmp_path, """
            from ..backend import xp

            def total(states):
                return xp.sum(states, axis=0)
        """)
        assert lint_shapes([path], root=root).by_rule("SHP001")

    def test_batch_axis_broadcast_is_shp002(self, tmp_path):
        root, path = _tree(tmp_path, """
            from ..backend import xp

            def drift(states, times):
                return states + times
        """)
        assert lint_shapes([path], root=root).by_rule("SHP002")

    def test_keepdims_style_broadcast_is_clean(self, tmp_path):
        root, path = _tree(tmp_path, """
            from ..backend import xp

            def drift(states, times):
                return states + times[:, None]
        """)
        report = lint_shapes([path], root=root)
        assert report.by_rule("SHP002") == []

    def test_float32_state_accumulator_is_shp003(self, tmp_path):
        root, path = _tree(tmp_path, """
            from ..backend import xp

            def accumulate(states):
                acc = states.astype(xp.float32)
                acc = acc + states
                return acc
        """)
        assert lint_shapes([path], root=root).by_rule("SHP003")

    def test_shape_unstable_branches_are_shp004(self, tmp_path):
        root, path = _tree(tmp_path, """
            from ..backend import xp

            def pick(states, times, flag):
                if flag:
                    value = states
                else:
                    value = times
                return value * 2.0
        """)
        assert lint_shapes([path], root=root).by_rule("SHP004")

    def test_batch_folding_ravel_is_shp005(self, tmp_path):
        root, path = _tree(tmp_path, """
            from ..backend import xp

            def flat(states):
                return states.ravel()
        """)
        assert lint_shapes([path], root=root).by_rule("SHP005")

    def test_batch_preserving_reshape_is_clean(self, tmp_path):
        root, path = _tree(tmp_path, """
            from ..backend import xp

            def rows(states):
                return states.reshape(states.shape[0], -1)
        """)
        report = lint_shapes([path], root=root)
        assert report.by_rule("SHP005") == []

    def test_narrow_out_target_is_shp006(self, tmp_path):
        root, path = _tree(tmp_path, """
            from ..backend import xp

            def store(states):
                out = xp.zeros((4, 3), dtype=xp.float32)
                xp.maximum(states, states, out=out)
                return out
        """)
        assert lint_shapes([path], root=root).by_rule("SHP006")


class TestSeededBackendRegressions:
    def test_numpy_import_in_kernel_is_bkd001(self, tmp_path):
        root, path = _tree(tmp_path, """
            import numpy as np

            def total(states):
                return np.sum(states, axis=-1)
        """)
        report = lint_shapes([path], root=root)
        assert report.by_rule("BKD001")
        assert report.by_rule("BKD002")

    def test_from_numpy_import_is_bkd001_and_use_is_bkd002(self, tmp_path):
        root, path = _tree(tmp_path, """
            from numpy import nansum

            def total(states):
                return nansum(states)
        """)
        report = lint_shapes([path], root=root)
        assert report.by_rule("BKD001")
        assert report.by_rule("BKD002")

    def test_off_protocol_xp_op_is_bkd003(self, tmp_path):
        root, path = _tree(tmp_path, """
            from ..backend import xp

            def factor(matrices):
                return xp.fancy_svd(matrices)
        """)
        hits = lint_shapes([path], root=root).by_rule("BKD003")
        assert len(hits) == 1
        assert "fancy_svd" in hits[0].message

    def test_protocol_surface_is_the_source_of_truth(self, tmp_path):
        """Every op actually declared by the protocol passes BKD003."""
        body = "\n".join(f"    a{i} = xp.{op}"
                         for i, op in enumerate(REQUIRED_OPS))
        root, path = _tree(tmp_path,
                           "from ..backend import xp\n\n"
                           f"def touch(states):\n{body}\n    return states\n")
        assert lint_shapes([path], root=root).by_rule("BKD003") == []

    def test_backend_module_itself_is_exempt(self, tmp_path):
        root = tmp_path / "proj"
        (root / "backend").mkdir(parents=True)
        path = root / "backend" / "numpy_backend.py"
        path.write_text("import numpy as np\nxp = np\n")
        report = lint_shapes([path], root=root)
        assert report.by_rule("BKD001") == []
        assert report.by_rule("BKD002") == []


class TestWaiversAndBaseline:
    DIRTY = """
        from ..backend import xp

        def norms(states):
            return xp.tensordot(states, states, axes=(0, 0))
    """

    def test_waiver_suppresses_and_counts(self, tmp_path):
        root, path = _tree(tmp_path, """
            from ..backend import xp

            def norms(states):
                # lint: skip=SHP001
                return xp.tensordot(states, states, axes=(0, 0))
        """)
        report = lint_shapes([path], root=root)
        assert report.by_rule("SHP001") == []
        assert report.metadata["waived"] >= 1
        assert report.by_rule("LNT000") == []

    def test_stale_shape_waiver_is_lnt000(self, tmp_path):
        root, path = _tree(tmp_path, """
            from ..backend import xp

            def quiet(states):
                return states * 2.0  # lint: skip=SHP001
        """)
        hits = lint_shapes([path], root=root).by_rule("LNT000")
        assert len(hits) == 1
        assert "SHP001" in hits[0].message

    def test_baseline_subtracts_known_findings(self, tmp_path):
        root, path = _tree(tmp_path, self.DIRTY)
        dirty = lint_shapes([path], root=root)
        assert dirty.by_rule("SHP001")
        baseline = tmp_path / "baseline.json"
        count = write_baseline(dirty, baseline)
        assert count == len(dirty.findings)
        clean = lint_shapes([path], root=root, baseline_path=baseline)
        assert clean.findings == []
        assert clean.metadata["baselined"] == count

    def test_stale_baseline_entry_becomes_lnt001(self, tmp_path):
        root, path = _tree(tmp_path, self.DIRTY)
        dirty = lint_shapes([path], root=root)
        baseline = tmp_path / "baseline.json"
        write_baseline(dirty, baseline)
        path.write_text("def norms(states):\n    return states * 2.0\n")
        report = lint_shapes([path], root=root, baseline_path=baseline)
        hits = report.by_rule("LNT001")
        assert hits
        assert any("SHP001" in hit.message for hit in hits)
        assert report.exceeds("warning")

    def test_corrupt_baseline_rejected(self, tmp_path):
        root, path = _tree(tmp_path, self.DIRTY)
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{not json")
        with pytest.raises(LintError, match="valid JSON"):
            lint_shapes([path], root=root, baseline_path=baseline)


class TestShapesCLI:
    def test_dirty_file_fails_on_warning(self, tmp_path, capsys):
        root, path = _tree(tmp_path, TestWaiversAndBaseline.DIRTY)
        assert main(["lint", "--shapes", str(path),
                     "--fail-on", "warning"]) == 1
        assert "SHP001" in capsys.readouterr().out

    def test_clean_subpackage_exits_zero(self, capsys):
        gpu = Path(__file__).resolve().parent.parent / "src/repro/gpu"
        assert main(["lint", "--shapes", str(gpu),
                     "--fail-on", "warning"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_write_baseline_roundtrip(self, tmp_path, capsys):
        root, path = _tree(tmp_path, TestWaiversAndBaseline.DIRTY)
        baseline = tmp_path / "shapes.json"
        assert main(["lint", "--shapes", str(path),
                     "--write-baseline", "--baseline",
                     str(baseline)]) == 0
        capsys.readouterr()
        assert json.loads(baseline.read_text())["entries"]
        assert main(["lint", "--shapes", str(path), "--baseline",
                     str(baseline), "--fail-on", "warning"]) == 0

    def test_list_rules_includes_shape_families(self, capsys):
        assert main(["lint", "--list-rules", "--format", "json"]) == 0
        rules = {entry["rule_id"]: entry
                 for entry in json.loads(capsys.readouterr().out)}
        for rule_id in SHAPE_RULES:
            assert rule_id in rules
        assert rules["SHP001"]["family"] == "shape"
        assert rules["BKD003"]["family"] == "backend"


_GENERATED_STATEMENTS = (
    "value = states * 2.0",
    "value = states + times[:, None]",
    "value = states + times",
    "value = xp.sum(states, axis=1)",
    "value = xp.sum(states, axis=0)",
    "value = xp.tensordot(states, states, axes=(0, 0))",
    "value = states.astype(xp.float32)",
    "value = states.ravel()",
    "value = states.reshape(states.shape[0], -1)",
    "value = xp.zeros((batch, n))",
    "value = states[active]",
    "value = xp.where(flag, states, 0.0)",
    "value = value + states",
    "states = states + 1.0",
    "value = xp.norm(states, axis=-1)",
    "value = xp.maximum(states, 1e-30)",
    "for row in states:\n        value = row",
    "if flag:\n        states = times",
    "value = xp.einsum('bij,bj->bi', matrices, states)",
    "value = np.linspace(0.0, 1.0, n)",
)


class TestNeverCrashes:
    @given(st.lists(st.sampled_from(_GENERATED_STATEMENTS),
                    min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_generated_kernels_lint_without_crashing(self, statements):
        source = ("import numpy as np\n"
                  "from ..backend import xp\n\n"
                  "def kernel(states, times, matrices, flag, batch, n, "
                  "active):\n")
        source += "".join(f"    {stmt}\n" for stmt in statements)
        source += "    return states\n"
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "proj"
            (root / "gpu").mkdir(parents=True)
            path = root / "gpu" / "batch_gen.py"
            path.write_text(source)
            report = lint_shapes([path], root=root)
            known = set(SHAPE_RULES) | {"LNT000", "LNT001"}
            for finding in report.findings:
                assert finding.rule_id in known


class TestRuleRegistryContract:
    def test_every_shape_rule_is_registered_with_doc(self):
        from repro.lint import rule_info
        for rule_id in SHAPE_RULES:
            info = rule_info(rule_id)
            assert info is not None
            assert info.family == ("shape" if rule_id.startswith("SHP")
                                   else "backend")
            assert info.severity in ("info", "warning", "error")
            assert len(info.doc) > 20

    def test_shape_rule_ids_are_disjoint_from_other_families(self):
        from repro.lint import DEEP_RULES, KERNEL_RULES, MODEL_RULES
        for other in (DEEP_RULES, KERNEL_RULES, MODEL_RULES):
            assert not set(SHAPE_RULES) & set(other)
