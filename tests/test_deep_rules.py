"""Seeded-regression tests for the deep rules (DET0xx / CON0xx).

Each test reintroduces a minimal version of a defect the rule exists
to prevent and asserts the analyzer catches it — including the two
real-source regressions the gate was built for: reverting the
``tensordot`` stage combination in ``batch_dopri5.py`` (the width-
stability fix) and stripping the GUARD status handling out of the
engine's quarantine path.
"""

import re
import textwrap
from pathlib import Path

import pytest

from repro.lint import DeepConfig, lint_deep
from repro.lint.deep_rules import _einsum_contracted_operands

REPO_GPU = Path(__file__).resolve().parent.parent / "src" / "repro" / "gpu"


def analyze(tmp_path, files, config=DeepConfig(), baseline=None):
    root = tmp_path / "proj"
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return lint_deep(sorted(root.rglob("*.py")), root=root,
                     config=config, baseline_path=baseline)


def rule_ids(report):
    return sorted(f.rule_id for f in report.findings)


class TestDET001:
    def test_tensordot_stage_revert_in_real_dopri5(self, tmp_path):
        """Restoring the pre-fix tensordot stage combination in the
        shipped DOPRI5 kernel must fire DET001."""
        source = (REPO_GPU / "batch_dopri5.py").read_text()
        reverted = source.replace(
            "    combined = weights[0] * stages[0]\n"
            "    for j in range(1, len(weights)):\n"
            "        combined += weights[j] * stages[j]\n"
            "    return combined",
            "    return np.tensordot(weights, stages, axes=(0, 0))")
        assert reverted != source, "stage-combination body moved; " \
            "update the revert in this test"
        report = analyze(tmp_path, {"gpu/batch_dopri5.py": reverted})
        hits = report.by_rule("DET001")
        assert hits and hits[0].severity == "error"
        assert "tensordot" in hits[0].message

    def test_shipped_kernels_are_clean(self, tmp_path):
        files = {f"gpu/{path.name}": path.read_text()
                 for path in sorted(REPO_GPU.glob("batch_*.py"))}
        report = analyze(tmp_path, files)
        assert report.by_rule("DET001") == []

    def test_matmul_operator_flagged(self, tmp_path):
        report = analyze(tmp_path, {"gpu/batch_x.py": """
            def combine(w, k):
                return w @ k
        """})
        assert rule_ids(report) == ["DET001"]

    def test_axis0_reduction_flagged(self, tmp_path):
        report = analyze(tmp_path, {"gpu/batch_x.py": """
            import numpy as np
            def total(stages):
                return np.sum(stages, axis=0)
        """})
        assert rule_ids(report) == ["DET001"]

    def test_row_contracting_einsum_flagged(self, tmp_path):
        report = analyze(tmp_path, {"gpu/batch_x.py": """
            import numpy as np
            def bad(k):
                return np.einsum("bn,bn->n", k, k)
        """})
        assert len(report.by_rule("DET001")) == 2  # both operands

    def test_batch_preserving_einsum_clean(self, tmp_path):
        report = analyze(tmp_path, {"gpu/batch_x.py": """
            import numpy as np
            def good(w, k):
                return np.einsum("s,bsn->bn", w, k)
        """})
        assert report.findings == []

    def test_einsum_optimize_flagged(self, tmp_path):
        report = analyze(tmp_path, {"gpu/batch_x.py": """
            import numpy as np
            def opt(w, k):
                return np.einsum("s,bsn->bn", w, k, optimize=True)
        """})
        assert rule_ids(report) == ["DET001"]

    def test_rule_scoped_to_kernel_globs(self, tmp_path):
        report = analyze(tmp_path, {"analysis/stats.py": """
            import numpy as np
            def variance(samples):
                return np.dot(samples, samples)
        """})
        assert report.by_rule("DET001") == []

    def test_einsum_spec_parser(self):
        assert _einsum_contracted_operands("bn,bn->n", 2) == [0, 1]
        assert _einsum_contracted_operands("s,bsn->bn", 2) == []
        assert _einsum_contracted_operands("bij,bj->bi", 2) == []
        assert _einsum_contracted_operands("ij,bjn->bin", 2) == []


class TestDET002:
    def test_out_aliasing_input_of_non_elementwise(self, tmp_path):
        report = analyze(tmp_path, {"mod.py": """
            import numpy as np
            def bad(a, b):
                np.cumsum(a, out=a)
        """})
        assert rule_ids(report) == ["DET002"]

    def test_out_aliasing_through_view(self, tmp_path):
        report = analyze(tmp_path, {"mod.py": """
            import numpy as np
            def bad(a, b):
                view = a[1:]
                np.matmul(a, b, out=view)
        """})
        assert "DET002" in rule_ids(report)

    def test_elementwise_out_aliasing_is_fine(self, tmp_path):
        report = analyze(tmp_path, {"mod.py": """
            import numpy as np
            def clamp(a):
                np.clip(a, 0.0, None, out=a)
                np.maximum(a, 0.0, out=a)
        """})
        assert report.findings == []

    def test_fresh_out_array_is_fine(self, tmp_path):
        report = analyze(tmp_path, {"mod.py": """
            import numpy as np
            def ok(a, b, scratch):
                np.matmul(a, b, out=scratch)
        """})
        assert report.findings == []


class TestDET003:
    def test_narrow_cast_feeding_accumulation(self, tmp_path):
        report = analyze(tmp_path, {"mod.py": """
            def drift(x):
                small = x.astype("float32")
                total = small + x
                return total
        """})
        assert rule_ids(report) == ["DET003"]

    def test_narrow_constructor_feeding_augassign(self, tmp_path):
        report = analyze(tmp_path, {"mod.py": """
            import numpy as np
            def drift(x):
                acc = np.float32(0.0)
                acc += x
                return acc
        """})
        assert "DET003" in rule_ids(report)

    def test_narrow_output_boundary_is_fine(self, tmp_path):
        report = analyze(tmp_path, {"mod.py": """
            def save(x):
                packed = x.astype("float32")
                return packed
        """})
        assert report.findings == []


class TestDET004:
    def test_unseeded_rng_on_campaign_path_is_error(self, tmp_path):
        report = analyze(tmp_path, {"resilience/campaign.py": """
            import numpy as np
            def run_campaign(config):
                rng = np.random.default_rng()
                return rng.random()
        """})
        hits = report.by_rule("DET004")
        assert hits and hits[0].severity == "error"

    def test_reachable_helper_inherits_error(self, tmp_path):
        report = analyze(tmp_path, {
            "resilience/campaign.py": """
                def run_campaign(config):
                    return jitter()
            """,
            "util.py": """
                import numpy as np
                def jitter():
                    return np.random.default_rng().random()
            """,
        })
        hits = report.by_rule("DET004")
        assert hits and hits[0].severity == "error"

    def test_off_path_rng_is_warning(self, tmp_path):
        report = analyze(tmp_path, {"plotting.py": """
            import numpy as np
            def scatter_colors(n):
                return np.random.rand(n)
        """})
        hits = report.by_rule("DET004")
        assert hits and hits[0].severity == "warning"

    def test_seeded_rng_is_clean(self, tmp_path):
        report = analyze(tmp_path, {"resilience/campaign.py": """
            import numpy as np
            def run_campaign(config):
                rng = np.random.default_rng(config.seed)
                return rng.random()
        """})
        assert report.by_rule("DET004") == []


class TestDET005:
    def test_wall_clock_into_fingerprint_hash(self, tmp_path):
        report = analyze(tmp_path, {"checkpoint.py": """
            import time, hashlib
            def campaign_fingerprint(t_eval):
                stamp = time.time()
                digest = hashlib.sha256()
                digest.update(str(stamp).encode())
                return digest.hexdigest()
        """})
        hits = report.by_rule("DET005")
        # The raw time.time() read also draws the boundary warning;
        # the taint flow itself must still be an error.
        assert any(hit.severity == "error" for hit in hits)

    def test_direct_wall_clock_argument(self, tmp_path):
        report = analyze(tmp_path, {"checkpoint.py": """
            import time, hashlib
            def stamp():
                return hashlib.sha256(str(time.time()).encode())
        """})
        assert "DET005" in rule_ids(report)

    def test_wall_clock_into_result_array(self, tmp_path):
        report = analyze(tmp_path, {"engine.py": """
            import time
            def record(results, row):
                finished = time.perf_counter()
                results[row] = finished
        """})
        assert "DET005" in rule_ids(report)

    #: The sanctioned clock facade every boundary test routes through.
    CLOCK = """
        import time
        def monotonic():
            return time.perf_counter()
        def walltime():
            return time.time()
    """

    def test_elapsed_seconds_attribute_is_fine(self, tmp_path):
        report = analyze(tmp_path, {
            "telemetry/clock.py": self.CLOCK,
            "engine.py": """
                from telemetry import clock
                def run(report):
                    started = clock.monotonic()
                    elapsed = clock.monotonic() - started
                    report.elapsed_seconds = elapsed
                    report.metadata.update({"elapsed": elapsed})
                    return report
            """})
        assert report.findings == []

    def test_sanctioned_clock_taints_result_arrays(self, tmp_path):
        """clock.monotonic() values are tracked exactly like time.*:
        storing one into a result array still fires DET005."""
        report = analyze(tmp_path, {
            "telemetry/clock.py": self.CLOCK,
            "engine.py": """
                from telemetry import clock
                def record(results, row):
                    finished = clock.monotonic()
                    results[row] = finished
            """})
        assert "DET005" in rule_ids(report)

    def test_sanctioned_clock_taints_checkpoint_payloads(self, tmp_path):
        report = analyze(tmp_path, {
            "telemetry/clock.py": self.CLOCK,
            "campaign.py": """
                from telemetry import clock
                def journal(checkpoint, index):
                    stamp = clock.walltime()
                    checkpoint.set_payload("when", stamp)
            """})
        assert "DET005" in rule_ids(report)

    def test_sanctioned_clock_taints_fingerprints(self, tmp_path):
        report = analyze(tmp_path, {
            "telemetry/clock.py": self.CLOCK,
            "checkpoint.py": """
                from telemetry import clock
                def campaign_fingerprint(model):
                    stamp = clock.walltime()
                    return {"model": model.name, "stamp": stamp}
            """})
        assert "DET005" in rule_ids(report)

    def test_raw_clock_outside_boundary_is_flagged(self, tmp_path):
        """A raw time.* read anywhere but the clock module is an
        untracked wall-clock source: DET005 warning."""
        report = analyze(tmp_path, {"engine.py": """
            import time
            def run(report):
                report.elapsed_seconds = time.perf_counter()
        """})
        hits = report.by_rule("DET005")
        assert hits and hits[0].severity == "warning"
        assert "boundary" in hits[0].message

    def test_clock_module_itself_is_exempt(self, tmp_path):
        report = analyze(tmp_path,
                         {"telemetry/clock.py": self.CLOCK})
        assert report.by_rule("DET005") == []


class TestDET006:
    def test_set_iteration_feeding_append(self, tmp_path):
        report = analyze(tmp_path, {"mod.py": """
            def order_rows(rows):
                pending = set(rows)
                ordered = []
                for row in pending:
                    ordered.append(row)
                return ordered
        """})
        assert rule_ids(report) == ["DET006"]

    def test_set_literal_iteration_subscript_store(self, tmp_path):
        report = analyze(tmp_path, {"mod.py": """
            def fill(out):
                for i, status in enumerate({1, 2, 3}):
                    out[i] = status
        """})
        # direct literal iteration (the enumerate wrapper hides it)
        report2 = analyze(tmp_path, {"mod2.py": """
            def fill(out, i):
                for status in {1, 2, 3}:
                    out[i] = status
        """})
        assert "DET006" in rule_ids(report2)

    def test_sorted_set_is_fine(self, tmp_path):
        report = analyze(tmp_path, {"mod.py": """
            def order_rows(rows):
                ordered = []
                for row in sorted(set(rows)):
                    ordered.append(row)
                return ordered
        """})
        assert report.by_rule("DET006") == []

    def test_membership_only_loop_is_fine(self, tmp_path):
        report = analyze(tmp_path, {"mod.py": """
            def total(rows):
                count = 0
                for row in set(rows):
                    count += 1
                return count
        """})
        assert report.by_rule("DET006") == []


class TestCON001:
    def test_guard_handler_removal_in_real_engine(self, tmp_path):
        """Stripping the GUARD re-stamping out of the engine's
        quarantine path must fire CON001 on the GUARD status code."""
        files = {
            "gpu/batch_result.py":
                (REPO_GPU / "batch_result.py").read_text(),
            "gpu/engine.py": re.sub(
                r"\bGUARD\b", "OK",
                (REPO_GPU / "engine.py").read_text()),
        }
        report = analyze(tmp_path, files)
        guard_hits = [f for f in report.by_rule("CON001")
                      if "GUARD" in f.message]
        assert guard_hits and guard_hits[0].severity == "error"

    def test_real_engine_pair_handles_guard(self, tmp_path):
        files = {
            "gpu/batch_result.py":
                (REPO_GPU / "batch_result.py").read_text(),
            "gpu/engine.py": (REPO_GPU / "engine.py").read_text(),
        }
        report = analyze(tmp_path, files)
        assert not [f for f in report.by_rule("CON001")
                    if "GUARD" in f.message]

    def test_synthetic_unhandled_status(self, tmp_path):
        report = analyze(tmp_path, {
            "result.py": """
                OK = 1
                LOST = 9
                STATUS_NAMES = {OK: "success", LOST: "lost"}
            """,
            "consumer.py": """
                from result import OK
                def is_ok(code):
                    return code == OK
            """,
        })
        hits = report.by_rule("CON001")
        assert len(hits) == 1 and "LOST" in hits[0].message


class TestCON002:
    def test_unconsumed_injection_field(self, tmp_path):
        report = analyze(tmp_path, {
            "faults.py": """
                from dataclasses import dataclass, replace

                @dataclass(frozen=True)
                class FaultPlan:
                    nan_rows: tuple = ()
                    orphan_field: int = 0

                    @property
                    def injects_nan(self):
                        return bool(self.nan_rows)

                    def for_chunk(self, offset):
                        return replace(self, nan_rows=self.nan_rows,
                                       orphan_field=self.orphan_field)
            """,
            "integrator.py": """
                def apply(plan, y):
                    if plan.injects_nan:
                        y[:] = float("nan")
            """,
        })
        hits = report.by_rule("CON002")
        assert len(hits) == 1 and "orphan_field" in hits[0].message

    def test_accessor_mediated_consumption_counts(self, tmp_path):
        report = analyze(tmp_path, {
            "faults.py": """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class FaultPlan:
                    nan_rows: tuple = ()

                    @property
                    def injects_nan(self):
                        return bool(self.nan_rows)
            """,
            "integrator.py": """
                def apply(plan, y):
                    if plan.injects_nan:
                        y[:] = float("nan")
            """,
        })
        assert report.by_rule("CON002") == []

    def test_shipped_fault_plan_fully_consumed(self, tmp_path):
        src = Path(__file__).resolve().parent.parent / "src" / "repro"
        report = lint_deep()
        assert report.by_rule("CON002") == []

    def test_orphan_scheduler_fault_field(self, tmp_path):
        """Reintroducing a sched_* fault field nothing consumes (the
        service-layer regression CON002 now guards) must fire."""
        report = analyze(tmp_path, {
            "faults.py": """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class FaultPlan:
                    sched_kill_jobs: tuple = ()
                    sched_starve_jobs: tuple = ()

                    def kills_job(self, index, attempt):
                        return index in self.sched_kill_jobs
            """,
            "service.py": """
                def supervise(plan, job):
                    if plan.kills_job(job.index, job.attempts):
                        job.fail()
            """,
        })
        hits = report.by_rule("CON002")
        assert len(hits) == 1 and "sched_starve_jobs" in hits[0].message


class TestCON003:
    def test_never_raised_exception(self, tmp_path):
        report = analyze(tmp_path, {
            "errors.py": """
                class BaseError(Exception):
                    pass

                class NeverRaised(BaseError):
                    pass
            """,
            "impl.py": """
                from errors import BaseError
                def f():
                    try:
                        raise BaseError("boom")
                    except BaseError:
                        pass
            """,
        })
        hits = report.by_rule("CON003")
        assert len(hits) == 1 and "NeverRaised" in hits[0].message

    def test_raised_but_uncaught_undocumented(self, tmp_path):
        report = analyze(tmp_path, {
            "errors.py": """
                class Orphan(Exception):
                    pass
            """,
            "impl.py": """
                from errors import Orphan
                def f():
                    raise Orphan("boom")
            """,
        })
        hits = report.by_rule("CON003")
        assert len(hits) == 1 and "Orphan" in hits[0].message

    def test_caught_via_base_class_is_fine(self, tmp_path):
        report = analyze(tmp_path, {
            "errors.py": """
                class BaseError(Exception):
                    pass

                class Leaf(BaseError):
                    pass
            """,
            "impl.py": """
                from errors import BaseError, Leaf
                def f():
                    try:
                        raise Leaf("boom")
                    except BaseError:
                        pass
            """,
        })
        assert report.by_rule("CON003") == []


class TestCON004:
    def test_stale_deep_waiver_reported(self, tmp_path):
        report = analyze(tmp_path, {"mod.py": """
            def f(x):
                # lint: skip=DET001 -- defect long gone
                return x + 1
        """})
        assert rule_ids(report) == ["CON004"]

    def test_consumed_waiver_not_reported(self, tmp_path):
        report = analyze(tmp_path, {"gpu/batch_x.py": """
            import numpy as np
            def f(w, k):
                # lint: skip=DET001 -- measured: width-stable here
                return np.tensordot(w, k, axes=(0, 0))
        """})
        assert report.findings == []
        assert report.metadata["waived"] == 1

    def test_shallow_waivers_are_not_deep_business(self, tmp_path):
        report = analyze(tmp_path, {"mod.py": """
            def f(rows, y):
                for row in rows:  # lint: skip=KRN001 -- shallow rule
                    y[row] = 0.0
        """})
        assert report.by_rule("CON004") == []
