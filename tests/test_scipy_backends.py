"""Tests for the LSODA / VODE CPU baseline wrappers."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solvers import (ScipyLSODA, ScipyVODE, SolverOptions,
                           make_cpu_baseline)


def decay(t, y):
    return -0.5 * y


@pytest.mark.parametrize("backend_class", [ScipyLSODA, ScipyVODE],
                         ids=["lsoda", "vode"])
class TestBackends:
    def test_accuracy_on_decay(self, backend_class):
        solver = backend_class(SolverOptions(rtol=1e-8, atol=1e-12))
        grid = np.linspace(0, 4, 9)
        result = solver.solve(decay, (0, 4), np.array([2.0]), grid)
        assert result.success
        assert np.allclose(result.y[:, 0], 2.0 * np.exp(-0.5 * grid),
                           atol=1e-7)

    def test_rhs_evaluations_counted(self, backend_class):
        solver = backend_class()
        result = solver.solve(decay, (0, 4), np.array([1.0]),
                              np.linspace(0, 4, 5))
        assert result.stats.n_rhs_evaluations > 0

    def test_grid_not_starting_at_zero(self, backend_class):
        solver = backend_class()
        grid = np.array([1.0, 2.0])
        result = solver.solve(decay, (0, 2), np.array([1.0]), grid)
        assert result.success
        assert np.allclose(result.y[:, 0], np.exp(-0.5 * grid), atol=1e-6)

    def test_method_name_recorded(self, backend_class):
        solver = backend_class()
        result = solver.solve(decay, (0, 1), np.array([1.0]))
        assert result.method in ("lsoda", "vode")


class TestStiff:
    def test_lsoda_handles_robertson(self):
        def robertson(t, y):
            return np.array([
                -0.04 * y[0] + 1e4 * y[1] * y[2],
                0.04 * y[0] - 1e4 * y[1] * y[2] - 3e7 * y[1] ** 2,
                3e7 * y[1] ** 2,
            ])

        solver = ScipyLSODA(SolverOptions(max_steps=100_000))
        grid = np.array([0.0, 1e2, 1e4])
        result = solver.solve(robertson, (0, 1e4), np.array([1.0, 0, 0]),
                              grid)
        assert result.success
        assert np.allclose(result.y.sum(axis=1), 1.0, atol=1e-6)


class TestFactory:
    def test_factory_names(self):
        assert isinstance(make_cpu_baseline("lsoda"), ScipyLSODA)
        assert isinstance(make_cpu_baseline("VODE"), ScipyVODE)

    def test_factory_rejects_unknown(self):
        with pytest.raises(SolverError):
            make_cpu_baseline("cvode")
