"""Unit tests for shared solver definitions (options, norms, grids,
step controller, starting-step heuristic)."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solvers import (DEFAULT_OPTIONS, SolveResult, SolverOptions,
                           SolverStats, StepController, error_norm,
                           initial_step_size, validate_time_grid)


class TestSolverOptions:
    def test_paper_defaults(self):
        assert DEFAULT_OPTIONS.rtol == 1e-6
        assert DEFAULT_OPTIONS.atol == 1e-12
        assert DEFAULT_OPTIONS.max_steps == 10_000
        assert DEFAULT_OPTIONS.stiffness_threshold == 500.0

    @pytest.mark.parametrize("kwargs", [
        {"rtol": 0.0},
        {"atol": -1.0},
        {"max_steps": 0},
        {"first_step": 0.0},
        {"min_step_factor": 1.5},
        {"max_step_factor": 0.5},
    ])
    def test_invalid_options_rejected(self, kwargs):
        with pytest.raises(SolverError):
            SolverOptions(**kwargs)

    def test_replace_creates_modified_copy(self):
        modified = DEFAULT_OPTIONS.replace(rtol=1e-3)
        assert modified.rtol == 1e-3
        assert DEFAULT_OPTIONS.rtol == 1e-6
        assert modified.atol == DEFAULT_OPTIONS.atol


class TestErrorNorm:
    def test_zero_error(self):
        y = np.array([1.0, 2.0])
        assert error_norm(np.zeros(2), y, y, DEFAULT_OPTIONS) == 0.0

    def test_norm_is_scaled_rms(self):
        options = SolverOptions(rtol=0.1, atol=0.0)
        y = np.array([1.0, 1.0])
        error = np.array([0.1, 0.1])
        # scale = 0.1 * 1 => error/scale = 1 => rms = 1.
        assert error_norm(error, y, y, options) == pytest.approx(1.0)

    def test_uses_larger_of_old_and_new_state(self):
        options = SolverOptions(rtol=0.1, atol=0.0)
        old = np.array([1.0])
        new = np.array([10.0])
        value = error_norm(np.array([0.1]), old, new, options)
        assert value == pytest.approx(0.1)   # scale from the new state


class TestTimeGrid:
    def test_default_grid_is_span(self):
        grid = validate_time_grid((0.0, 2.0), None)
        assert np.allclose(grid, [0.0, 2.0])

    def test_decreasing_span_rejected(self):
        with pytest.raises(SolverError):
            validate_time_grid((1.0, 0.0), None)

    def test_non_monotone_grid_rejected(self):
        with pytest.raises(SolverError):
            validate_time_grid((0.0, 1.0), np.array([0.0, 0.5, 0.4]))

    def test_grid_outside_span_rejected(self):
        with pytest.raises(SolverError):
            validate_time_grid((0.0, 1.0), np.array([0.0, 2.0]))

    def test_empty_grid_rejected(self):
        with pytest.raises(SolverError):
            validate_time_grid((0.0, 1.0), np.array([]))


class TestInitialStep:
    def test_reasonable_for_decay(self):
        fun = lambda t, y: -y
        y0 = np.array([1.0])
        h = initial_step_size(fun, 0.0, y0, fun(0.0, y0), order=5,
                              options=DEFAULT_OPTIONS)
        assert 1e-4 < h < 1.0

    def test_respects_max_step(self):
        options = SolverOptions(max_step=1e-5)
        fun = lambda t, y: -y
        y0 = np.array([1.0])
        h = initial_step_size(fun, 0.0, y0, fun(0.0, y0), order=5,
                              options=options)
        assert h <= 1e-5

    def test_degenerate_zero_state(self):
        fun = lambda t, y: np.zeros_like(y)
        y0 = np.zeros(2)
        h = initial_step_size(fun, 0.0, y0, fun(0.0, y0), order=5,
                              options=DEFAULT_OPTIONS)
        assert h > 0.0


class TestStepController:
    def test_zero_error_gives_max_growth(self):
        controller = StepController(4, DEFAULT_OPTIONS)
        assert controller.factor(0.0) == DEFAULT_OPTIONS.max_step_factor

    def test_large_error_gives_min_factor(self):
        controller = StepController(4, DEFAULT_OPTIONS)
        assert controller.factor(1e12) == \
            pytest.approx(DEFAULT_OPTIONS.min_step_factor)

    def test_unit_error_shrinks_by_safety(self):
        controller = StepController(4, DEFAULT_OPTIONS, use_pi=False)
        assert controller.factor(1.0) == \
            pytest.approx(DEFAULT_OPTIONS.safety)

    def test_pi_memory_damps_growth(self):
        plain = StepController(4, DEFAULT_OPTIONS, use_pi=False)
        pi = StepController(4, DEFAULT_OPTIONS, use_pi=True)
        pi.record_accepted(0.9)       # previous step was near the limit
        assert pi.factor(0.01) <= plain.factor(0.01) * 1.3


class TestStats:
    def test_merge_accumulates(self):
        first = SolverStats(n_steps=3, n_accepted=2, n_rejected=1,
                            n_rhs_evaluations=20)
        second = SolverStats(n_steps=5, n_accepted=5,
                             n_jacobian_evaluations=2, n_factorizations=4)
        first.merge(second)
        assert first.n_steps == 8
        assert first.n_accepted == 7
        assert first.n_rejected == 1
        assert first.n_rhs_evaluations == 20
        assert first.n_jacobian_evaluations == 2
        assert first.n_factorizations == 4

    def test_result_helpers(self):
        result = SolveResult(np.array([0.0, 1.0]),
                             np.array([[1.0], [0.5]]), "success")
        assert result.success
        assert result.final_state()[0] == 0.5
