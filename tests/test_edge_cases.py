"""Edge-case tests across subsystems (gaps found by review)."""

import numpy as np
import pytest

from repro.errors import FormatError, ModelError
from repro.io import read_batch, write_model
from repro.io.biosimware import _read_matrix
from repro.models import decay_chain, dimerization
from repro.rules import MoleculeType, Pattern, Rule, RuleBasedModel
from repro.solvers import SolverOptions


class TestBioSimWarePartialBatch:
    def test_batch_with_only_mx0(self, tmp_path):
        """MX_0 without cs_vector replicates the nominal constants."""
        model = dimerization()
        folder = tmp_path / "dimer"
        write_model(model, folder)
        states = np.array([[1.0, 0.0], [0.5, 0.25], [2.0, 0.1]])
        np.savetxt(folder / "MX_0", states, delimiter="\t")
        batch = read_batch(folder)
        assert batch.size == 3
        assert np.allclose(batch.initial_states, states)
        assert np.allclose(batch.rate_constants,
                           model.rate_constants()[None, :])

    def test_batch_with_only_cs_vector(self, tmp_path):
        model = dimerization()
        folder = tmp_path / "dimer"
        write_model(model, folder)
        constants = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.savetxt(folder / "cs_vector", constants, delimiter="\t")
        batch = read_batch(folder)
        assert batch.size == 2
        assert np.allclose(batch.rate_constants, constants)
        assert np.allclose(batch.initial_states,
                           model.initial_state()[None, :])

    def test_mismatched_batch_rows_rejected(self, tmp_path):
        model = dimerization()
        folder = tmp_path / "dimer"
        write_model(model, folder)
        np.savetxt(folder / "cs_vector", np.ones((2, 2)), delimiter="\t")
        np.savetxt(folder / "MX_0", np.ones((3, 2)), delimiter="\t")
        with pytest.raises(FormatError):
            read_batch(folder)

    def test_negative_stoichiometry_rejected(self, tmp_path):
        model = dimerization()
        folder = tmp_path / "dimer"
        write_model(model, folder)
        matrix = _read_matrix(folder / "left_side")
        matrix[0, 0] = -1
        np.savetxt(folder / "left_side", matrix, fmt="%d",
                   delimiter="\t")
        from repro.io import read_model
        with pytest.raises(FormatError):
            read_model(folder)


class TestRuleEdgeCases:
    def test_with_states_rejects_unknown_state(self):
        molecule = MoleculeType("A", (("p", ("u", "p")),))
        species = molecule.default_state()
        with pytest.raises(ModelError):
            species.with_states({"p": "zzz"})

    def test_rule_change_state_validated(self):
        molecule = MoleculeType("A", (("p", ("u", "p")),))
        with pytest.raises(ModelError):
            Rule("bad", Pattern(molecule), {"p": "omega"}, 1.0)

    def test_self_loop_rules_are_skipped(self):
        """A rule whose product equals its substrate emits nothing."""
        molecule = MoleculeType("A", (("p", ("u", "p")),))
        model = RuleBasedModel("loop")
        model.add_molecule_type(molecule)
        model.add_seed(molecule.species(p="p"), 1.0)
        # The rule sets p -> p on species already in state p: no-op for
        # the seeded species, so expansion must reject the empty net.
        model.add_rule(Rule("noop-ish", Pattern(molecule, {"p": "u"}),
                            {"p": "p"}, 1.0))
        with pytest.raises(ModelError):
            model.expand()

    def test_rule_model_without_rules_rejected(self):
        molecule = MoleculeType("A", ())
        model = RuleBasedModel("no-rules")
        model.add_molecule_type(molecule)
        model.add_seed(molecule.default_state(), 1.0)
        with pytest.raises(ModelError):
            model.expand()


class TestEngineEdgeCases:
    def test_single_save_point_grid(self):
        """A one-point grid (just the horizon) works on every engine."""
        from repro.core import simulate
        model = decay_chain(2)
        grid = np.array([1.0])
        for engine in ("batched", "dopri5", "radau5", "bdf"):
            result = simulate(model, (0, 1), grid, engine=engine,
                              options=SolverOptions(max_steps=50_000))
            assert result.all_success, engine
            assert result.y.shape[1] == 1

    def test_grid_with_duplicate_span_end(self):
        from repro.core import simulate
        model = decay_chain(1)
        grid = np.array([0.0, 0.5, 1.0])
        result = simulate(model, (0, 1), grid)
        assert result.all_success
        assert np.all(np.isfinite(result.y))

    def test_zero_concentration_start(self):
        """All-zero initial state with only synthesis reactions."""
        from repro.core import simulate
        from repro.model import ReactionBasedModel
        model = ReactionBasedModel("fromzero")
        model.add_species("A", 0.0)
        model.add("0 -> A @ 1.0")
        result = simulate(model, (0, 2), np.linspace(0, 2, 5))
        assert result.all_success
        assert np.allclose(result.y[0, :, 0], np.linspace(0, 2, 5),
                           atol=1e-6)

    def test_batch_of_one(self):
        from repro.core import simulate
        model = decay_chain(1)
        result = simulate(model, (0, 1), np.array([0.0, 1.0]),
                          model.batch(1))
        assert result.batch_size == 1
        assert result.all_success
