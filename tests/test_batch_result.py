"""Tests for the batch result container."""

import numpy as np
import pytest

from repro.gpu.batch_result import (BROKEN, EXHAUSTED, METHOD_DOPRI5,
                                    METHOD_RADAU5, OK, RUNNING,
                                    BatchSolveResult, allocate_result)


@pytest.fixture
def fresh():
    return allocate_result(np.linspace(0, 1, 4), batch_size=3, n_species=2,
                           method_code=METHOD_DOPRI5)


class TestAllocation:
    def test_shapes_and_defaults(self, fresh):
        assert fresh.y.shape == (3, 4, 2)
        assert np.all(np.isnan(fresh.y))
        assert np.all(fresh.status_codes == RUNNING)
        assert fresh.batch_size == 3
        assert fresh.n_species == 2

    def test_statuses_and_methods(self, fresh):
        fresh.status_codes[:] = [OK, EXHAUSTED, BROKEN]
        assert fresh.statuses() == ["success", "max_steps", "failed"]
        assert fresh.methods() == ["dopri5"] * 3

    def test_success_mask_and_all_success(self, fresh):
        fresh.status_codes[:] = OK
        assert fresh.all_success
        fresh.status_codes[1] = BROKEN
        assert not fresh.all_success
        assert fresh.success_mask.tolist() == [True, False, True]

    def test_trajectory_and_final_states(self, fresh):
        fresh.y[:] = np.arange(24.0).reshape(3, 4, 2)
        assert fresh.trajectory(1).shape == (4, 2)
        assert np.allclose(fresh.final_states()[0], [6.0, 7.0])


class TestMergeRows:
    def test_merge_overwrites_selected_rows(self, fresh):
        part = allocate_result(fresh.t, batch_size=2, n_species=2,
                               method_code=METHOD_RADAU5)
        part.y[:] = 7.0
        part.status_codes[:] = OK
        part.n_steps[:] = 11
        rows = np.array([0, 2])
        fresh.merge_rows(part, rows)
        assert np.all(fresh.y[rows] == 7.0)
        assert np.all(np.isnan(fresh.y[1]))
        assert fresh.status_codes.tolist() == [OK, RUNNING, OK]
        assert fresh.method_codes.tolist() == [METHOD_RADAU5,
                                               METHOD_DOPRI5,
                                               METHOD_RADAU5]
        assert fresh.n_steps.tolist() == [11, 0, 11]

    def test_merge_accumulates_distinct_counter_accounts(self, fresh):
        part = allocate_result(fresh.t, batch_size=2, n_species=2,
                               method_code=METHOD_RADAU5)
        fresh.counters.rhs_kernel_launches = 10
        part.counters.rhs_kernel_launches = 5
        fresh.merge_rows(part, np.array([0, 2]))
        assert fresh.counters.rhs_kernel_launches == 15

    def test_merge_shared_counter_account_not_double_counted(self, fresh):
        # The engine threads ONE KernelCounters through every launch
        # chunk and retry subset; merging a chunk that shares the
        # account used to add the totals onto themselves.
        part = allocate_result(fresh.t, batch_size=2, n_species=2,
                               method_code=METHOD_RADAU5)
        part.counters = fresh.counters
        fresh.counters.rhs_kernel_launches = 10
        fresh.counters.newton_iterations = 4
        fresh.merge_rows(part, np.array([0, 2]))
        assert fresh.counters.rhs_kernel_launches == 10
        assert fresh.counters.newton_iterations == 4


class TestMasksAndTakeRows:
    def test_failed_mask_complements_success_mask(self, fresh):
        fresh.status_codes[:] = [OK, BROKEN, EXHAUSTED]
        assert fresh.failed_mask.tolist() == [False, True, True]
        assert np.array_equal(fresh.failed_mask, ~fresh.success_mask)

    def test_take_rows_copies_subset_with_fresh_counters(self, fresh):
        fresh.y[:] = np.arange(24.0).reshape(3, 4, 2)
        fresh.status_codes[:] = [OK, BROKEN, OK]
        fresh.n_steps[:] = [3, 5, 7]
        fresh.counters.rhs_kernel_launches = 9
        part = fresh.take_rows(np.array([0, 2]))
        assert part.batch_size == 2
        assert np.array_equal(part.y, fresh.y[[0, 2]])
        assert part.status_codes.tolist() == [OK, OK]
        assert part.n_steps.tolist() == [3, 7]
        assert part.counters is not fresh.counters
        assert part.counters.rhs_kernel_launches == 0
        part.y[:] = -1.0
        assert np.all(fresh.y[0] == np.arange(8.0).reshape(4, 2))
