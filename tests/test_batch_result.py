"""Tests for the batch result container."""

import numpy as np
import pytest

from repro.gpu.batch_result import (BROKEN, EXHAUSTED, METHOD_DOPRI5,
                                    METHOD_RADAU5, OK, RUNNING,
                                    BatchSolveResult, allocate_result)


@pytest.fixture
def fresh():
    return allocate_result(np.linspace(0, 1, 4), batch_size=3, n_species=2,
                           method_code=METHOD_DOPRI5)


class TestAllocation:
    def test_shapes_and_defaults(self, fresh):
        assert fresh.y.shape == (3, 4, 2)
        assert np.all(np.isnan(fresh.y))
        assert np.all(fresh.status_codes == RUNNING)
        assert fresh.batch_size == 3
        assert fresh.n_species == 2

    def test_statuses_and_methods(self, fresh):
        fresh.status_codes[:] = [OK, EXHAUSTED, BROKEN]
        assert fresh.statuses() == ["success", "max_steps", "failed"]
        assert fresh.methods() == ["dopri5"] * 3

    def test_success_mask_and_all_success(self, fresh):
        fresh.status_codes[:] = OK
        assert fresh.all_success
        fresh.status_codes[1] = BROKEN
        assert not fresh.all_success
        assert fresh.success_mask.tolist() == [True, False, True]

    def test_trajectory_and_final_states(self, fresh):
        fresh.y[:] = np.arange(24.0).reshape(3, 4, 2)
        assert fresh.trajectory(1).shape == (4, 2)
        assert np.allclose(fresh.final_states()[0], [6.0, 7.0])


class TestMergeRows:
    def test_merge_overwrites_selected_rows(self, fresh):
        part = allocate_result(fresh.t, batch_size=2, n_species=2,
                               method_code=METHOD_RADAU5)
        part.y[:] = 7.0
        part.status_codes[:] = OK
        part.n_steps[:] = 11
        rows = np.array([0, 2])
        fresh.merge_rows(part, rows)
        assert np.all(fresh.y[rows] == 7.0)
        assert np.all(np.isnan(fresh.y[1]))
        assert fresh.status_codes.tolist() == [OK, RUNNING, OK]
        assert fresh.method_codes.tolist() == [METHOD_RADAU5,
                                               METHOD_DOPRI5,
                                               METHOD_RADAU5]
        assert fresh.n_steps.tolist() == [11, 0, 11]
