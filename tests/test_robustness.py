"""Failure injection, fuzzing and rendering robustness tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import Timer, format_table, measure, speedup
from repro.core import (ParameterRange, SweepTarget, amplitude_metric,
                        run_psa_2d, simulate)
from repro.errors import AnalysisError
from repro.gpu import BatchDopri5, BatchedODEProblem
from repro.gpu.batch_result import BROKEN
from repro.model import (ODESystem, ParameterizationBatch,
                         ReactionBasedModel, parse_expression)
from repro.model.ratelaws import Constant, Variable
from repro.models import brusselator, lotka_volterra
from repro.solvers import SolverOptions


class TestBlowupHandling:
    """Diverging dynamics must fail cleanly, not poison the batch."""

    def make_explosive_batch(self):
        # Y1 -> 2 Y1 grows exponentially; extreme constants diverge
        # within the horizon while mild ones stay integrable.
        model = ReactionBasedModel("explosive")
        model.add_species("A", 1.0)
        model.add("A -> 2 A @ 1.0")
        system = ODESystem.from_model(model)
        constants = np.array([[1.0], [60.0]])
        states = np.array([[1.0], [1.0]])
        return BatchedODEProblem(
            system, ParameterizationBatch(constants, states))

    def test_partial_batch_failure_is_isolated(self):
        problem = self.make_explosive_batch()
        result = BatchDopri5(SolverOptions(max_steps=3000)).solve(
            problem, (0, 12), np.linspace(0, 12, 4))
        statuses = result.statuses()
        assert statuses[0] == "success"
        assert statuses[1] in ("failed", "max_steps")
        # The sane simulation's trajectory is intact.
        assert np.allclose(result.y[0, :, 0],
                           np.exp(np.linspace(0, 12, 4)), rtol=1e-4)

    def test_facade_reports_mixed_statuses(self):
        model = ReactionBasedModel("explosive")
        model.add_species("A", 1.0)
        model.add("A -> 2 A @ 1.0")
        batch = ParameterizationBatch(np.array([[1.0], [60.0]]),
                                      np.array([[1.0], [1.0]]))
        result = simulate(model, (0, 12), np.linspace(0, 12, 4), batch,
                          options=SolverOptions(max_steps=3000))
        assert not result.all_success
        assert "success" in result.statuses()


class TestExpressionFuzz:
    @settings(deadline=None)
    @given(st.recursive(
        st.one_of(
            st.floats(0.1, 10.0).map(Constant),
            st.sampled_from(["S", "A", "k"]).map(Variable),
        ),
        lambda children: st.builds(
            lambda a, b, op: op(a, b),
            children, children,
            st.sampled_from([
                __import__("repro.model.ratelaws",
                           fromlist=["Add"]).Add,
                __import__("repro.model.ratelaws",
                           fromlist=["Mul"]).Mul,
                __import__("repro.model.ratelaws",
                           fromlist=["Sub"]).Sub,
            ])),
        max_leaves=8,
    ))
    def test_print_parse_round_trip(self, expression):
        """str(expr) re-parses to an expression with equal values."""
        rendered = str(expression)
        reparsed = parse_expression(rendered)
        values = {"S": np.asarray(1.7), "A": np.asarray(0.4),
                  "k": np.asarray(2.2)}
        assert float(reparsed.evaluate(values)) == pytest.approx(
            float(expression.evaluate(values)), rel=1e-12)

    @settings(deadline=None)
    @given(st.text(max_size=12))
    def test_parser_never_crashes_unexpectedly(self, text):
        """Arbitrary junk either parses or raises ParseError."""
        from repro.errors import ParseError
        try:
            parse_expression(text)
        except ParseError:
            pass


class TestRenderMap:
    def test_ascii_map_structure(self):
        model = brusselator()
        tx = SweepTarget.rate_constant(model, 0, ParameterRange(0.6, 1.4))
        ty = SweepTarget.rate_constant(model, 2, ParameterRange(0.6, 4.0))
        psa = run_psa_2d(model, tx, ty, 4, 5, (0, 40),
                         np.linspace(0, 40, 201),
                         metric=amplitude_metric(model, "X"),
                         options=SolverOptions(max_steps=200_000))
        rendered = psa.render_map()
        lines = rendered.splitlines()
        assert len(lines) == 1 + 5            # header + ny rows
        assert all(len(line.split("|")[1]) == 4 for line in lines[1:])

    def test_render_requires_metric(self):
        model = lotka_volterra()
        tx = SweepTarget.rate_constant(model, 0, ParameterRange(0.5, 1.5))
        ty = SweepTarget.rate_constant(model, 1, ParameterRange(0.05, 0.2))
        psa = run_psa_2d(model, tx, ty, 2, 2, (0, 5),
                         np.array([0.0, 5.0]))
        with pytest.raises(AnalysisError):
            psa.render_map()


class TestBenchHelpers:
    def test_timer_measures(self):
        with Timer() as timer:
            sum(range(1000))
        assert timer.elapsed >= 0.0

    def test_measure_returns_minimum(self):
        assert measure(lambda: None, repeat=3) >= 0.0

    def test_speedup(self):
        assert speedup(2.0, 1.0) == 2.0
        assert speedup(1.0, 0.0) == float("inf")

    def test_format_table_alignment(self):
        table = format_table(["name", "value"],
                             [("alpha", 1.0), ("b", 123456.0)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines[:1] + lines[2:])) == 1
