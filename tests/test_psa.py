"""Tests for parameter sweep analysis (PSA-1D / PSA-2D)."""

import numpy as np
import pytest

from repro.core import (ParameterRange, SweepTarget, amplitude_metric,
                        build_sweep_batch, endpoint_metric, run_psa_1d,
                        run_psa_2d)
from repro.errors import AnalysisError
from repro.models import brusselator, decay_chain, oscillates
from repro.solvers import SolverOptions


class TestSweepTargets:
    def test_rate_constant_target(self, chain_model):
        target = SweepTarget.rate_constant(chain_model, 0,
                                           ParameterRange(0.1, 1.0))
        assert target.label == "k[0]"

    def test_out_of_range_reaction_rejected(self, chain_model):
        with pytest.raises(AnalysisError):
            SweepTarget.rate_constant(chain_model, 99,
                                      ParameterRange(0.1, 1.0))

    def test_initial_concentration_target(self, chain_model):
        target = SweepTarget.initial_concentration(
            chain_model, "X0", ParameterRange(1.0, 10.0))
        assert "X0" in target.label

    def test_unknown_species_rejected(self, chain_model):
        with pytest.raises(Exception):
            SweepTarget.initial_concentration(chain_model, "nope",
                                              ParameterRange(0, 1))

    def test_rate_scale_target(self, chain_model):
        target = SweepTarget.rate_scale(chain_model, [0, 1, 2],
                                        ParameterRange(0.5, 2.0), "P9")
        assert target.label == "P9"
        with pytest.raises(AnalysisError):
            SweepTarget.rate_scale(chain_model, [], ParameterRange(0.5, 2))


class TestBuildBatch:
    def test_rate_constant_column(self, chain_model):
        target = SweepTarget.rate_constant(chain_model, 1,
                                           ParameterRange(0.1, 1.0))
        values = np.array([[0.25], [0.75]])
        batch = build_sweep_batch(chain_model, [target], values)
        assert batch.rate_constants[0, 1] == 0.25
        assert batch.rate_constants[1, 1] == 0.75
        # Other constants keep nominal values.
        nominal = chain_model.rate_constants()
        assert batch.rate_constants[0, 0] == nominal[0]

    def test_initial_concentration_column(self, chain_model):
        target = SweepTarget.initial_concentration(
            chain_model, "X0", ParameterRange(1.0, 5.0))
        batch = build_sweep_batch(chain_model, [target],
                                  np.array([[2.0], [4.0]]))
        assert batch.initial_states[0, 0] == 2.0
        assert batch.initial_states[1, 0] == 4.0

    def test_rate_scale_multiplies_group(self, chain_model):
        nominal = chain_model.rate_constants()
        target = SweepTarget.rate_scale(chain_model, [0, 2],
                                        ParameterRange(0.5, 2.0))
        batch = build_sweep_batch(chain_model, [target],
                                  np.array([[2.0]]))
        assert batch.rate_constants[0, 0] == pytest.approx(2 * nominal[0])
        assert batch.rate_constants[0, 2] == pytest.approx(2 * nominal[2])
        assert batch.rate_constants[0, 1] == pytest.approx(nominal[1])

    def test_column_count_mismatch_rejected(self, chain_model):
        target = SweepTarget.rate_constant(chain_model, 0,
                                           ParameterRange(0.1, 1.0))
        with pytest.raises(AnalysisError):
            build_sweep_batch(chain_model, [target], np.ones((2, 2)))


class TestPSA1D:
    def test_endpoint_monotone_in_decay_rate(self):
        model = decay_chain(1)
        target = SweepTarget.rate_constant(model, 0,
                                           ParameterRange(0.1, 2.0))
        result = run_psa_1d(model, target, 8, (0, 1),
                            np.array([0.0, 1.0]),
                            metric=endpoint_metric(model, "X0"))
        assert result.n_points == 8
        assert result.simulation.all_success
        # Faster decay -> lower X0 endpoint: strictly decreasing metric.
        assert np.all(np.diff(result.metric_values) < 0)

    def test_without_metric(self):
        model = decay_chain(1)
        target = SweepTarget.rate_constant(model, 0,
                                           ParameterRange(0.1, 2.0))
        result = run_psa_1d(model, target, 4, (0, 1))
        assert result.metric_values is None


class TestPSA2D:
    def test_brusselator_amplitude_map_matches_hopf_boundary(self):
        model = brusselator()
        target_a = SweepTarget.rate_constant(model, 0,
                                             ParameterRange(0.6, 1.8))
        target_b = SweepTarget.rate_constant(model, 2,
                                             ParameterRange(0.6, 5.5))
        grid = np.linspace(0, 60, 301)
        result = run_psa_2d(model, target_a, target_b, 6, 6, (0, 60), grid,
                            metric=amplitude_metric(model, "X"),
                            options=SolverOptions(max_steps=100_000))
        assert result.metric_map.shape == (6, 6)
        assert result.simulation.all_success
        agreement = 0
        for i, a in enumerate(result.values_x):
            for j, b in enumerate(result.values_y):
                predicted = oscillates(a, b)
                observed = result.metric_map[i, j] > 0
                agreement += predicted == observed
        # The analytic Hopf boundary b = 1 + a^2 must match almost all
        # cells (boundary cells may disagree).
        assert agreement >= 30

    def test_grid_ordering_is_row_major(self):
        model = decay_chain(1)
        tx = SweepTarget.rate_constant(model, 0, ParameterRange(0.1, 1.0))
        ty = SweepTarget.initial_concentration(model, "X0",
                                               ParameterRange(1.0, 2.0))
        result = run_psa_2d(model, tx, ty, 2, 3, (0, 1),
                            np.array([0.0, 1.0]))
        batch = result.simulation.raw
        assert batch.batch_size == 6
        # First three rows share values_x[0].
        assert result.n_points == 6
