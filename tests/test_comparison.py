"""Tests for the simulator comparison-map harness."""

import numpy as np
import pytest

from repro.core import (CellTiming, MAP_ENGINES, run_comparison_map,
                        time_engine)
from repro.errors import AnalysisError
from repro.models import decay_chain
from repro.solvers import SolverOptions
from repro.synth import generate_symmetric


class TestCellTiming:
    def test_best_engine(self):
        cell = CellTiming("m", 4, seconds={"a": 2.0, "b": 0.5, "c": 1.0})
        assert cell.best_engine == "b"

    def test_speedup_over_baseline(self):
        cell = CellTiming("m", 4, seconds={"lsoda": 2.0, "batched": 0.5})
        speedups = cell.speedup_over("lsoda")
        assert speedups["batched"] == pytest.approx(4.0)
        assert speedups["lsoda"] == pytest.approx(1.0)

    def test_missing_baseline_rejected(self):
        cell = CellTiming("m", 4, seconds={"a": 1.0})
        with pytest.raises(AnalysisError):
            cell.speedup_over("lsoda")


class TestTimeEngine:
    def test_batched_engine_timed(self):
        model = decay_chain(2)
        seconds, extrapolated = time_engine(
            model, "batched-hybrid", 8, (0, 1), np.array([0.0, 1.0]))
        assert seconds > 0
        assert not extrapolated

    def test_sequential_engine_timed(self):
        model = decay_chain(2)
        seconds, extrapolated = time_engine(
            model, "lsoda", 4, (0, 1), np.array([0.0, 1.0]))
        assert seconds > 0
        assert not extrapolated

    def test_budget_extrapolation(self):
        model = generate_symmetric(16, seed=0)
        seconds, extrapolated = time_engine(
            model, "lsoda", 256, (0, 2), np.array([0.0, 2.0]),
            options=SolverOptions(max_steps=100_000),
            time_budget_seconds=0.05)
        assert extrapolated
        assert seconds > 0.05

    def test_unknown_engine_rejected(self):
        with pytest.raises(AnalysisError):
            time_engine(decay_chain(2), "abacus", 2, (0, 1),
                        np.array([0.0, 1.0]))


class TestComparisonMap:
    def test_map_structure_and_rendering(self):
        models = [("8x8", generate_symmetric(8, seed=1)),
                  ("16x16", generate_symmetric(16, seed=1))]
        comparison = run_comparison_map(
            models, [1, 8], (0, 0.5), np.array([0.0, 0.5]),
            engines=("lsoda", "batched-hybrid"),
            options=SolverOptions(max_steps=50_000))
        grid = comparison.best_grid()
        assert len(grid) == 2 and len(grid[0]) == 2
        for row in grid:
            for winner in row:
                assert winner in ("lsoda", "batched-hybrid")
        rendered = comparison.render()
        assert "8x8" in rendered and "16x16" in rendered

    def test_batched_wins_large_batches(self):
        """The paper's headline shape: at large batch sizes the batched
        engine beats the sequential CPU loop."""
        model = generate_symmetric(16, seed=2)
        comparison = run_comparison_map(
            [("16x16", model)], [64], (0, 1), np.array([0.0, 1.0]),
            engines=("lsoda", "batched-hybrid"),
            options=SolverOptions(max_steps=50_000))
        assert comparison.best("16x16", 64) == "batched-hybrid"
