"""Live telemetry: metrics hub, Prometheus exposition, SLO tracking,
the /metrics endpoint, ``repro top`` and the trace-summary rollups."""

import asyncio
import textwrap
import threading
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

from repro.cli import main
from repro.errors import ServiceError, TelemetryError
from repro.io import write_model
from repro.lint import ConcConfig, lint_conc
from repro.models import lotka_volterra
from repro.service import (Client, ServiceConfig, TenantSLO,
                           scrape_metrics)
from repro.service.server import serve_async
from repro.telemetry import (Histogram, MetricsHub, MetricsRegistry,
                             SLOTracker, Subscription, Tracer, labeled,
                             parse_prometheus_text, phase_family,
                             render_prometheus, render_summary,
                             split_labels, summarize_tenants,
                             write_trace_jsonl)
from repro.telemetry.clock import FakeClock

LIVE_PY = (Path(__file__).resolve().parent.parent / "src" / "repro"
           / "telemetry" / "live.py")


def span(category="phase", name="compile", duration=0.5, **attrs):
    """A close-event lookalike: on_span only reads these four fields."""
    return SimpleNamespace(category=category, name=name,
                           duration=duration, attrs=attrs)


class TestHistogramQuantile:
    def test_single_value_is_every_quantile(self):
        histogram = Histogram()
        histogram.observe(37.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == 37.0

    def test_quantiles_are_ordered_and_bounded(self):
        histogram = Histogram()
        values = [1, 3, 9, 40, 200, 3000, 70000]
        for value in values:
            histogram.observe(value)
        quantiles = [histogram.quantile(q)
                     for q in (0.1, 0.5, 0.9, 0.99)]
        assert quantiles == sorted(quantiles)
        assert min(values) <= quantiles[0]
        assert quantiles[-1] <= max(values)

    def test_skewed_mass_moves_the_median(self):
        histogram = Histogram()
        for _ in range(99):
            histogram.observe(2.0)
        histogram.observe(1.0e6)
        assert histogram.quantile(0.5) < 10.0
        assert histogram.quantile(1.0) > 1.0e5


class TestPhaseFamily:
    @pytest.mark.parametrize("name,family", [
        ("launch-3", "launch"), ("rung-0", "rung"),
        ("compile", "compile"), ("compile#2", "compile"),
        ("launch-12#4", "launch"), ("dense-output", "dense-output")])
    def test_families(self, name, family):
        assert phase_family(name) == family


class TestSubscription:
    def test_rejects_unbuffered(self):
        with pytest.raises(TelemetryError):
            Subscription(maxsize=0)

    def test_bounded_drop_accounting(self):
        subscription = Subscription(maxsize=8)
        for index in range(100):
            subscription.deliver({"index": index})
        assert subscription.queued == 8
        assert subscription.delivered == 8
        assert subscription.dropped == 92
        # The retained events are the oldest eight, in order.
        assert [event["index"] for event in subscription.drain()] \
            == list(range(8))
        assert subscription.get() is None


class TestMetricsHub:
    def test_tracer_spans_reach_the_windows(self):
        hub = MetricsHub(clock=FakeClock(tick=0.001))
        tracer = Tracer(clock=FakeClock())
        hub.attach(tracer)
        root = tracer.start("launch-0", "launch")
        tracer.end(tracer.start("compile", "phase", parent=root))
        tracer.end(root)
        snapshot = hub.snapshot()
        assert snapshot["spans_seen"] == 2
        assert snapshot["categories"]["launch"]["n"] == 1
        assert snapshot["phases"]["compile"]["n"] == 1
        assert snapshot["phases"]["compile"]["p50"] == \
            pytest.approx(1.0, rel=0.5)
        hub.detach()
        tracer.end(tracer.start("launch-1", "launch"))
        assert hub.spans_seen == 2

    def test_tenant_rollup(self):
        hub = MetricsHub(clock=FakeClock(tick=0.0))
        hub.on_span(span("job", "job-0", 2.0, tenant="acme",
                         state="completed", wait_seconds=0.5))
        hub.on_span(span("job", "job-1", 1.0, tenant="acme",
                         state="shed", reason="deadline"))
        tenants = hub.snapshot()["tenants"]
        assert tenants["acme"]["outcomes"] == {"completed": 1, "shed": 1}
        assert tenants["acme"]["latency"]["n"] == 2
        assert tenants["acme"]["wait"]["n"] == 1

    def test_window_rotation_forgets_old_epochs(self):
        clock = FakeClock(tick=0.0)
        hub = MetricsHub(window_seconds=10.0, clock=clock)
        hub.on_span(span(duration=1.0))
        clock.now = 5.0
        hub.on_span(span(duration=1.0))
        stats = hub.snapshot()["phases"]["compile"]
        assert stats["n"] == 2
        # One rotation: the old epoch still backs the merged view.
        clock.now = 12.0
        hub.on_span(span(duration=1.0))
        stats = hub.snapshot()["phases"]["compile"]
        assert stats["n"] == 3
        # Far future: both epochs rotate out, lifetime_n survives.
        clock.now = 40.0
        stats = hub.snapshot()["phases"]["compile"]
        assert stats["n"] == 0
        assert stats["lifetime_n"] == 3
        assert stats["p50"] is None

    def test_counter_rates_from_successive_snapshots(self):
        clock = FakeClock(tick=0.0)
        hub = MetricsHub(clock=clock)
        registry = MetricsRegistry()
        registry.count("service.jobs.admitted", 10)
        hub.ingest_registry(registry)
        registry.count("service.jobs.admitted", 30)
        clock.now = 10.0
        hub.ingest_registry(registry)
        snapshot = hub.snapshot()
        assert snapshot["counters"]["service.jobs.admitted"] == 40
        assert snapshot["rates"]["service.jobs.admitted"] == \
            pytest.approx(3.0)

    def test_rejects_degenerate_window(self):
        with pytest.raises(TelemetryError):
            MetricsHub(window_seconds=0.0)

    def test_subscription_fanout_and_unsubscribe(self):
        hub = MetricsHub(clock=FakeClock(tick=0.0))
        subscription = hub.subscribe(maxsize=4)
        hub.on_span(span("job", "job-0", 1.0, tenant="acme",
                         state="completed"))
        events = subscription.drain()
        assert events == [{"kind": "span", "category": "job",
                           "name": "job-0", "duration_seconds": 1.0,
                           "tenant": "acme", "state": "completed"}]
        hub.unsubscribe(subscription)
        hub.on_span(span())
        assert subscription.drain() == []


class TestHubConcurrency:
    THREADS = 8
    SPANS_PER_THREAD = 300

    def test_no_lost_increments_under_concurrent_writers(self):
        hub = MetricsHub(clock=FakeClock(tick=1.0e-6))
        subscription = hub.subscribe(maxsize=64)
        barrier = threading.Barrier(self.THREADS)

        def storm(tenant):
            barrier.wait()
            for index in range(self.SPANS_PER_THREAD):
                hub.on_span(span("job", f"job-{index}", 0.01,
                                 tenant=tenant, state="completed"))

        threads = [threading.Thread(target=storm, args=(f"t{n}",))
                   for n in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = self.THREADS * self.SPANS_PER_THREAD
        snapshot = hub.snapshot()
        assert snapshot["spans_seen"] == total
        assert snapshot["categories"]["job"]["lifetime_n"] == total
        per_tenant = [entry["outcomes"]["completed"]
                      for entry in snapshot["tenants"].values()]
        assert per_tenant == [self.SPANS_PER_THREAD] * self.THREADS
        # The saturated subscriber conserves events: every publish
        # either landed in the queue or was counted as dropped.
        assert subscription.delivered + subscription.dropped == total
        assert subscription.queued <= 64


class TestHubLockDiscipline:
    """The conc linter guards the hub's lock discipline: these tests
    prove the guard actually trips when the discipline is broken."""

    def analyze(self, tmp_path, source):
        root = tmp_path / "proj"
        path = root / "telemetry" / "live.py"
        path.parent.mkdir(parents=True)
        path.write_text(source)
        (root / "telemetry" / "metrics.py").write_text(textwrap.dedent(
            """
            class Histogram:
                pass

            class MetricsRegistry:
                pass
            """))
        report = lint_conc(sorted(root.rglob("*.py")), root=root,
                           config=ConcConfig())
        return {finding.rule_id for finding in report.findings}

    def test_shipped_hub_is_clean(self, tmp_path):
        assert "CNC005" not in self.analyze(tmp_path,
                                            LIVE_PY.read_text())

    def test_removing_the_ingest_lock_is_caught(self, tmp_path):
        source = LIVE_PY.read_text()
        locked = ("        with self._lock:\n"
                  "            self._subscriptions = "
                  "(*self._subscriptions, subscription)\n")
        unlocked = ("        self._subscriptions = "
                    "(*self._subscriptions, subscription)\n")
        assert locked in source, "subscribe() changed; update this test"
        assert "CNC005" in self.analyze(tmp_path,
                                        source.replace(locked, unlocked))


class TestPrometheus:
    def test_labeled_round_trip(self):
        name = labeled("service.tenant.admitted", tenant="acme",
                       state="completed")
        base, labels = split_labels(name)
        assert base == "service.tenant.admitted"
        assert labels == {"state": "completed", "tenant": "acme"}
        assert split_labels("plain.metric") == ("plain.metric", {})

    def test_render_and_parse_round_trip(self):
        registry = MetricsRegistry()
        registry.count("service.jobs.admitted", 7)
        registry.count(labeled("service.tenant.admitted",
                               tenant="acme"), 5)
        registry.gauge("service.queue.depth", 3.0)
        for value in (1.0, 10.0, 100.0):
            registry.observe("service.queue.depth_samples", value)
        hub = MetricsHub(clock=FakeClock(tick=0.5))
        hub.on_span(span("job", "job-0", 0.25, tenant="acme",
                         state="completed"))
        text = render_prometheus([registry], hub.snapshot())
        samples = parse_prometheus_text(text)
        flat = {(name, tuple(sorted(labels.items()))): value
                for name, entries in samples.items()
                for labels, value in entries}
        assert flat[("repro_service_jobs_admitted_total", ())] == 7.0
        assert flat[("repro_service_tenant_admitted_total",
                     (("tenant", "acme"),))] == 5.0
        assert flat[("repro_service_queue_depth", ())] == 3.0
        assert flat[("repro_service_queue_depth_samples_count", ())] \
            == 3.0
        assert flat[("repro_live_job_outcomes_total",
                     (("state", "completed"),
                      ("tenant", "acme")))] == 1.0
        # Histogram buckets are cumulative and end at +Inf.
        buckets = [(labels["le"], value) for labels, value
                   in samples["repro_service_queue_depth_samples_bucket"]]
        assert buckets[-1][0] == "+Inf"
        counts = [value for _le, value in buckets]
        assert counts == sorted(counts)

    def test_parse_rejects_garbage(self):
        with pytest.raises(TelemetryError):
            parse_prometheus_text("what even is this line\n")


class TestSLOTracker:
    def make(self, slo, **kwargs):
        clock = FakeClock(tick=0.0)
        metrics = MetricsRegistry()
        tracer = Tracer(clock=FakeClock())
        tracker = SLOTracker(default_slo=slo, metrics=metrics,
                             tracer=tracer, clock=clock, **kwargs)
        return tracker, metrics, tracer, clock

    def test_breach_fires_once_and_rearms(self):
        slo = TenantSLO(target=0.5, min_events=2, breach_burn_rate=1.0)
        tracker, metrics, tracer, _clock = self.make(slo)
        assert not tracker.observe("acme", "completed")
        assert tracker.observe("acme", "shed", "deadline")
        # Already breached: a further miss does not re-fire.
        assert not tracker.observe("acme", "shed", "deadline")
        # Enough good events re-arm the breach...
        for _ in range(6):
            tracker.observe("acme", "completed")
        assert not tracker.snapshot()["acme"]["breached"]
        # ...and a new bad stretch fires a second breach.
        fired = [tracker.observe("acme", "quarantined")
                 for _ in range(8)]
        assert any(fired)
        snapshot = tracker.snapshot()["acme"]
        assert snapshot["breaches"] == 2
        assert metrics.counters[labeled("service.slo.breaches",
                                        tenant="acme")] == 2
        assert metrics.gauges[labeled("service.slo.burn_rate",
                                      tenant="acme")] > 1.0
        breach_spans = [s for s in tracer.spans if s.name == "SLO_BREACH"]
        assert len(breach_spans) == 2
        assert breach_spans[0].category == "service"
        assert breach_spans[0].attrs["tenant"] == "acme"

    def test_latency_objective_and_ignored_states(self):
        slo = TenantSLO(latency_objective_seconds=1.0, target=0.5,
                        min_events=1)
        tracker, _metrics, _tracer, _clock = self.make(slo)
        tracker.observe("acme", "cancelled")
        tracker.observe("acme", "rejected")
        assert tracker.snapshot() == {}  # ignored states open no window
        tracker.observe("acme", "completed", latency_seconds=0.2)
        assert tracker.burn_rate("acme") == 0.0
        fired = tracker.observe("acme", "completed", latency_seconds=5.0)
        assert fired  # slow completion burns budget
        assert tracker.burn_rate("acme") == pytest.approx(1.0)

    def test_window_prunes_old_events(self):
        slo = TenantSLO(target=0.5, window_seconds=10.0, min_events=1)
        tracker, _metrics, _tracer, clock = self.make(slo)
        tracker.observe("acme", "shed", "deadline")
        assert tracker.burn_rate("acme") == pytest.approx(2.0)
        clock.now = 100.0
        assert tracker.burn_rate("acme") == 0.0

    def test_untracked_tenant_is_free(self):
        tracker = SLOTracker(slos={"acme": TenantSLO()})
        assert not tracker.observe("other", "shed", "deadline")
        assert tracker.burn_rate("other") == 0.0

    def test_deadline_incomplete_completion_is_a_miss(self):
        slo = TenantSLO(target=0.5, min_events=1)
        assert slo.is_miss("completed", "deadline-incomplete", None)
        assert slo.is_miss("completed", "", None) is False
        assert slo.is_miss("cancelled", "", None) is None

    def test_invalid_objectives_rejected(self):
        for kwargs in ({"target": 1.5}, {"target": 0.0},
                       {"window_seconds": -1.0}, {"min_events": 0},
                       {"breach_burn_rate": 0.0},
                       {"latency_objective_seconds": 0.0}):
            with pytest.raises(ServiceError):
                TenantSLO(**kwargs)


class TestServiceConfigSLO:
    def test_slo_for_prefers_the_tenant_override(self):
        tight = TenantSLO(target=0.999)
        loose = TenantSLO(target=0.9)
        config = ServiceConfig(default_slo=loose, slos={"acme": tight})
        assert config.slo_for("acme") is tight
        assert config.slo_for("other") is loose
        assert config.tracks_slos
        assert not ServiceConfig().tracks_slos

    def test_non_slo_values_rejected(self):
        with pytest.raises(ServiceError):
            ServiceConfig(default_slo=0.99)
        with pytest.raises(ServiceError):
            ServiceConfig(slos={"acme": "tight"})


@pytest.fixture(scope="module")
def live_server(tmp_path_factory):
    """One real server + one completed job, shared by endpoint tests."""
    tmp = tmp_path_factory.mktemp("live")
    folder = write_model(lotka_volterra(), tmp / "lv")
    config = ServiceConfig(
        default_slo=TenantSLO(latency_objective_seconds=60.0))
    bound = {}
    ready = threading.Event()

    def on_ready(addr):
        bound["addr"] = addr
        ready.set()

    thread = threading.Thread(
        target=lambda: asyncio.run(
            serve_async("127.0.0.1", 0, config=config, ready=on_ready)),
        daemon=True)
    thread.start()
    assert ready.wait(15)
    host, port = bound["addr"]
    with Client(host, port, timeout=60.0) as client:
        job_id = client.submit(str(folder), t_span=(0.0, 2.0),
                               tenant="acme", chunk_size=16)
        client.wait(job_id, timeout=60)
        yield host, port
        client.shutdown()
    thread.join(15)


class TestMetricsEndpoint:
    def test_scrape_parses_and_carries_live_series(self, live_server):
        host, port = live_server
        samples = parse_prometheus_text(scrape_metrics(host, port))

        def value(name, **labels):
            for sample_labels, sample in samples.get(name, ()):
                if all(sample_labels.get(k) == v
                       for k, v in labels.items()):
                    return sample
            return None

        assert value("repro_service_jobs_admitted_total") >= 1.0
        assert value("repro_service_tenant_completed_total",
                     tenant="acme") >= 1.0
        assert value("repro_live_spans_seen_total") > 0.0
        assert value("repro_live_job_outcomes_total", tenant="acme",
                     state="completed") >= 1.0
        assert value("repro_service_slo_burn_rate",
                     tenant="acme") == 0.0
        assert value("repro_live_job_latency_seconds", tenant="acme",
                     quantile="0.50") is not None

    def test_unknown_path_is_404(self, live_server):
        import socket as socket_module
        host, port = live_server
        with socket_module.create_connection((host, port),
                                             timeout=10) as sock:
            sock.sendall(b"GET /nope HTTP/1.0\r\n\r\n")
            response = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                response += chunk
        assert response.startswith(b"HTTP/1.0 404")

    def test_repro_top_once(self, live_server, capsys):
        host, port = live_server
        assert main(["top", "--once", "--host", host,
                     "--port", str(port)]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "acme" in out
        assert "spans=" in out
        assert "\x1b[2J" not in out  # --once never clears the screen

    def test_scrape_helper_rejects_dead_port(self):
        with pytest.raises((ServiceError, OSError)):
            scrape_metrics("127.0.0.1", 1, timeout=0.5)


class TestTraceSummaryRollups:
    def make_spans(self):
        tracer = Tracer(clock=FakeClock())
        service = tracer.start("service", "service")
        for index, (state, wait) in enumerate(
                [("completed", 0.1), ("completed", 0.4),
                 ("shed", 2.0)]):
            job = tracer.start(f"job-{index}", "job", parent=service)
            tracer.end(job, tenant="acme" if index < 2 else "umbrella",
                       state=state, wait_seconds=wait)
        tracer.end(service)
        return tracer.spans

    def test_summarize_tenants(self):
        summary = summarize_tenants(self.make_spans())
        assert sorted(summary) == ["acme", "umbrella"]
        assert summary["acme"]["jobs"] == {"completed": 2}
        assert summary["umbrella"]["jobs"] == {"shed": 1}
        assert summary["acme"]["wait"]["p50"] is not None
        assert summary["acme"]["latency"]["p50"] <= \
            summary["acme"]["latency"]["p99"]
        assert summarize_tenants([]) == {}

    def test_render_summary_has_quantiles_and_tenants(self):
        text = render_summary(self.make_spans())
        assert "p50 s" in text and "p99 s" in text
        assert "tenants:" in text
        assert "acme: 2 completed" in text
        assert "umbrella: 1 shed" in text
        assert "wait: p50=" in text

    def test_cli_trace_summarize_prints_tenants(self, tmp_path, capsys):
        trace = write_trace_jsonl(self.make_spans(),
                                  tmp_path / "trace.jsonl")
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "tenants:" in out
        assert "acme" in out
