"""Tests for the ``repro lint`` CLI subcommand.

Covers the text and JSON output formats, the ``--fail-on`` exit-code
contract, ``--self`` (shipped-kernel lint), direct ``.py`` file lint
and the error path for a missing model.
"""

import json

import pytest

from repro.cli import main
from repro.io import write_model
from repro.models import dimerization
from repro.model import ReactionBasedModel


@pytest.fixture
def clean_model_dir(tmp_path):
    folder = tmp_path / "dimer"
    write_model(dimerization(), folder)
    return folder


@pytest.fixture
def warning_model_dir(tmp_path):
    model = ReactionBasedModel("ghosted")
    model.add_species("A", 1.0)
    model.add_species("B", 0.0)
    model.add_species("Ghost", 2.0)  # RBM001 warning
    model.add("A -> B @ 1.0")
    model.add("B -> A @ 0.5")
    folder = tmp_path / "ghosted"
    write_model(model, folder)
    return folder


class TestModelLint:
    def test_clean_model_exits_zero(self, clean_model_dir, capsys):
        assert main(["lint", str(clean_model_dir)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_warning_model_passes_at_default_threshold(
            self, warning_model_dir, capsys):
        assert main(["lint", str(warning_model_dir)]) == 0
        out = capsys.readouterr().out
        assert "RBM001" in out and "Ghost" in out

    def test_fail_on_warning_flips_exit_code(self, warning_model_dir):
        assert main(["lint", str(warning_model_dir),
                     "--fail-on", "warning"]) == 1

    def test_json_format(self, warning_model_dir, capsys):
        assert main(["lint", str(warning_model_dir),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["warning"] == 1
        assert payload["findings"][0]["rule_id"] == "RBM001"
        assert "stiffness_risk_decades" in payload["metadata"]


class TestKernelLint:
    def test_self_lint_exits_zero(self, capsys):
        assert main(["lint", "--self"]) == 0
        assert "waived" in capsys.readouterr().out

    def test_self_lint_json(self, capsys):
        assert main(["lint", "--self", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metadata"]["waived"] >= 1
        assert len(payload["metadata"]["files"]) >= 4

    def test_python_file_routes_to_kernel_linter(self, tmp_path, capsys):
        kernel = tmp_path / "kernel.py"
        kernel.write_text(
            "def step(y, batch_size):\n"
            "    for i in range(batch_size):\n"
            "        y[i] = 0.0\n")
        assert main(["lint", str(kernel)]) == 1  # KRN001 is an error
        assert "KRN001" in capsys.readouterr().out


class TestErrorPaths:
    def test_missing_model_argument(self, capsys):
        assert main(["lint"]) == 2
        assert "error" in capsys.readouterr().err

    def test_nonexistent_model_path(self, tmp_path):
        assert main(["lint", str(tmp_path / "nope")]) == 2

    def test_unknown_fail_on_rejected(self):
        with pytest.raises(SystemExit):
            main(["lint", "--self", "--fail-on", "fatal"])
