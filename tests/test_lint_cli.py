"""Tests for the ``repro lint`` CLI subcommand.

Covers the text and JSON output formats, the ``--fail-on`` exit-code
contract, ``--self`` (shipped-kernel lint), direct ``.py`` file lint,
the error path for a missing model, ``--list-rules``, the ``--deep``
dataflow analyzer and the exit-code contract (0 clean / 1 findings /
2 crash / 3 lint-gate rejection).
"""

import json
import textwrap

import pytest

from repro.cli import main
from repro.io import write_model
from repro.models import dimerization
from repro.model import ReactionBasedModel


@pytest.fixture
def clean_model_dir(tmp_path):
    folder = tmp_path / "dimer"
    write_model(dimerization(), folder)
    return folder


@pytest.fixture
def warning_model_dir(tmp_path):
    model = ReactionBasedModel("ghosted")
    model.add_species("A", 1.0)
    model.add_species("B", 0.0)
    model.add_species("Ghost", 2.0)  # RBM001 warning
    model.add("A -> B @ 1.0")
    model.add("B -> A @ 0.5")
    folder = tmp_path / "ghosted"
    write_model(model, folder)
    return folder


class TestModelLint:
    def test_clean_model_exits_zero(self, clean_model_dir, capsys):
        assert main(["lint", str(clean_model_dir)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_warning_model_passes_at_default_threshold(
            self, warning_model_dir, capsys):
        assert main(["lint", str(warning_model_dir)]) == 0
        out = capsys.readouterr().out
        assert "RBM001" in out and "Ghost" in out

    def test_fail_on_warning_flips_exit_code(self, warning_model_dir):
        assert main(["lint", str(warning_model_dir),
                     "--fail-on", "warning"]) == 1

    def test_json_format(self, warning_model_dir, capsys):
        assert main(["lint", str(warning_model_dir),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["warning"] == 1
        assert payload["findings"][0]["rule_id"] == "RBM001"
        assert "stiffness_risk_decades" in payload["metadata"]


class TestKernelLint:
    def test_self_lint_exits_zero(self, capsys):
        assert main(["lint", "--self"]) == 0
        assert "waived" in capsys.readouterr().out

    def test_self_lint_json(self, capsys):
        assert main(["lint", "--self", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metadata"]["waived"] >= 1
        assert len(payload["metadata"]["files"]) >= 4

    def test_python_file_routes_to_kernel_linter(self, tmp_path, capsys):
        kernel = tmp_path / "kernel.py"
        kernel.write_text(
            "def step(y, batch_size):\n"
            "    for i in range(batch_size):\n"
            "        y[i] = 0.0\n")
        assert main(["lint", str(kernel)]) == 1  # KRN001 is an error
        assert "KRN001" in capsys.readouterr().out


class TestListRules:
    def test_text_table_lists_every_family(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RBM001", "KRN001", "DET001", "CON001",
                        "LNT000"):
            assert rule_id in out
        for family in ("model", "kernel", "deep", "meta"):
            assert family in out

    def test_json_listing_includes_docs(self, capsys):
        assert main(["lint", "--list-rules", "--format", "json"]) == 0
        rules = json.loads(capsys.readouterr().out)
        by_id = {rule["rule_id"]: rule for rule in rules}
        assert by_id["DET001"]["family"] == "deep"
        assert by_id["DET001"]["severity"] == "error"
        assert "bit-identity" in by_id["DET001"]["doc"]


class TestDeepLint:
    def test_deep_over_package_is_clean(self, capsys):
        assert main(["lint", "--deep", "--fail-on", "warning"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_deep_on_dirty_file_fails(self, tmp_path, capsys):
        kernel = tmp_path / "gpu"
        kernel.mkdir()
        (kernel / "batch_bad.py").write_text(textwrap.dedent("""
            import numpy as np
            def combine(w, k):
                return np.tensordot(w, k, axes=(0, 0))
        """))
        assert main(["lint", "--deep", str(tmp_path)]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_deep_json_report_documents_fired_rules(self, tmp_path,
                                                    capsys):
        kernel = tmp_path / "gpu"
        kernel.mkdir()
        (kernel / "batch_bad.py").write_text(
            "import numpy as np\n"
            "def f(w, k):\n"
            "    return np.dot(w, k)\n")
        main(["lint", "--deep", str(tmp_path), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule_id"] == "DET001"
        assert "DET001" in payload["rules"]
        assert payload["rules"]["DET001"]["family"] == "deep"

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        kernel = tmp_path / "gpu"
        kernel.mkdir()
        (kernel / "batch_bad.py").write_text(
            "import numpy as np\n"
            "def f(w, k):\n"
            "    return np.dot(w, k)\n")
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "--deep", str(tmp_path),
                     "--write-baseline", "--baseline",
                     str(baseline)]) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main(["lint", "--deep", str(tmp_path),
                     "--baseline", str(baseline)]) == 0
        assert "clean" in capsys.readouterr().out


class TestLintGateExitCode:
    def test_gate_rejection_exits_three(self, warning_model_dir,
                                        capsys):
        code = main(["lint", str(warning_model_dir), "--gate",
                     "--fail-on", "warning"])
        assert code == 3
        err = capsys.readouterr().err
        assert "lint gate" in err and "RBM001" in err

    def test_gate_pass_exits_zero(self, clean_model_dir):
        assert main(["lint", str(clean_model_dir), "--gate"]) == 0

    def test_gate_error_is_distinct_from_crash(self, tmp_path):
        # a crash (unreadable model) must stay exit 2
        assert main(["lint", str(tmp_path / "nope"), "--gate"]) == 2


class TestErrorPaths:
    def test_missing_model_argument(self, capsys):
        assert main(["lint"]) == 2
        assert "error" in capsys.readouterr().err

    def test_nonexistent_model_path(self, tmp_path):
        assert main(["lint", str(tmp_path / "nope")]) == 2

    def test_deep_on_non_python_subject(self, clean_model_dir, tmp_path):
        target = tmp_path / "notes.txt"
        target.write_text("hello")
        assert main(["lint", "--deep", str(target)]) == 2

    def test_unknown_fail_on_rejected(self):
        with pytest.raises(SystemExit):
            main(["lint", "--self", "--fail-on", "fatal"])
