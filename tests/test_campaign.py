"""Checkpoint/resume, deadlines and journaled campaign execution."""

import json

import numpy as np
import pytest

from repro.core import ParameterRange, SweepTarget, endpoint_metric, run_psa_1d
from repro.core.pe import (FreeParameter, ParameterEstimation,
                           estimate_multi_start)
from repro.core.simulate import simulate
from repro.errors import CampaignInterrupted, ResilienceError
from repro.io.checkpoint import CampaignCheckpoint
from repro.model import perturbed_batch
from repro.models import lotka_volterra
from repro.resilience import (CampaignConfig, FaultPlan, QuarantineLog,
                              default_retry_policy, run_campaign)
from repro.core import synthetic_target


@pytest.fixture
def lv_batch(lv_model):
    rng = np.random.default_rng(11)
    return perturbed_batch(lv_model.nominal_parameterization(), 10, rng)


T_EVAL = np.linspace(0.0, 2.0, 5)


class TestCheckpointJournal:
    def test_open_creates_then_reloads(self, tmp_path):
        path = tmp_path / "j.json"
        fingerprint = {"kind": "campaign", "model": "x"}
        first = CampaignCheckpoint.open(path, fingerprint)
        assert path.is_file()
        first.set_payload("start-0", {"fitness": 1.0})
        second = CampaignCheckpoint.open(path, fingerprint)
        assert second.get_payload("start-0") == {"fitness": 1.0}

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = tmp_path / "j.json"
        CampaignCheckpoint.open(path, {"model": "a"})
        with pytest.raises(ResilienceError, match="different campaign"):
            CampaignCheckpoint.open(path, {"model": "b"})

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "j.json"
        path.write_text(json.dumps({"format_version": 99}))
        with pytest.raises(ResilienceError, match="version"):
            CampaignCheckpoint.open(path, {})

    def test_chunk_round_trip_with_quarantine(self, tmp_path, lv_model,
                                              lv_batch):
        raw = simulate(lv_model, (0.0, 2.0), T_EVAL, lv_batch).raw
        checkpoint = CampaignCheckpoint.open(tmp_path / "j.json", {})
        entry = [{"row": 3, "rate_constants": [1.0], "initial_state": [2.0],
                  "attempts": []}]
        checkpoint.save_chunk(0, raw, entry)
        assert checkpoint.has_chunk(0)
        loaded, quarantine = checkpoint.load_chunk(0)
        assert np.array_equal(loaded.y, raw.y, equal_nan=True)
        assert QuarantineLog.from_dicts(quarantine).rows().tolist() == [3]

    def test_cleanup_removes_journal_and_chunks(self, tmp_path, lv_model,
                                                lv_batch):
        raw = simulate(lv_model, (0.0, 2.0), T_EVAL, lv_batch).raw
        checkpoint = CampaignCheckpoint.open(tmp_path / "j.json", {})
        checkpoint.save_chunk(0, raw)
        checkpoint.cleanup()
        assert not any(tmp_path.iterdir())


class TestRunCampaign:
    def test_matches_single_shot_simulation(self, lv_model, lv_batch):
        direct = simulate(lv_model, (0.0, 2.0), T_EVAL, lv_batch)
        outcome = run_campaign(lv_model, (0.0, 2.0), T_EVAL, lv_batch,
                               config=CampaignConfig(chunk_size=3))
        assert not outcome.incomplete
        assert outcome.total_chunks == 4
        assert np.allclose(outcome.result.y, direct.y)
        assert np.array_equal(outcome.result.status_codes,
                              direct.raw.status_codes)

    def test_crash_resume_is_bit_for_bit(self, tmp_path, lv_model,
                                         lv_batch):
        config = CampaignConfig(chunk_size=3,
                                checkpoint_path=tmp_path / "j.json")
        reference = run_campaign(lv_model, (0.0, 2.0), T_EVAL, lv_batch,
                                 config=CampaignConfig(chunk_size=3))
        with pytest.raises(CampaignInterrupted) as excinfo:
            run_campaign(lv_model, (0.0, 2.0), T_EVAL, lv_batch,
                         config=config,
                         fault_plan=FaultPlan(crash_after_launches=2))
        assert excinfo.value.completed_chunks == 2
        assert excinfo.value.checkpoint_path == config.checkpoint_path
        resumed = run_campaign(lv_model, (0.0, 2.0), T_EVAL, lv_batch,
                               config=config)
        assert resumed.resumed_chunks == 2
        assert np.array_equal(resumed.result.y, reference.result.y,
                              equal_nan=True)
        assert np.array_equal(resumed.result.status_codes,
                              reference.result.status_codes)

    def test_keyboard_interrupt_becomes_campaign_interrupted(
            self, lv_model, lv_batch, monkeypatch):
        import repro.resilience.campaign as campaign_module

        def explode(*args, **kwargs):
            raise KeyboardInterrupt
        monkeypatch.setattr(campaign_module, "_run_chunk", explode)
        with pytest.raises(CampaignInterrupted):
            run_campaign(lv_model, (0.0, 2.0), T_EVAL, lv_batch,
                         config=CampaignConfig(chunk_size=5))

    def test_deadline_degrades_to_partial_result(self, lv_model,
                                                 lv_batch):
        outcome = run_campaign(lv_model, (0.0, 2.0), T_EVAL, lv_batch,
                               config=CampaignConfig(chunk_size=3),
                               fault_plan=FaultPlan(
                                   deadline_after_chunks=2))
        assert outcome.incomplete and outcome.deadline_hit
        assert outcome.completed_chunks == 2
        assert outcome.pending_mask.sum() == 4
        assert "incomplete" in outcome.summary()

    def test_quarantine_rows_mapped_to_campaign_space(self, tmp_path,
                                                      lv_model, lv_batch):
        config = CampaignConfig(chunk_size=4,
                                checkpoint_path=tmp_path / "j.json")
        outcome = run_campaign(lv_model, (0.0, 2.0), T_EVAL, lv_batch,
                               config=config,
                               retry_policy=default_retry_policy(),
                               fault_plan=FaultPlan(nan_rows=(1, 6)))
        assert outcome.quarantine.rows().tolist() == [1, 6]
        # resume path restores the same quarantine from the journal
        # (the retry ladder is part of the numerics fingerprint, so the
        # resume must present the same policy)
        resumed = run_campaign(lv_model, (0.0, 2.0), T_EVAL, lv_batch,
                               config=config,
                               retry_policy=default_retry_policy())
        assert resumed.resumed_chunks == resumed.total_chunks
        assert resumed.quarantine.rows().tolist() == [1, 6]

    def test_mismatched_campaign_rejected(self, tmp_path, lv_model,
                                          lv_batch):
        config = CampaignConfig(chunk_size=5,
                                checkpoint_path=tmp_path / "j.json")
        run_campaign(lv_model, (0.0, 2.0), T_EVAL, lv_batch, config=config)
        with pytest.raises(ResilienceError):
            run_campaign(lv_model, (0.0, 2.0), np.linspace(0, 2, 9),
                         lv_batch, config=config)

    def test_config_validation(self):
        with pytest.raises(ResilienceError):
            CampaignConfig(chunk_size=0)
        with pytest.raises(ResilienceError):
            CampaignConfig(deadline_seconds=0.0)


class TestAnalysesOnCampaigns:
    def test_psa1d_resumes_from_journal(self, tmp_path, lv_model):
        target = SweepTarget.rate_constant(lv_model, 0,
                                           ParameterRange(0.5, 1.5))
        kwargs = dict(metric=endpoint_metric(lv_model, "Y1"))
        plain = run_psa_1d(lv_model, target, 9, (0.0, 2.0), T_EVAL,
                           **kwargs)
        config = CampaignConfig(chunk_size=4,
                                checkpoint_path=tmp_path / "psa.json")
        first = run_psa_1d(lv_model, target, 9, (0.0, 2.0), T_EVAL,
                           campaign=config, **kwargs)
        again = run_psa_1d(lv_model, target, 9, (0.0, 2.0), T_EVAL,
                           campaign=config, **kwargs)
        assert np.allclose(first.metric_values, plain.metric_values)
        assert np.array_equal(first.metric_values, again.metric_values)

    def test_pe_multi_start_resumes_finished_starts(self, tmp_path,
                                                    lv_model):
        times, target = synthetic_target(lv_model, ["Y1", "Y2"],
                                         (0.0, 3.0), n_points=10)
        free = [FreeParameter(0, 0.1, 10.0)]

        def fresh():
            return ParameterEstimation(lv_model, free, ["Y1", "Y2"],
                                       times, target)
        path = tmp_path / "pe.json"
        first = estimate_multi_start(fresh(), n_starts=2, swarm_size=6,
                                     n_iterations=4, checkpoint_path=path)
        rerun_estimation = fresh()
        second = estimate_multi_start(rerun_estimation, n_starts=2,
                                      swarm_size=6, n_iterations=4,
                                      checkpoint_path=path)
        assert rerun_estimation.n_simulations == 0  # all starts resumed
        assert second.fitness == first.fitness
        assert np.allclose(second.estimated_constants,
                           first.estimated_constants)
        assert second.n_simulations == first.n_simulations

    def test_pe_checkpoint_rejects_changed_protocol(self, tmp_path,
                                                    lv_model):
        times, target = synthetic_target(lv_model, ["Y1"], (0.0, 1.0),
                                         n_points=4)
        estimation = ParameterEstimation(lv_model,
                                         [FreeParameter(0, 0.1, 10.0)],
                                         ["Y1"], times, target)
        path = tmp_path / "pe.json"
        estimate_multi_start(estimation, n_starts=1, swarm_size=4,
                             n_iterations=2, checkpoint_path=path)
        with pytest.raises(ResilienceError):
            estimate_multi_start(estimation, n_starts=2, swarm_size=4,
                                 n_iterations=2, checkpoint_path=path)
