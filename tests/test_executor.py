"""Chaos suite for the supervised shard executor.

Every test drives :func:`repro.resilience.run_campaign` with
``CampaignConfig.workers > 0`` under FaultPlan-injected worker kills,
hangs, slowness, crashes, and pool collapse, and holds the executor to
its core contract: the merged result is *byte-identical* to the serial
in-process run, no matter what the supervision ladder had to do to get
there.
"""

import numpy as np
import pytest

from repro.errors import CampaignInterrupted, ResilienceError
from repro.model import perturbed_batch
from repro.models import lotka_volterra
from repro.resilience import (CampaignConfig, FaultPlan, WorkerFailure,
                              run_campaign)
from repro.solvers import SolverOptions
from repro.telemetry import read_trace_jsonl, validate_trace

T_EVAL = np.linspace(0.0, 2.0, 5)
T_SPAN = (0.0, 2.0)

#: Fast supervision knobs shared by the chaos runs: tight heartbeats,
#: near-immediate restarts, but timeouts generous enough for slow CI.
FAST = dict(chunk_size=3, heartbeat_interval=0.02, heartbeat_timeout=1.0,
            restart_backoff=0.01, restart_backoff_cap=0.05)


@pytest.fixture(scope="module")
def lv_model():
    return lotka_volterra()


@pytest.fixture(scope="module")
def lv_batch(lv_model):
    rng = np.random.default_rng(11)
    return perturbed_batch(lv_model.nominal_parameterization(), 10, rng)


@pytest.fixture(scope="module")
def serial(lv_model, lv_batch):
    """The serial in-process reference every chaos run must reproduce."""
    return run_campaign(lv_model, T_SPAN, T_EVAL, lv_batch,
                        config=CampaignConfig(chunk_size=3))


def assert_bit_identical(outcome, serial):
    reference = serial.result
    result = outcome.result
    assert result.y.tobytes() == reference.y.tobytes()
    assert result.status_codes.tobytes() == reference.status_codes.tobytes()
    assert result.method_codes.tobytes() == reference.method_codes.tobytes()
    assert result.n_steps.tobytes() == reference.n_steps.tobytes()


class TestShardedCleanPath:
    def test_bit_identical_to_serial(self, lv_model, lv_batch, serial):
        outcome = run_campaign(
            lv_model, T_SPAN, T_EVAL, lv_batch,
            config=CampaignConfig(workers=2, **FAST))
        assert not outcome.incomplete
        assert not outcome.degraded
        assert outcome.completed_chunks == 4
        assert_bit_identical(outcome, serial)
        assert outcome.metrics.counters["campaign.chunks.executed"] == 4
        assert outcome.metrics.gauges["campaign.executor.workers"] == 2

    def test_single_worker_identical(self, lv_model, lv_batch, serial):
        outcome = run_campaign(
            lv_model, T_SPAN, T_EVAL, lv_batch,
            config=CampaignConfig(workers=1, **FAST))
        assert_bit_identical(outcome, serial)

    def test_worker_spans_in_trace(self, lv_model, lv_batch, tmp_path):
        trace = tmp_path / "trace.jsonl"
        run_campaign(lv_model, T_SPAN, T_EVAL, lv_batch,
                     config=CampaignConfig(workers=2, **FAST),
                     telemetry=trace)
        spans = read_trace_jsonl(trace)
        assert validate_trace(spans) == []
        by_category = {}
        for span in spans:
            by_category.setdefault(span.category, []).append(span)
        assert len(by_category["campaign"]) == 1
        assert {s.name for s in by_category["worker"]} \
            == {"worker-0", "worker-1"}
        assert {s.name for s in by_category["chunk"]} \
            == {f"chunk-{i}" for i in range(4)}
        # every chunk span hangs off a worker lane, lanes off the root
        lane_ids = {s.span_id for s in by_category["worker"]}
        assert all(s.parent_id in lane_ids for s in by_category["chunk"])


class TestChaosBitIdentity:
    def test_worker_kill_recovers(self, lv_model, lv_batch, serial):
        outcome = run_campaign(
            lv_model, T_SPAN, T_EVAL, lv_batch,
            config=CampaignConfig(workers=2, **FAST),
            fault_plan=FaultPlan(worker_kill_chunks=(1,)))
        assert not outcome.incomplete
        assert_bit_identical(outcome, serial)
        counters = outcome.metrics.counters
        assert counters["campaign.executor.worker_deaths"] >= 1
        assert counters["campaign.executor.reassignments"] >= 1

    def test_worker_hang_recovers(self, lv_model, lv_batch, serial):
        outcome = run_campaign(
            lv_model, T_SPAN, T_EVAL, lv_batch,
            config=CampaignConfig(workers=2, **{**FAST,
                                                "heartbeat_timeout": 0.3}),
            fault_plan=FaultPlan(worker_hang_chunks=(2,)))
        assert not outcome.incomplete
        assert_bit_identical(outcome, serial)
        counters = outcome.metrics.counters
        assert counters["campaign.executor.hangs"] >= 1
        assert counters["campaign.executor.reassignments"] >= 1

    def test_slow_worker_counted_not_failed(self, lv_model, lv_batch,
                                            serial):
        outcome = run_campaign(
            lv_model, T_SPAN, T_EVAL, lv_batch,
            config=CampaignConfig(workers=2, slow_chunk_seconds=0.05,
                                  **FAST),
            fault_plan=FaultPlan(worker_slow_chunks=(0,),
                                 worker_slow_seconds=0.2))
        assert not outcome.incomplete
        assert_bit_identical(outcome, serial)
        counters = outcome.metrics.counters
        assert counters["campaign.executor.slow_chunks"] >= 1
        assert "campaign.executor.reassignments" not in counters

    def test_chunk_timeout_reassigns(self, lv_model, lv_batch, serial):
        # First attempt of chunk 3 sleeps past the per-chunk timeout;
        # the supervisor terminates it and the clean retry succeeds.
        outcome = run_campaign(
            lv_model, T_SPAN, T_EVAL, lv_batch,
            config=CampaignConfig(workers=2, chunk_timeout=0.3, **FAST),
            fault_plan=FaultPlan(worker_slow_chunks=(3,),
                                 worker_slow_seconds=5.0))
        assert not outcome.incomplete
        assert_bit_identical(outcome, serial)
        assert outcome.metrics.counters[
            "campaign.executor.chunk_timeouts"] >= 1

    def test_combined_faults(self, lv_model, lv_batch, serial):
        outcome = run_campaign(
            lv_model, T_SPAN, T_EVAL, lv_batch,
            config=CampaignConfig(workers=2, **{**FAST,
                                                "heartbeat_timeout": 0.3}),
            fault_plan=FaultPlan(worker_kill_chunks=(0,),
                                 worker_hang_chunks=(2,)))
        assert not outcome.incomplete
        assert_bit_identical(outcome, serial)


class TestPoisonChunks:
    def test_poison_chunk_split_then_quarantined(self, lv_model, lv_batch,
                                                 serial):
        # Chunk 0 kills its worker on *every* attempt: the ladder must
        # split it down to single rows, quarantine those, and leave the
        # other nine rows byte-identical to the serial run.
        outcome = run_campaign(
            lv_model, T_SPAN, T_EVAL, lv_batch,
            config=CampaignConfig(workers=2, max_chunk_attempts=2,
                                  max_worker_restarts=50, **FAST),
            fault_plan=FaultPlan(worker_kill_chunks=(0,),
                                 worker_fault_attempts=1000))
        assert not outcome.incomplete
        assert outcome.quarantine.rows().tolist() == [0, 1, 2]
        assert all(isinstance(record, WorkerFailure)
                   for record in outcome.quarantine)
        assert all(record.final_status == "worker-killed"
                   for record in outcome.quarantine)
        counters = outcome.metrics.counters
        assert counters["campaign.executor.splits"] >= 2
        assert counters["campaign.executor.quarantined_rows"] == 3
        healthy = np.delete(np.arange(10), outcome.quarantine.rows())
        assert outcome.result.y[healthy].tobytes() \
            == serial.result.y[healthy].tobytes()

    def test_worker_failure_journal_round_trip(self, lv_model, lv_batch,
                                               tmp_path):
        journal = tmp_path / "campaign.json"
        config = CampaignConfig(workers=2, max_chunk_attempts=1,
                                max_worker_restarts=50,
                                checkpoint_path=journal, **FAST)
        plan = FaultPlan(worker_kill_chunks=(1,),
                         worker_fault_attempts=1000)
        first = run_campaign(lv_model, T_SPAN, T_EVAL, lv_batch,
                             config=config, fault_plan=plan)
        assert first.quarantine.rows().tolist() == [3, 4, 5]
        # Resume re-reads the journaled quarantine: the records must
        # still be WorkerFailure objects, not plain FailureRecords.
        resumed = run_campaign(lv_model, T_SPAN, T_EVAL, lv_batch,
                               config=config)
        assert resumed.resumed_chunks == 4
        assert resumed.quarantine.rows().tolist() == [3, 4, 5]
        assert all(isinstance(record, WorkerFailure)
                   for record in resumed.quarantine)
        assert resumed.result.y.tobytes() == first.result.y.tobytes()


class TestCrashResume:
    def test_supervisor_crash_resumes_exactly_once(self, lv_model,
                                                   lv_batch, serial,
                                                   tmp_path):
        journal = tmp_path / "campaign.json"
        config = CampaignConfig(workers=2, checkpoint_path=journal, **FAST)
        with pytest.raises(CampaignInterrupted) as info:
            run_campaign(lv_model, T_SPAN, T_EVAL, lv_batch, config=config,
                         fault_plan=FaultPlan(crash_after_launches=2))
        # in-flight chunks may land between the threshold and the next
        # supervision tick, but never all of them
        crashed = info.value.completed_chunks
        assert 2 <= crashed < 4
        assert info.value.checkpoint_path == journal

        resumed = run_campaign(lv_model, T_SPAN, T_EVAL, lv_batch,
                               config=config)
        assert not resumed.incomplete
        # no chunk lost, none duplicated: every journaled chunk resumes
        # and every lost chunk re-executes exactly once
        assert resumed.resumed_chunks == crashed
        assert resumed.completed_chunks == 4
        assert resumed.metrics.counters["campaign.chunks.executed"] \
            == 4 - crashed
        assert resumed.metrics.counters["campaign.chunks.resumed"] \
            == crashed
        assert_bit_identical(resumed, serial)

    def test_crash_resume_trace_is_one_tree(self, lv_model, lv_batch,
                                            tmp_path):
        journal = tmp_path / "campaign.json"
        trace = tmp_path / "trace.jsonl"
        config = CampaignConfig(workers=2, checkpoint_path=journal, **FAST)
        with pytest.raises(CampaignInterrupted):
            run_campaign(lv_model, T_SPAN, T_EVAL, lv_batch, config=config,
                         fault_plan=FaultPlan(crash_after_launches=2),
                         telemetry=trace)
        run_campaign(lv_model, T_SPAN, T_EVAL, lv_batch, config=config,
                     telemetry=trace)
        spans = read_trace_jsonl(trace)
        assert validate_trace(spans) == []
        chunk_names = sorted(s.name for s in spans
                             if s.category == "chunk")
        assert chunk_names == [f"chunk-{i}" for i in range(4)]

    def test_serial_journal_resumes_under_workers(self, lv_model,
                                                  lv_batch, serial,
                                                  tmp_path):
        # A journal written by the serial loop is a valid starting
        # point for a sharded run (and vice versa): the chunks are the
        # same bit-identical units either way.
        journal = tmp_path / "campaign.json"
        with pytest.raises(CampaignInterrupted):
            run_campaign(lv_model, T_SPAN, T_EVAL, lv_batch,
                         config=CampaignConfig(chunk_size=3,
                                               checkpoint_path=journal),
                         fault_plan=FaultPlan(crash_after_launches=3))
        resumed = run_campaign(
            lv_model, T_SPAN, T_EVAL, lv_batch,
            config=CampaignConfig(workers=2, checkpoint_path=journal,
                                  **FAST))
        assert resumed.resumed_chunks == 3
        assert_bit_identical(resumed, serial)


class TestDegradation:
    def test_pool_collapse_degrades_to_serial(self, lv_model, lv_batch,
                                              serial):
        # Every chunk poisons every worker and the restart budget is
        # one: the pool collapses and the supervisor must finish the
        # campaign in-process, bit-identically, with the flag raised.
        outcome = run_campaign(
            lv_model, T_SPAN, T_EVAL, lv_batch,
            config=CampaignConfig(workers=2, max_worker_restarts=1,
                                  max_chunk_attempts=100, **FAST),
            fault_plan=FaultPlan(worker_kill_chunks=(0, 1, 2, 3),
                                 worker_fault_attempts=1000))
        assert not outcome.incomplete
        assert outcome.degraded
        assert "degraded to serial" in outcome.summary()
        assert_bit_identical(outcome, serial)
        counters = outcome.metrics.counters
        assert counters["campaign.executor.degradations"] == 1
        assert counters["campaign.executor.worker_deaths"] >= 2

    def test_degraded_run_still_journals(self, lv_model, lv_batch,
                                         serial, tmp_path):
        journal = tmp_path / "campaign.json"
        outcome = run_campaign(
            lv_model, T_SPAN, T_EVAL, lv_batch,
            config=CampaignConfig(workers=1, max_worker_restarts=0,
                                  max_chunk_attempts=100,
                                  checkpoint_path=journal, **FAST),
            fault_plan=FaultPlan(worker_kill_chunks=(0, 1, 2, 3),
                                 worker_fault_attempts=1000))
        assert outcome.degraded and not outcome.incomplete
        assert_bit_identical(outcome, serial)
        resumed = run_campaign(
            lv_model, T_SPAN, T_EVAL, lv_batch,
            config=CampaignConfig(workers=1, checkpoint_path=journal,
                                  **FAST))
        assert resumed.resumed_chunks == 4
        assert not resumed.degraded


class AllowThenCancel:
    """Chunk gate granting ``allow`` chunks, then firing the cancel
    event — drives a deterministic mid-flight cooperative cancel."""

    def __init__(self, allow, cancel_event):
        self.allow = allow
        self.cancel_event = cancel_event

    def _grant(self):
        if self.allow <= 0:
            self.cancel_event.set()
            return False
        self.allow -= 1
        return True

    def acquire(self, width, cancel_event=None):
        return self._grant()

    def try_acquire(self, width):
        return self._grant()

    def release(self, width):
        pass


class TestCooperativeCancel:
    def test_preset_cancel_stops_before_first_chunk(self, lv_model,
                                                    lv_batch):
        import threading

        cancel = threading.Event()
        cancel.set()
        outcome = run_campaign(lv_model, T_SPAN, T_EVAL, lv_batch,
                               config=CampaignConfig(chunk_size=3),
                               cancel_event=cancel)
        assert outcome.cancelled
        assert outcome.incomplete
        assert outcome.completed_chunks == 0
        assert "cancelled" in outcome.summary()

    def test_serial_cancel_mid_flight_resumes_exact_once(
            self, lv_model, lv_batch, serial, tmp_path):
        import threading

        journal = tmp_path / "campaign.json"
        config = CampaignConfig(chunk_size=3, checkpoint_path=journal)
        cancel = threading.Event()
        first = run_campaign(lv_model, T_SPAN, T_EVAL, lv_batch,
                             config=config,
                             chunk_gate=AllowThenCancel(2, cancel),
                             cancel_event=cancel)
        assert first.cancelled and first.incomplete
        assert first.completed_chunks == 2
        assert first.pending_mask.sum() == 4  # rows 6..9 never ran

        resumed = run_campaign(lv_model, T_SPAN, T_EVAL, lv_batch,
                               config=config)
        assert not resumed.cancelled and not resumed.incomplete
        assert resumed.resumed_chunks == 2
        assert resumed.metrics.counters["campaign.chunks.executed"] == 2
        assert_bit_identical(resumed, serial)

    def test_sharded_cancel_resumes_exact_once(self, lv_model, lv_batch,
                                               serial, tmp_path):
        import threading

        journal = tmp_path / "campaign.json"
        cancel = threading.Event()
        first = run_campaign(
            lv_model, T_SPAN, T_EVAL, lv_batch,
            config=CampaignConfig(workers=2, checkpoint_path=journal,
                                  **FAST),
            chunk_gate=AllowThenCancel(2, cancel), cancel_event=cancel)
        assert first.cancelled
        assert not first.degraded
        assert first.completed_chunks < 4

        resumed = run_campaign(
            lv_model, T_SPAN, T_EVAL, lv_batch,
            config=CampaignConfig(workers=2, checkpoint_path=journal,
                                  **FAST))
        assert not resumed.incomplete and not resumed.cancelled
        assert resumed.resumed_chunks == first.completed_chunks
        assert_bit_identical(resumed, serial)


class TestDeadlines:
    def test_sharded_deadline_partial_result(self, lv_model, lv_batch):
        outcome = run_campaign(
            lv_model, T_SPAN, T_EVAL, lv_batch,
            config=CampaignConfig(workers=2, **FAST),
            fault_plan=FaultPlan(deadline_after_chunks=1))
        assert outcome.incomplete
        assert outcome.deadline_hit
        assert outcome.completed_chunks < 4
        assert outcome.pending_mask.any()

    def test_serial_post_chunk_deadline_check(self, lv_model, lv_batch,
                                              monkeypatch):
        # The wall clock jumps past the deadline *during* chunk 0: the
        # post-chunk check must flag it without waiting for (or
        # running) chunk 1.
        from repro.telemetry import clock

        times = iter([0.0, 0.0, 0.0, 10.0, 10.0, 10.0, 10.0, 10.0])
        monkeypatch.setattr(clock, "monotonic",
                            lambda: next(times, 10.0))
        outcome = run_campaign(
            lv_model, T_SPAN, T_EVAL, lv_batch,
            config=CampaignConfig(chunk_size=3, deadline_seconds=5.0))
        assert outcome.deadline_hit
        assert outcome.incomplete
        assert outcome.completed_chunks == 1

    def test_serial_predictive_deadline_check(self, lv_model, lv_batch,
                                              monkeypatch):
        # Chunk 0 takes 2s of a 5s budget. Before chunk 1 the clock
        # reads 4s: one wall-second of budget remains, but no chunk has
        # ever finished in under 2s — the predictive check must stop
        # the campaign *before* starting a chunk doomed to overshoot.
        from repro.telemetry import clock

        times = iter([0.0, 0.0, 0.0, 2.0, 4.0])
        monkeypatch.setattr(clock, "monotonic",
                            lambda: next(times, 4.0))
        outcome = run_campaign(
            lv_model, T_SPAN, T_EVAL, lv_batch,
            config=CampaignConfig(chunk_size=3, deadline_seconds=5.0))
        assert outcome.deadline_hit
        assert outcome.incomplete
        assert outcome.completed_chunks == 1
        assert outcome.pending_mask.sum() == 7


class TestConfigValidation:
    def test_worker_fields_validated(self):
        with pytest.raises(ResilienceError, match="workers"):
            CampaignConfig(workers=-1)
        with pytest.raises(ResilienceError, match="heartbeat_timeout"):
            CampaignConfig(heartbeat_interval=1.0, heartbeat_timeout=0.5)
        with pytest.raises(ResilienceError, match="max_chunk_attempts"):
            CampaignConfig(max_chunk_attempts=0)
        with pytest.raises(ResilienceError, match="chunk_timeout"):
            CampaignConfig(chunk_timeout=0.0)
        with pytest.raises(ResilienceError, match="backoff"):
            CampaignConfig(restart_backoff=-1.0)

    def test_fault_plan_worker_fields_validated(self):
        with pytest.raises(ResilienceError, match="worker_kill_chunks"):
            FaultPlan(worker_kill_chunks=(-1,))
        with pytest.raises(ResilienceError,
                           match="worker_fault_attempts"):
            FaultPlan(worker_fault_attempts=0)
        with pytest.raises(ResilienceError, match="worker_slow_seconds"):
            FaultPlan(worker_slow_seconds=-0.5)

    def test_for_chunk_strips_worker_faults(self):
        plan = FaultPlan(worker_kill_chunks=(0,), worker_hang_chunks=(1,),
                         worker_slow_chunks=(2,))
        local = plan.for_chunk(0, 0, 3)
        assert local.worker_kill_chunks == ()
        assert local.worker_hang_chunks == ()
        assert local.worker_slow_chunks == ()

    def test_fault_accessors_honor_attempt_budget(self):
        plan = FaultPlan(worker_kill_chunks=(5,), worker_fault_attempts=2)
        assert plan.kills_worker(5, 1)
        assert plan.kills_worker(5, 2)
        assert not plan.kills_worker(5, 3)
        assert not plan.kills_worker(4, 1)


class TestFingerprintNumerics:
    def test_resume_with_different_tolerances_raises(self, lv_model,
                                                     lv_batch, tmp_path):
        journal = tmp_path / "campaign.json"
        config = CampaignConfig(chunk_size=3, checkpoint_path=journal)
        run_campaign(lv_model, T_SPAN, T_EVAL, lv_batch, config=config,
                     options=SolverOptions(rtol=1e-6))
        with pytest.raises(ResilienceError, match="different campaign"):
            run_campaign(lv_model, T_SPAN, T_EVAL, lv_batch, config=config,
                         options=SolverOptions(rtol=1e-4))

    def test_resume_with_different_retry_ladder_raises(self, lv_model,
                                                       lv_batch,
                                                       tmp_path):
        from repro.resilience import default_retry_policy

        journal = tmp_path / "campaign.json"
        config = CampaignConfig(chunk_size=3, checkpoint_path=journal)
        run_campaign(lv_model, T_SPAN, T_EVAL, lv_batch, config=config,
                     retry_policy=default_retry_policy(3))
        with pytest.raises(ResilienceError, match="different campaign"):
            run_campaign(lv_model, T_SPAN, T_EVAL, lv_batch, config=config,
                         retry_policy=default_retry_policy(1))

    def test_same_numerics_resume_fine(self, lv_model, lv_batch,
                                       tmp_path):
        journal = tmp_path / "campaign.json"
        config = CampaignConfig(chunk_size=3, checkpoint_path=journal)
        options = SolverOptions(rtol=1e-6)
        first = run_campaign(lv_model, T_SPAN, T_EVAL, lv_batch,
                             config=config, options=options)
        again = run_campaign(lv_model, T_SPAN, T_EVAL, lv_batch,
                             config=config, options=SolverOptions(rtol=1e-6))
        assert again.resumed_chunks == 4
        assert again.result.y.tobytes() == first.result.y.tobytes()


class TestCorruptChunkArchive:
    def test_truncated_chunk_names_file(self, lv_model, lv_batch,
                                        tmp_path):
        journal = tmp_path / "campaign.json"
        config = CampaignConfig(chunk_size=3, checkpoint_path=journal)
        run_campaign(lv_model, T_SPAN, T_EVAL, lv_batch, config=config)
        chunk = tmp_path / "campaign.chunk00002.npz"
        chunk.write_bytes(chunk.read_bytes()[:32])
        with pytest.raises(ResilienceError,
                           match="campaign.chunk00002.npz"):
            run_campaign(lv_model, T_SPAN, T_EVAL, lv_batch, config=config)

    def test_deleting_named_file_reexecutes_chunk(self, lv_model,
                                                  lv_batch, tmp_path,
                                                  serial):
        journal = tmp_path / "campaign.json"
        config = CampaignConfig(chunk_size=3, checkpoint_path=journal)
        run_campaign(lv_model, T_SPAN, T_EVAL, lv_batch, config=config)
        (tmp_path / "campaign.chunk00002.npz").unlink()
        healed = run_campaign(lv_model, T_SPAN, T_EVAL, lv_batch,
                              config=config)
        assert healed.resumed_chunks == 3
        assert healed.metrics.counters["campaign.chunks.executed"] == 1
        assert_bit_identical(healed, serial)
