"""Structural and order-condition tests for the Butcher tableaus."""

from dataclasses import replace

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solvers import (BOGACKI_SHAMPINE_23, CASH_KARP_45, DOPRI5,
                           FEHLBERG_45, TABLEAUS)

ALL = [BOGACKI_SHAMPINE_23, FEHLBERG_45, CASH_KARP_45, DOPRI5]


@pytest.mark.parametrize("tableau", ALL, ids=lambda t: t.name)
class TestStructure:
    def test_structural_validation(self, tableau):
        tableau.validate()

    def test_registry_contains_tableau(self, tableau):
        assert TABLEAUS[tableau.name] is tableau

    def test_error_weights_sum_to_zero(self, tableau):
        assert abs(tableau.e.sum()) < 1e-12


@pytest.mark.parametrize("tableau", ALL, ids=lambda t: t.name)
class TestOrderConditions:
    """Classic rooted-tree order conditions up to order 3."""

    def test_order_1(self, tableau):
        assert tableau.b.sum() == pytest.approx(1.0)

    def test_order_2(self, tableau):
        assert tableau.b.dot(tableau.c) == pytest.approx(0.5)

    def test_order_3(self, tableau):
        assert tableau.b.dot(tableau.c ** 2) == pytest.approx(1.0 / 3.0)
        ac = tableau.a.dot(tableau.c)
        assert tableau.b.dot(ac) == pytest.approx(1.0 / 6.0)


class TestHighOrderConditions:
    @pytest.mark.parametrize("tableau", [FEHLBERG_45, CASH_KARP_45, DOPRI5],
                             ids=lambda t: t.name)
    def test_order_4_quadrature(self, tableau):
        assert tableau.b.dot(tableau.c ** 3) == pytest.approx(0.25)

    @pytest.mark.parametrize("tableau", [FEHLBERG_45, CASH_KARP_45, DOPRI5],
                             ids=lambda t: t.name)
    def test_order_5_quadrature(self, tableau):
        assert tableau.b.dot(tableau.c ** 4) == pytest.approx(0.2)

    def test_dopri5_fsal_row(self):
        """FSAL: the last a-row equals b (the final stage is f(t+h, y1))."""
        assert np.allclose(DOPRI5.a[-1], DOPRI5.b)
        assert DOPRI5.first_same_as_last

    def test_bs23_fsal_row(self):
        assert np.allclose(BOGACKI_SHAMPINE_23.a[-1], BOGACKI_SHAMPINE_23.b)


class TestValidationRaises:
    """Corrupt tableaus are rejected with SolverError (not assert)."""

    def test_wrong_stage_matrix_shape(self):
        broken = replace(DOPRI5, a=DOPRI5.a[:-1])
        with pytest.raises(SolverError, match="stage matrix"):
            broken.validate()

    def test_wrong_node_shape(self):
        broken = replace(DOPRI5, c=DOPRI5.c[:-1])
        with pytest.raises(SolverError, match="nodes"):
            broken.validate()

    def test_row_sum_condition(self):
        broken = replace(DOPRI5, c=DOPRI5.c + 0.1)
        with pytest.raises(SolverError, match="row-sum"):
            broken.validate()

    def test_weights_must_sum_to_one(self):
        broken = replace(DOPRI5, b=DOPRI5.b * 2.0)
        with pytest.raises(SolverError, match="weights sum"):
            broken.validate()

    def test_error_weights_must_sum_to_zero(self):
        e = DOPRI5.e.copy()
        e[0] += 0.5
        broken = replace(DOPRI5, e=e)
        with pytest.raises(SolverError, match="error weights"):
            broken.validate()

    def test_upper_triangle_rejected(self):
        a = DOPRI5.a.copy()
        a[0, -1] = 0.25
        a[0, 0] = -0.25 + DOPRI5.a[0, 0]
        broken = replace(DOPRI5, a=a)
        with pytest.raises(SolverError, match="lower triangular"):
            broken.validate()
