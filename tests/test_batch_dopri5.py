"""Tests for the batched DOPRI5 integrator."""

import numpy as np
import pytest

from repro.gpu import BatchDopri5, BatchedODEProblem
from repro.gpu.batch_result import OK, EXHAUSTED, STIFF
from repro.model import ODESystem, ParameterizationBatch, perturbed_batch
from repro.models import decay_chain, lotka_volterra, robertson
from repro.solvers import ExplicitRungeKutta, SolverOptions
from repro.solvers.tableaus import DOPRI5


def make_problem(model, batch_size=8, seed=0, spread=0.25):
    system = ODESystem.from_model(model)
    batch = perturbed_batch(model.nominal_parameterization(), batch_size,
                            np.random.default_rng(seed), spread)
    return BatchedODEProblem(system, batch), batch


class TestAgainstScalar:
    def test_matches_scalar_dopri5_per_simulation(self):
        model = decay_chain(3)
        problem, batch = make_problem(model, 6)
        options = SolverOptions(rtol=1e-8, atol=1e-12)
        grid = np.linspace(0, 5, 11)
        batched = BatchDopri5(options).solve(problem, (0, 5), grid)
        assert batched.all_success
        scalar = ExplicitRungeKutta(DOPRI5, options)
        for index in range(batch.size):
            fun = problem.system.as_scipy_rhs(batch.rate_constants[index])
            reference = scalar.solve(fun, (0, 5),
                                     batch.initial_states[index], grid)
            assert np.allclose(batched.y[index], reference.y, rtol=1e-6,
                               atol=1e-9)

    def test_oscillatory_dynamics(self):
        model = lotka_volterra()
        problem, _ = make_problem(model, 4, spread=0.05)
        grid = np.linspace(0, 10, 51)
        result = BatchDopri5(SolverOptions(max_steps=50_000)).solve(
            problem, (0, 10), grid)
        assert result.all_success
        prey = result.y[:, :, 0]
        # Lotka-Volterra orbits return near their start.
        assert np.all(prey > 0)


class TestBatchSemantics:
    def test_per_simulation_step_counts_differ(self):
        """Perturbed constants make sims take different step counts."""
        model = lotka_volterra()
        problem, _ = make_problem(model, 8, spread=0.25)
        result = BatchDopri5().solve(problem, (0, 10),
                                     np.linspace(0, 10, 5))
        assert len(np.unique(result.n_steps)) > 1

    def test_save_grid_recorded_for_all(self):
        model = decay_chain(2)
        problem, _ = make_problem(model, 5)
        grid = np.linspace(0, 3, 7)
        result = BatchDopri5().solve(problem, (0, 3), grid)
        assert result.y.shape == (5, 7, model.n_species)
        assert not np.any(np.isnan(result.y))

    def test_grid_without_t0(self):
        model = decay_chain(2)
        problem, _ = make_problem(model, 3)
        grid = np.array([1.0, 2.0])
        result = BatchDopri5().solve(problem, (0, 2), grid)
        assert result.all_success
        assert result.y.shape[1] == 2

    def test_max_steps_marks_exhausted(self):
        model = lotka_volterra()
        problem, _ = make_problem(model, 3)
        result = BatchDopri5(SolverOptions(max_steps=3)).solve(
            problem, (0, 50), np.array([0.0, 50.0]))
        assert np.all(result.status_codes == EXHAUSTED)

    def test_initial_state_override(self):
        model = decay_chain(2)
        problem, batch = make_problem(model, 3)
        custom = batch.initial_states * 2.0
        result = BatchDopri5().solve(problem, (0, 1),
                                     np.array([0.0, 1.0]), custom)
        assert np.allclose(result.y[:, 0, :], custom)

    def test_counters_accumulate(self):
        model = decay_chain(2)
        problem, _ = make_problem(model, 4)
        BatchDopri5().solve(problem, (0, 2), np.linspace(0, 2, 5))
        assert problem.counters.rhs_kernel_launches > 0
        assert problem.counters.rhs_simulation_evaluations > 0


class TestStiffnessAbort:
    def test_robertson_flagged_stiff(self):
        problem, _ = make_problem(robertson(), 4, spread=0.1)
        solver = BatchDopri5(SolverOptions(max_steps=100_000),
                             abort_on_stiffness=True)
        result = solver.solve(problem, (0, 100), np.array([0.0, 100.0]))
        assert np.all(result.status_codes == STIFF)
        # Aborting must be far cheaper than exhausting the budget.
        assert np.all(result.n_steps < 10_000)

    def test_abort_disabled_by_default(self):
        problem, _ = make_problem(robertson(), 2, spread=0.1)
        solver = BatchDopri5(SolverOptions(max_steps=500))
        result = solver.solve(problem, (0, 100), np.array([0.0, 100.0]))
        assert np.all(result.status_codes == EXHAUSTED)

    def test_nonstiff_batch_unaffected(self):
        problem, _ = make_problem(decay_chain(3), 4)
        solver = BatchDopri5(abort_on_stiffness=True)
        result = solver.solve(problem, (0, 5), np.linspace(0, 5, 5))
        assert np.all(result.status_codes == OK)
