"""Tests for the batched RHS binding and kernel counters."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.gpu import BatchedODEProblem, KernelCounters
from repro.model import ODESystem, perturbed_batch


@pytest.fixture
def problem(toy_model):
    system = ODESystem.from_model(toy_model)
    batch = perturbed_batch(toy_model.nominal_parameterization(), 6,
                            np.random.default_rng(0))
    return BatchedODEProblem(system, batch)


class TestBinding:
    def test_shapes(self, problem):
        assert problem.batch_size == 6
        assert problem.n_species == 4
        assert problem.initial_states().shape == (6, 4)

    def test_row_selection_uses_right_constants(self, problem):
        states = problem.initial_states()
        rows = np.array([0, 3, 5])
        selected = problem.fun(np.zeros(3), states[rows], rows)
        full = problem.fun(np.zeros(6), states, np.arange(6))
        assert np.allclose(selected, full[rows])

    def test_jacobian_row_selection(self, problem):
        states = problem.initial_states()
        rows = np.array([1, 4])
        selected = problem.jacobian(np.zeros(2), states[rows], rows)
        full = problem.jacobian(np.zeros(6), states, np.arange(6))
        assert np.allclose(selected, full[rows])

    def test_policy_validation(self, toy_model):
        system = ODESystem.from_model(toy_model)
        batch = toy_model.batch(2)
        with pytest.raises(SolverError):
            BatchedODEProblem(system, batch, policy="ludicrous")

    def test_shape_mismatch_rejected(self, toy_model, chain_model):
        system = ODESystem.from_model(toy_model)
        wrong_batch = chain_model.batch(2)
        with pytest.raises(SolverError):
            BatchedODEProblem(system, wrong_batch)

    def test_subset_shares_counters(self, problem):
        subset = problem.subset(np.array([0, 1]))
        assert subset.counters is problem.counters
        subset.fun(np.zeros(2), subset.initial_states(), np.arange(2))
        assert problem.counters.rhs_kernel_launches == 1


class TestCounters:
    def test_rhs_counting(self, problem):
        states = problem.initial_states()
        problem.fun(np.zeros(6), states, np.arange(6))
        problem.fun(np.zeros(2), states[:2], np.arange(2))
        counters = problem.counters
        assert counters.rhs_kernel_launches == 2
        assert counters.rhs_simulation_evaluations == 8

    def test_jacobian_counting(self, problem):
        states = problem.initial_states()
        problem.jacobian(np.zeros(6), states, np.arange(6))
        assert problem.counters.jacobian_kernel_launches == 1
        assert problem.counters.jacobian_simulation_evaluations == 6

    def test_merge(self):
        first = KernelCounters(rhs_kernel_launches=1,
                               rhs_simulation_evaluations=10,
                               factorizations=2)
        second = KernelCounters(rhs_kernel_launches=3,
                                rhs_simulation_evaluations=5,
                                newton_iterations=7)
        first.merge(second)
        assert first.rhs_kernel_launches == 4
        assert first.rhs_simulation_evaluations == 15
        assert first.factorizations == 2
        assert first.newton_iterations == 7
