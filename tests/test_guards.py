"""Numerical-integrity guards: config, violations, invariant monitor,
projection clamping, in-kernel guards and their engine integration."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (ParameterRange, SweepTarget, endpoint_metric,
                        run_psa_1d, simulate)
from repro.errors import GuardError
from repro.gpu import GUARD, STATUS_NAMES, BatchSimulator
from repro.guards import (GUARD_KINDS, INVARIANT_DRIFT, NEGATIVE_STATE,
                          NON_FINITE, STEP_COLLAPSE, GuardConfig, GuardLog,
                          GuardViolation, InvariantMonitor, KernelGuard,
                          project_nonnegative)
from repro.model import ParameterizationBatch, perturbed_batch
from repro.models import (decay_chain, dimerization, michaelis_menten_cycle,
                          robertson)
from repro.resilience import FaultPlan, default_retry_policy


def replicated_batch(model, size):
    nominal = model.nominal_parameterization()
    return ParameterizationBatch.from_parameterizations([nominal] * size)


class TestGuardConfig:
    def test_defaults_validate(self):
        config = GuardConfig()
        assert config.enabled and config.check_invariants

    def test_invalid_tolerances_rejected(self):
        with pytest.raises(GuardError):
            GuardConfig(invariant_rtol=0.0)
        with pytest.raises(GuardError):
            GuardConfig(invariant_atol=-1.0)
        with pytest.raises(GuardError):
            GuardConfig(negativity_band=-1e-9)

    def test_replace_and_disabled(self):
        config = GuardConfig().replace(clamp_negatives=False)
        assert not config.clamp_negatives and config.check_invariants
        assert not GuardConfig.disabled().enabled


class TestGuardViolations:
    def test_unknown_kind_rejected(self):
        with pytest.raises(GuardError):
            GuardViolation("made-up", 0, 0.0, 1.0)

    def test_status_name_registered(self):
        assert STATUS_NAMES[GUARD] == "guard_violation"

    def test_log_counts_rows_and_roundtrip(self):
        log = GuardLog()
        log.add(GuardViolation(NEGATIVE_STATE, 3, 0.5, -1e-3))
        log.add(GuardViolation(NEGATIVE_STATE, 3, 0.7, -2e-3))
        log.add(GuardViolation(NON_FINITE, 1, 0.1, float("nan")))
        assert log.counts() == {NEGATIVE_STATE: 2, NON_FINITE: 1}
        assert log.rows().tolist() == [1, 3]
        restored = GuardLog.from_dicts(log.to_dicts())
        assert len(restored) == 3
        assert restored.by_kind(NEGATIVE_STATE)[0].row == 3
        assert "negative-state" in log.summary()

    def test_merge_shifts_rows(self):
        left, right = GuardLog(), GuardLog(n_clamped_steps=4)
        right.add(GuardViolation(STEP_COLLAPSE, 2, 1.0, 1e-18))
        left.merge(right, row_offset=10)
        assert left.rows().tolist() == [12]
        assert left.n_clamped_steps == 4

    def test_all_kinds_constructible(self):
        for kind in GUARD_KINDS:
            GuardViolation(kind, 0, 0.0, 0.0)


class TestInvariantExtraction:
    @pytest.mark.parametrize("factory,expected_laws", [
        (robertson, 1),             # A + B + C conserved
        (dimerization, 1),          # A + 2 D conserved
        (michaelis_menten_cycle, 1),  # S + P conserved
        (decay_chain, 1),           # closed chain: total mass conserved
    ])
    def test_curated_model_law_counts(self, factory, expected_laws):
        model = factory()
        laws = model.conservation_law_basis()
        assert laws.shape[0] == expected_laws
        # every law is annihilated by every reaction's net change
        assert np.allclose(model.matrices.net.astype(float) @ laws.T, 0.0,
                           atol=1e-10)

    def test_laws_annihilate_stoichiometry(self):
        model = dimerization()
        laws = model.conservation_law_basis()
        assert np.allclose(model.matrices.net.astype(float) @ laws.T, 0.0,
                           atol=1e-10)

    def test_drift_ratio_clean_vs_biased(self):
        model = dimerization()
        monitor = InvariantMonitor.from_model(model, GuardConfig())
        assert monitor.n_laws == 1
        x0 = np.array([[1.0, 0.0]])
        clean = np.repeat(x0[:, None, :], 5, axis=1)    # constant => exact
        assert monitor.drift_ratios(clean, x0)[0] == 0.0
        biased = clean.copy()
        biased[0, -1, :] += 0.5                          # off the subspace
        assert monitor.drift_ratios(biased, x0)[0] > 1.0

    def test_nan_tails_contribute_no_drift(self):
        model = dimerization()
        monitor = InvariantMonitor.from_model(model, GuardConfig())
        x0 = np.array([[1.0, 0.0]])
        trajectory = np.repeat(x0[:, None, :], 4, axis=1)
        trajectory[0, 2:, :] = np.nan
        assert monitor.drift_ratios(trajectory, x0)[0] == 0.0


class TestProjectionClamp:
    def test_plain_clamp_without_laws(self):
        states = np.array([[1.0, -0.25]])
        assert np.array_equal(project_nonnegative(states),
                              np.array([[1.0, 0.0]]))

    @given(st.lists(st.floats(min_value=0.01, max_value=5.0),
                    min_size=2, max_size=2),
           st.floats(min_value=1e-12, max_value=1e-6))
    def test_clamping_never_increases_conservation_drift(self, x0_list,
                                                         dip):
        """The hypothesis property of the issue: projecting a state with
        a noise-band negative component back to the orthant never
        increases conservation drift — it restores the totals exactly."""
        model = dimerization()
        laws = model.conservation_law_basis()
        x0 = np.array([x0_list])
        reference = x0 @ laws.T
        # a state on the conservation subspace with one component dipped
        # slightly negative (the shape the integrator hands the guard)
        state = x0.copy()
        state[0, 0] = -dip
        state[0, 1] += (x0[0, 0] + dip) / 2.0   # stay on the law subspace
        drift_before = np.abs(state @ laws.T - reference).max()
        projected = project_nonnegative(state, laws, reference)
        drift_after = np.abs(projected @ laws.T - reference).max()
        assert drift_after <= drift_before + 1e-12
        assert drift_after <= 1e-9
        # the correction may reintroduce negativity of at most the
        # clamped magnitude (see project_nonnegative's contract)
        assert projected.min() >= -dip

    def test_projection_restores_totals_exactly(self):
        model = robertson()
        laws = model.conservation_law_basis()
        x0 = np.array([[0.7, 0.2, 0.1]])
        reference = x0 @ laws.T
        state = np.array([[0.7000001, -1e-8, 0.0999999]])
        projected = project_nonnegative(state, laws, reference)
        assert np.allclose(projected @ laws.T, reference, atol=1e-12)


class TestKernelGuardUnit:
    def make_guard(self, config=None, laws=None):
        log = GuardLog()
        x0 = np.array([[1.0, 1.0], [1.0, 1.0]])
        guard = KernelGuard(config or GuardConfig(), log, GUARD, x0, laws)
        return guard, log

    def test_nonfinite_state_deactivates_row(self):
        guard, log = self.make_guard()
        states = np.array([[1.0, np.nan], [1.0, 1.0]])
        status = np.zeros(2, dtype=np.int64)
        guard.after_accept(states, np.array([0, 1]), np.array([0, 1]),
                           np.array([0.1, 0.1]), status)
        assert status.tolist() == [GUARD, 0]
        assert log.counts() == {NON_FINITE: 1}

    def test_material_negative_deactivates_noise_band_clamps(self):
        guard, log = self.make_guard()
        states = np.array([[1.0, -0.5], [1.0, -1e-9]])
        status = np.zeros(2, dtype=np.int64)
        guard.after_accept(states, np.array([0, 1]), np.array([0, 1]),
                           np.array([0.1, 0.1]), status)
        assert status.tolist() == [GUARD, 0]
        assert log.counts() == {NEGATIVE_STATE: 1}
        assert log.n_clamped_steps == 1
        assert states[1].min() >= 0.0

    def test_disabled_guard_is_noop(self):
        guard, log = self.make_guard(config=GuardConfig(enabled=False))
        states = np.array([[1.0, np.nan], [1.0, -0.5]])
        status = np.zeros(2, dtype=np.int64)
        guard.after_accept(states, np.array([0, 1]), np.array([0, 1]),
                           np.array([0.1, 0.1]), status)
        guard.on_step_break(np.array([0]), np.array([0]),
                            np.array([0.1]), np.array([np.nan]), status)
        assert status.tolist() == [0, 0] and not log

    def test_step_break_classification(self):
        guard, log = self.make_guard()
        status = np.full(2, 3, dtype=np.int64)   # integrator said BROKEN
        guard.on_step_break(np.array([0, 1]), np.array([0, 1]),
                            np.array([0.5, 0.5]),
                            np.array([np.nan, 1e-250]), status)
        assert status.tolist() == [GUARD, GUARD]
        assert log.counts() == {NON_FINITE: 1, STEP_COLLAPSE: 1}


class TestEngineIntegration:
    T_EVAL = np.linspace(0.0, 2.0, 9)

    def test_clean_run_logs_nothing(self):
        model = dimerization()
        simulator = BatchSimulator(model, method="dopri5",
                                   guard_config=GuardConfig())
        result = simulator.simulate((0.0, 2.0), self.T_EVAL,
                                    replicated_batch(model, 6))
        assert result.all_success
        assert not simulator.last_report.guard_log
        assert simulator.last_report.guard_log.summary() == "guards: clean"

    @pytest.mark.parametrize("method", ["dopri5", "radau5", "bdf"])
    def test_drift_injection_flags_row_in_every_integrator(self, method):
        model = dimerization()
        simulator = BatchSimulator(
            model, method=method, guard_config=GuardConfig(),
            fault_plan=FaultPlan(drift_rows=(2,), drift_rate=0.5))
        result = simulator.simulate((0.0, 2.0), self.T_EVAL,
                                    replicated_batch(model, 5))
        assert result.status_codes[2] == GUARD
        assert result.statuses()[2] == "guard_violation"
        assert result.success_mask.sum() == 4
        log = simulator.last_report.guard_log
        assert log.rows().tolist() == [2]
        assert log.by_kind(INVARIANT_DRIFT)

    def test_drift_defeats_retry_ladder_into_quarantine(self):
        model = dimerization()
        simulator = BatchSimulator(
            model, method="auto", guard_config=GuardConfig(),
            retry_policy=default_retry_policy(),
            fault_plan=FaultPlan(drift_rows=(1,), drift_rate=0.5))
        result = simulator.simulate((0.0, 2.0), self.T_EVAL,
                                    replicated_batch(model, 4))
        report = simulator.last_report
        assert result.status_codes[1] == GUARD
        assert report.n_recovered_rows == 0
        assert report.quarantine.rows().tolist() == [1]
        record = next(iter(report.quarantine))
        assert record.attempts[0].status == "guard_violation"
        assert all(a.status == "guard_violation" for a in record.attempts)

    def test_guard_rows_use_global_ids_across_launches(self):
        model = dimerization()
        simulator = BatchSimulator(
            model, method="dopri5", max_batch_per_launch=3,
            guard_config=GuardConfig(),
            fault_plan=FaultPlan(drift_rows=(1, 5), drift_rate=0.5))
        result = simulator.simulate((0.0, 2.0), self.T_EVAL,
                                    replicated_batch(model, 7))
        assert np.flatnonzero(result.status_codes == GUARD).tolist() == [1, 5]
        assert simulator.last_report.guard_log.rows().tolist() == [1, 5]

    def test_disabled_config_changes_nothing(self):
        model = dimerization()
        batch = replicated_batch(model, 4)
        plain = BatchSimulator(model, method="dopri5").simulate(
            (0.0, 2.0), self.T_EVAL, batch)
        guarded = BatchSimulator(
            model, method="dopri5",
            guard_config=GuardConfig.disabled()).simulate(
            (0.0, 2.0), self.T_EVAL, batch)
        assert np.array_equal(plain.y, guarded.y, equal_nan=True)

    def test_nan_rhs_is_classified_as_nonfinite_violation(self):
        model = dimerization()
        simulator = BatchSimulator(
            model, method="dopri5", guard_config=GuardConfig(),
            fault_plan=FaultPlan(nan_rows=(0,)))
        result = simulator.simulate((0.0, 2.0), self.T_EVAL,
                                    replicated_batch(model, 3))
        assert result.status_codes[0] == GUARD
        log = simulator.last_report.guard_log
        assert log.by_kind(NON_FINITE)


class TestAnalysisMasking:
    def test_psa1d_masks_drifting_row_like_a_solver_failure(self):
        model = dimerization()
        target = SweepTarget.rate_constant(model, 0,
                                           ParameterRange(1.0, 3.0))
        result = run_psa_1d(model, target, 5, (0.0, 2.0),
                            np.linspace(0, 2, 9),
                            metric=endpoint_metric(model, "D"),
                            retry_policy=default_retry_policy(),
                            guard_config=GuardConfig(),
                            fault_plan=FaultPlan(drift_rows=(2,),
                                                 drift_rate=0.5))
        assert result.quarantine.rows().tolist() == [2]
        assert not np.isfinite(result.metric_values[2])
        assert np.isfinite(np.delete(result.metric_values, 2)).all()

    def test_simulate_facade_forwards_guard_config(self, lv_model):
        batch = perturbed_batch(lv_model.nominal_parameterization(), 4,
                                np.random.default_rng(0))
        result = simulate(lv_model, (0.0, 2.0), np.linspace(0, 2, 5),
                          batch, guard_config=GuardConfig())
        assert result.all_success
        assert not result.engine_report.guard_log
