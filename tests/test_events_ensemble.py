"""Tests for event detection and ensemble statistics."""

import numpy as np
import pytest

from repro.core import (autocorrelation, batch_crossing_counts,
                        crossing_times, find_events, is_bimodal,
                        oscillation_period_from_events, simulate,
                        stationary_histogram, summarize_ensemble,
                        threshold_event)
from repro.errors import AnalysisError
from repro.models import brusselator, decay_chain, schloegl, sir_epidemic
from repro.solvers import SolverOptions
from repro.stochastic import StochasticSimulator

OPTIONS = SolverOptions(max_steps=200_000)


class TestEventDetection:
    def test_sine_crossings_located_precisely(self):
        times = np.linspace(0, 4 * np.pi, 120)
        trajectory = np.sin(times)[:, None]
        rising = crossing_times(times, trajectory, threshold_event(0, 0.0),
                                direction=1)
        # sin starts rising through zero at t = 0 and again at 2 pi.
        assert np.allclose(rising, [0.0, 2 * np.pi], atol=1e-3)
        both = crossing_times(times, trajectory, threshold_event(0, 0.0))
        assert len(both) >= 3

    def test_direction_filter(self):
        times = np.linspace(0, 2 * np.pi, 100)
        trajectory = np.cos(times)[:, None]
        falling = find_events(times, trajectory, threshold_event(0, 0.0),
                              direction=-1)
        rising = find_events(times, trajectory, threshold_event(0, 0.0),
                             direction=1)
        assert len(falling) == 1 and falling[0].direction == -1
        assert len(rising) == 1 and rising[0].direction == 1
        assert falling[0].time == pytest.approx(np.pi / 2, abs=1e-3)
        assert rising[0].time == pytest.approx(3 * np.pi / 2, abs=1e-3)

    def test_no_crossings(self):
        times = np.linspace(0, 1, 10)
        trajectory = np.ones((10, 1))
        assert find_events(times, trajectory,
                           threshold_event(0, 0.0)) == []

    def test_shape_validation(self):
        with pytest.raises(AnalysisError):
            find_events(np.arange(5.0), np.ones((4, 1)),
                        threshold_event(0, 0.0))

    def test_epidemic_threshold_crossings(self):
        """The SIR infection curve crosses 100 once up and once down."""
        grid = np.linspace(0, 200, 401)
        result = simulate(sir_epidemic(), (0, 200), grid, options=OPTIONS)
        index = result.species_index("I")
        events = find_events(grid, result.trajectory(0),
                             threshold_event(index, 100.0))
        assert len(events) == 2
        assert events[0].direction == 1 and events[1].direction == -1
        assert events[0].time < events[1].time

    def test_period_from_events_matches_peak_period(self):
        grid = np.linspace(0, 60, 601)
        result = simulate(brusselator(a=1.0, b=3.0), (0, 60), grid,
                          options=OPTIONS)
        period = oscillation_period_from_events(
            grid, result.trajectory(0), result.species_index("X"))
        # Known Brusselator period at (1, 3) is ~7.2 time units.
        assert period == pytest.approx(7.2, rel=0.1)

    def test_batch_crossing_counts(self):
        times = np.linspace(0, 2 * np.pi, 200)
        batch = np.stack([np.sin(times)[:, None],
                          np.ones((200, 1))])
        counts = batch_crossing_counts(times, batch,
                                       threshold_event(0, 0.0))
        assert counts.tolist()[1] == 0
        assert counts[0] >= 1


class TestEnsembleStatistics:
    @pytest.fixture(scope="class")
    def decay_ensemble(self):
        model = decay_chain(1, rate=1.0, initial=10.0)
        simulator = StochasticSimulator(model, volume=100.0, seed=0)
        result = simulator.simulate((0, 2), np.linspace(0, 2, 21),
                                    n_replicates=200)
        return result

    def test_summary_shapes(self, decay_ensemble):
        summary = summarize_ensemble(decay_ensemble.t,
                                     decay_ensemble.counts)
        assert summary.mean.shape == decay_ensemble.counts.shape[1:]
        assert np.all(summary.variance >= 0)

    def test_pure_death_fano_below_one_for_binomial_survival(self,
                                                             decay_ensemble):
        """Pure-death from a fixed count: survivors are binomial, so
        Fano = 1 - p(survive) < 1."""
        summary = summarize_ensemble(decay_ensemble.t,
                                     decay_ensemble.counts)
        fano_end = summary.fano_factor()[-1, 0]
        survive = summary.mean[-1, 0] / summary.mean[0, 0]
        assert fano_end == pytest.approx(1.0 - survive, abs=0.12)

    def test_needs_two_replicas(self):
        with pytest.raises(AnalysisError):
            summarize_ensemble(np.arange(3.0), np.ones((1, 3, 2)))

    def test_autocorrelation_normalized(self, decay_ensemble):
        lags, correlation = autocorrelation(decay_ensemble.t,
                                            decay_ensemble.counts, 0)
        assert correlation[0] == pytest.approx(1.0)
        assert np.all(np.abs(correlation) <= 1.0 + 1e-9)
        assert lags[1] - lags[0] == pytest.approx(0.1)

    def test_histogram_sums_to_one(self, decay_ensemble):
        edges, probabilities = stationary_histogram(
            decay_ensemble.counts, 0, n_bins=10)
        assert probabilities.sum() == pytest.approx(1.0)
        assert edges.size == 11


class TestBimodality:
    def test_unimodal_histogram_rejected(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(0.0, 1.0, size=(20, 100, 1))
        edges, probabilities = stationary_histogram(samples, 0)
        assert not is_bimodal(edges, probabilities)

    def test_bimodal_histogram_detected(self):
        rng = np.random.default_rng(1)
        low = rng.normal(-3.0, 0.4, size=(10, 100, 1))
        high = rng.normal(3.0, 0.4, size=(10, 100, 1))
        samples = np.concatenate([low, high])
        edges, probabilities = stationary_histogram(samples, 0)
        assert is_bimodal(edges, probabilities)

    def test_schloegl_ensemble_is_bimodal(self):
        """End-to-end: stochastic Schlögl from the separatrix shows the
        two-branch distribution."""
        simulator = StochasticSimulator(schloegl(initial=250.0),
                                        volume=1.0, method="tau-leaping",
                                        seed=5, max_events=2_000_000)
        result = simulator.simulate((0, 400.0),
                                    np.linspace(200.0, 400.0, 11),
                                    n_replicates=12)
        edges, probabilities = stationary_histogram(result.counts, 0,
                                                    n_bins=12,
                                                    settle_fraction=0.0)
        assert is_bimodal(edges, probabilities)
