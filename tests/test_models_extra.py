"""Tests for the additional curated models (extra suite)."""

import numpy as np
import pytest

from repro.core import oscillation_metrics, simulate
from repro.errors import ModelError
from repro.models import (goldbeter_mitotic, oregonator, schloegl,
                          sir_epidemic)
from repro.solvers import SolverOptions
from repro.stochastic import StochasticSimulator

OPTIONS = SolverOptions(max_steps=400_000)


class TestOregonator:
    def test_sustained_relaxation_oscillations(self):
        grid = np.linspace(0, 60, 601)
        result = simulate(oregonator(), (0, 60), grid, options=OPTIONS)
        assert result.all_success
        metrics = oscillation_metrics(grid, result.species("X")[0])
        assert metrics.oscillating

    def test_positive_dynamics(self):
        grid = np.linspace(0, 30, 301)
        result = simulate(oregonator(), (0, 30), grid, options=OPTIONS)
        assert np.all(result.y > -1e-6)


class TestSIR:
    def test_population_conserved(self):
        grid = np.linspace(0, 200, 41)
        result = simulate(sir_epidemic(), (0, 200), grid, options=OPTIONS)
        totals = result.y[0].sum(axis=1)
        assert np.allclose(totals, 1000.0, rtol=1e-8)

    def test_outbreak_when_r0_above_one(self):
        # R0 = 0.3 * 999 / 0.1 ~ 3: the epidemic takes off and burns out.
        grid = np.linspace(0, 200, 201)
        result = simulate(sir_epidemic(), (0, 200), grid, options=OPTIONS)
        infected = result.species("I")[0]
        assert infected.max() > 100.0
        assert infected[-1] < 10.0
        assert result.species("R")[0][-1] > 800.0

    def test_no_outbreak_when_r0_below_one(self):
        model = sir_epidemic(infection_rate=0.05, recovery_rate=0.1)
        grid = np.linspace(0, 200, 41)
        result = simulate(model, (0, 200), grid, options=OPTIONS)
        assert result.species("I")[0].max() < 5.0

    def test_invalid_setup_rejected(self):
        with pytest.raises(ModelError):
            sir_epidemic(initial_infected=0.0)
        with pytest.raises(ModelError):
            sir_epidemic(population=1.0, initial_infected=1.0)


class TestSchloegl:
    def test_bistability_by_construction(self):
        grid = np.array([0.0, 2e5])
        low = simulate(schloegl(initial=100.0), (0, 2e5), grid,
                       options=OPTIONS)
        high = simulate(schloegl(initial=300.0), (0, 2e5), grid,
                        options=OPTIONS)
        assert low.y[0, -1, 0] == pytest.approx(85.0, rel=1e-3)
        assert high.y[0, -1, 0] == pytest.approx(550.0, rel=1e-3)

    def test_separatrix_ordering_validated(self):
        with pytest.raises(ModelError):
            schloegl(low_state=300.0, unstable_state=200.0)

    def test_stochastic_version_runs(self):
        """The count-space Schlögl (volume 1) fluctuates but stays
        near a branch over short horizons."""
        simulator = StochasticSimulator(schloegl(initial=100.0),
                                        volume=1.0, method="ssa", seed=0,
                                        max_events=2_000_000)
        result = simulator.simulate((0, 100.0), np.array([0.0, 100.0]),
                                    n_replicates=5)
        assert result.all_success
        assert np.all(result.counts[:, -1, 0] < 400)

    def test_stochastic_bimodality_from_separatrix(self):
        """Replicas launched at the unstable point split between the
        two branches — the qualitative behaviour the deterministic
        limit cannot show (it commits to one branch). Tau-leaping
        preserves the bistable structure."""
        simulator = StochasticSimulator(schloegl(initial=250.0),
                                        volume=1.0, method="tau-leaping",
                                        seed=5, max_events=2_000_000)
        result = simulator.simulate((0, 400.0), np.array([0.0, 400.0]),
                                    n_replicates=12)
        assert result.all_success
        final = result.counts[:, -1, 0]
        assert np.sum(final < 250) >= 2
        assert np.sum(final >= 250) >= 2
        # Ends sit near the constructed fixed points, not in between.
        assert not np.any((final > 150) & (final < 400))


class TestGoldbeter:
    def test_limit_cycle_period(self):
        """The 1991 parameter set oscillates with a ~25 time-unit
        period."""
        grid = np.linspace(0, 300, 3001)
        result = simulate(goldbeter_mitotic(), (0, 300), grid,
                          options=OPTIONS)
        assert result.all_success
        metrics = oscillation_metrics(grid, result.species("M")[0])
        assert metrics.oscillating
        assert metrics.period == pytest.approx(25.0, rel=0.15)

    def test_conserved_kinase_and_protease_pairs(self):
        grid = np.linspace(0, 100, 101)
        result = simulate(goldbeter_mitotic(), (0, 100), grid,
                          options=OPTIONS)
        m_total = result.species("M")[0] + result.species("Mi")[0]
        p_total = result.species("P")[0] + result.species("Pi")[0]
        assert np.allclose(m_total, 1.0, atol=1e-6)
        assert np.allclose(p_total, 1.0, atol=1e-6)

    def test_fractions_stay_in_unit_interval(self):
        grid = np.linspace(0, 100, 101)
        result = simulate(goldbeter_mitotic(), (0, 100), grid,
                          options=OPTIONS)
        for name in ("M", "Mi", "P", "Pi"):
            values = result.species(name)[0]
            assert np.all(values > -1e-8)
            assert np.all(values < 1.0 + 1e-8)
