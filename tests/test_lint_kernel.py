"""Tests for the kernel vectorization linter (rules KRN001-KRN005).

One positive and one negative snippet per rule, the waiver-pragma
contract, ``lint_callable`` over a live function, and the self-lint
gate: the repo's own shipped batch kernels must stay clean (modulo
explicitly waived findings) — this test IS the vectorization regression
guard the ISSUE asks for.
"""

import textwrap

import pytest

from repro.errors import LintError
from repro.lint import (KERNEL_RULES, lint_callable, lint_file,
                        lint_kernels, lint_source, shipped_kernel_paths)


def findings(source, rule_id):
    report = lint_source(textwrap.dedent(source), "snippet.py")
    return report.by_rule(rule_id)


class TestBatchLoops:
    def test_krn001_range_over_batch_size(self):
        hits = findings("""
            def step(state, batch_size):
                for i in range(batch_size):
                    state[i] = state[i] * 2
        """, "KRN001")
        assert len(hits) == 1
        assert "batch_size" in hits[0].message

    def test_krn001_iterating_row_index_array(self):
        hits = findings("""
            def repair(y, rows):
                for row in rows:
                    y[row] += 1
        """, "KRN001")
        assert hits and hits[0].severity == "error"

    def test_krn001_iterating_flatnonzero(self):
        hits = findings("""
            def clip(y, mask):
                for idx in np.flatnonzero(mask):
                    y[idx] = 0.0
        """, "KRN001")
        assert len(hits) == 1
        assert "flatnonzero" in hits[0].message

    def test_krn001_while_on_batch_extent(self):
        hits = findings("""
            def drain(n_sims, y):
                done = 0
                while done < n_sims:
                    done += 1
        """, "KRN001")
        assert len(hits) == 1

    def test_krn001_silent_on_stage_and_newton_loops(self):
        clean = """
            def integrate(tableau, y, max_iterations):
                for stage in range(1, tableau.n_stages):
                    y = y + stage
                for iteration in range(max_iterations):
                    y = y * 0.5
                while True:
                    break
                return y
        """
        assert not findings(clean, "KRN001")


class TestScalarExtraction:
    def test_krn002_item_in_loop(self):
        hits = findings("""
            def reduce(values, errs):
                for iteration in range(10):
                    worst = errs.max().item()
                return worst
        """, "KRN002")
        assert len(hits) == 1

    def test_krn002_float_subscript_in_comprehension(self):
        hits = findings("""
            def collect(err, active):
                return {i: float(err[i]) for i in active}
        """, "KRN002")
        assert len(hits) == 1

    def test_krn002_silent_outside_loops(self):
        assert not findings("""
            def summary(err):
                return err.max().item()
        """, "KRN002")


class TestNarrowDtypes:
    def test_krn003_dtype_attribute(self):
        hits = findings("""
            def alloc(n):
                return np.zeros(n, dtype=np.float32)
        """, "KRN003")
        assert len(hits) == 1
        assert "float32" in hits[0].message

    def test_krn003_dtype_string_and_astype(self):
        hits = findings("""
            def shrink(y):
                a = np.zeros(3, dtype="float16")
                return y.astype("float32"), a
        """, "KRN003")
        assert len(hits) == 2

    def test_krn003_no_double_report_per_site(self):
        hits = findings("""
            def alloc(n):
                return np.ones(n, dtype=np.float32)
        """, "KRN003")
        assert len(hits) == 1

    def test_krn003_silent_on_float64(self):
        assert not findings("""
            def alloc(n):
                return np.zeros(n, dtype=np.float64)
        """, "KRN003")


class TestViewWrites:
    def test_krn004_write_through_basic_slice_view(self):
        hits = findings("""
            def touch(y):
                head = y[0:3]
                head[0] = 1.0
        """, "KRN004")
        assert len(hits) == 1
        assert "view" in hits[0].message

    def test_krn004_write_through_fancy_copy(self):
        hits = findings("""
            def lost(y, rows):
                chunk = y[rows]
                chunk[0] = 1.0
        """, "KRN004")
        assert len(hits) == 1
        assert "copies" in hits[0].message

    def test_krn004_rebinding_clears_tracking(self):
        assert not findings("""
            def fine(y, rows):
                chunk = y[rows]
                chunk = chunk * 2.0
                chunk[0] = 1.0
        """, "KRN004")

    def test_krn004_direct_write_is_fine(self):
        assert not findings("""
            def fine(y, rows):
                y[rows] = 0.0
        """, "KRN004")


class TestScipyCalls:
    def test_krn005_imported_name(self):
        hits = findings("""
            from scipy.integrate import solve_ivp

            def slow(fun, t_span, y0):
                return solve_ivp(fun, t_span, y0)
        """, "KRN005")
        assert len(hits) == 1
        assert hits[0].severity == "error"

    def test_krn005_module_attribute_call(self):
        hits = findings("""
            import scipy.optimize

            def root(f):
                return scipy.optimize.brentq(f, 0.0, 1.0)
        """, "KRN005")
        assert len(hits) == 1

    def test_krn005_silent_on_vectorized_linalg(self):
        assert not findings("""
            from scipy.linalg import lu_factor

            def decompose(a):
                return lu_factor(a)
        """, "KRN005")

    def test_krn005_silent_on_unrelated_solve_ivp_name(self):
        # A local helper that merely shares the name is not scipy.
        assert not findings("""
            def run(solve_ivp, y):
                return solve_ivp(y)
        """, "KRN005")


class TestWaivers:
    def test_pragma_on_flagged_line(self):
        source = """
            def repair(y, rows):
                for row in rows:  # lint: skip=KRN001 -- tiny failed subset
                    y[row] += 1
        """
        report = lint_source(textwrap.dedent(source), "snippet.py")
        assert not report.by_rule("KRN001")
        assert report.metadata["waived"] == 1

    def test_pragma_on_preceding_line(self):
        source = """
            def repair(y, rows):
                # lint: skip=KRN001 -- tiny failed subset
                for row in rows:
                    y[row] += 1
        """
        report = lint_source(textwrap.dedent(source), "snippet.py")
        assert not report.by_rule("KRN001")
        assert report.metadata["waived"] == 1

    def test_pragma_waives_only_named_rules(self):
        source = """
            def repair(y, rows):
                for row in rows:  # lint: skip=KRN002 -- wrong rule
                    y[row] += 1
        """
        report = lint_source(textwrap.dedent(source), "snippet.py")
        assert report.by_rule("KRN001")
        assert report.metadata["waived"] == 0

    def test_pragma_two_lines_up_does_not_cover(self):
        source = """
            def repair(y, rows):
                # lint: skip=KRN001 -- too far away
                # another comment in between
                for row in rows:
                    y[row] += 1
        """
        report = lint_source(textwrap.dedent(source), "snippet.py")
        assert report.by_rule("KRN001")


class TestStaleWaivers:
    def test_unused_pragma_emits_lnt000(self):
        source = """
            def fine(y):
                # lint: skip=KRN001 -- the loop this excused is gone
                return y * 2
        """
        report = lint_source(textwrap.dedent(source), "snippet.py")
        hits = report.by_rule("LNT000")
        assert len(hits) == 1
        assert hits[0].severity == "warning"
        assert "KRN001" in hits[0].message
        # the listing names the file and pragma line for removal
        assert hits[0].location.startswith("snippet.py:")

    def test_consumed_pragma_is_not_stale(self):
        source = """
            def repair(y, rows):
                for row in rows:  # lint: skip=KRN001 -- tiny subset
                    y[row] += 1
        """
        report = lint_source(textwrap.dedent(source), "snippet.py")
        assert report.by_rule("LNT000") == []

    def test_wrong_rule_pragma_is_stale(self):
        source = """
            def repair(y, rows):
                for row in rows:  # lint: skip=KRN002 -- wrong rule
                    y[row] += 1
        """
        report = lint_source(textwrap.dedent(source), "snippet.py")
        assert report.by_rule("KRN001")  # still reported
        assert len(report.by_rule("LNT000")) == 1

    def test_pragma_example_in_docstring_is_ignored(self):
        source = '''
            def documented(y):
                """Waive with a pragma::

                    # lint: skip=KRN001 -- justification
                """
                return y * 2
        '''
        report = lint_source(textwrap.dedent(source), "snippet.py")
        assert report.findings == []

    def test_shipped_kernels_carry_no_stale_waivers(self):
        report = lint_kernels()
        assert report.by_rule("LNT000") == [], report.render_text()

    def test_deep_waivers_are_not_shallow_business(self):
        source = """
            def fine(y):
                # lint: skip=DET001 -- deep-analyzer waiver
                return y * 2
        """
        report = lint_source(textwrap.dedent(source), "snippet.py")
        assert report.by_rule("LNT000") == []


class TestEntryPoints:
    def test_lint_callable_flags_a_live_function(self):
        def bad_rhs(times, states, rows):
            total = 0.0
            for row in rows:
                total += states[row].sum()
            return total

        report = lint_callable(bad_rhs)
        assert report.by_rule("KRN001")

    def test_lint_callable_rejects_builtins(self):
        with pytest.raises(LintError):
            lint_callable(len)

    def test_lint_source_rejects_broken_syntax(self):
        with pytest.raises(LintError):
            lint_source("def broken(:\n    pass")

    def test_lint_file_rejects_missing_path(self):
        with pytest.raises(LintError):
            lint_file("/nonexistent/kernel.py")


class TestSelfLint:
    def test_shipped_kernels_discovered(self):
        names = {path.name for path in shipped_kernel_paths()}
        assert {"batch_bdf.py", "batch_dopri5.py",
                "batch_radau5.py", "batch_result.py"} <= names

    def test_self_lint_gate(self):
        """The pytest-enforced vectorization gate from the ISSUE: the
        repo's own batch solvers carry no unwaived warning+ finding."""
        report = lint_kernels()
        offending = report.at_or_above("warning")
        assert not offending, report.render_text()

    def test_self_lint_waivers_are_bounded(self):
        # batch_bdf's per-row fallbacks are waived with justifications;
        # a jump in this count means a new scalar loop crept in.
        report = lint_kernels()
        assert report.metadata["waived"] <= 7

    def test_rule_registry_is_consistent(self):
        for rule_id, (severity, description) in KERNEL_RULES.items():
            assert rule_id.startswith("KRN")
            assert severity in ("info", "warning", "error")
            assert description
