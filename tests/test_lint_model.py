"""Tests for the model linter (rules RBM001-RBM009).

Every rule gets one positive fixture (a model built to trip it) and
one negative (a sound model that must stay silent), plus the curated-
model sweep the ISSUE requires: every shipped model lints clean at
warning severity and above.
"""

import numpy as np
import pytest

from repro.errors import LintError
from repro.lint import (MODEL_RULES, STIFFNESS_RISK_DECADES, lint_gate,
                        lint_model, stiffness_risk_score)
from repro.model import Parameterization, ReactionBasedModel
from repro.models import (brusselator, cascade, decay_chain, dimerization,
                          goldbeter_mitotic, hill_switch, lotka_volterra,
                          metabolic_network, michaelis_menten_cycle,
                          oregonator, robertson, schloegl, sir_epidemic)

ALL_CURATED = (brusselator, cascade, lambda: decay_chain(4), dimerization,
               goldbeter_mitotic, hill_switch, lotka_volterra,
               metabolic_network, michaelis_menten_cycle, oregonator,
               robertson, schloegl, sir_epidemic)


def simple_chain():
    model = ReactionBasedModel("chain")
    model.add_species("A", 1.0)
    model.add_species("B", 0.0)
    model.add("A -> B @ 1.0")
    model.add("B -> A @ 0.5")
    return model


class TestRiskScore:
    def test_uniform_rates_score_zero(self):
        assert stiffness_risk_score(np.array([2.0, 2.0, 2.0])) == 0.0

    def test_decades_counted(self):
        score = stiffness_risk_score(np.array([1e-2, 1.0, 1e3]))
        assert score == pytest.approx(5.0)

    def test_nonpositive_and_nonfinite_ignored(self):
        score = stiffness_risk_score(np.array([0.0, np.inf, 1.0, 10.0]))
        assert score == pytest.approx(1.0)

    def test_matrix_input_flattened(self):
        batch = np.array([[1.0, 10.0], [0.1, 1.0]])
        assert stiffness_risk_score(batch) == pytest.approx(2.0)


class TestDeadSpecies:
    def test_rbm001_fires_on_orphan(self):
        model = simple_chain()
        model.add_species("Ghost", 3.0)
        report = lint_model(model)
        findings = report.by_rule("RBM001")
        assert len(findings) == 1
        assert "Ghost" in findings[0].message
        assert findings[0].severity == "warning"

    def test_rbm001_silent_on_wired_network(self):
        assert not lint_model(simple_chain()).by_rule("RBM001")


class TestUnproducible:
    def test_rbm002_fires_on_empty_unreachable_reactant(self):
        model = ReactionBasedModel("starved")
        model.add_species("A", 0.0)
        model.add_species("B", 0.0)
        model.add("A -> B @ 1.0")
        report = lint_model(model)
        assert any("A" in f.location for f in report.by_rule("RBM002"))

    def test_rbm002_silent_when_producible(self):
        model = ReactionBasedModel("fed")
        model.add_species("S", 1.0)
        model.add_species("A", 0.0)
        model.add_species("B", 0.0)
        model.add("S -> A @ 1.0")
        model.add("A -> B @ 1.0")
        assert not lint_model(model).by_rule("RBM002")

    def test_parameterization_override_unstarves(self):
        model = ReactionBasedModel("starved")
        model.add_species("A", 0.0)
        model.add_species("B", 0.0)
        model.add("A -> B @ 1.0")
        seeded = Parameterization(np.array([1.0]), np.array([1.0, 0.0]))
        assert not lint_model(model, seeded).by_rule("RBM002")


class TestUnboundedAccumulation:
    def test_rbm003_fires_on_pure_sink(self):
        model = ReactionBasedModel("sink")
        model.add_species("A", 1.0)
        model.add_species("W", 0.0)
        model.add("A -> A + W @ 1.0")
        report = lint_model(model)
        assert any("W" in f.location for f in report.by_rule("RBM003"))
        assert MODEL_RULES["RBM003"][0] == "info"

    def test_rbm003_silent_when_drained(self):
        model = ReactionBasedModel("drained")
        model.add_species("A", 1.0)
        model.add_species("W", 0.0)
        model.add("A -> A + W @ 1.0")
        model.add("W -> @ 0.1")
        assert not lint_model(model).by_rule("RBM003")


class TestDisconnected:
    def test_rbm004_fires_on_two_islands(self):
        model = ReactionBasedModel("islands")
        model.add_species("A", 1.0)
        model.add_species("B", 0.0)
        model.add_species("C", 1.0)
        model.add_species("D", 0.0)
        model.add("A -> B @ 1.0")
        model.add("C -> D @ 1.0")
        findings = lint_model(model).by_rule("RBM004")
        assert len(findings) == 1
        assert "2 independent components" in findings[0].message

    def test_rbm004_silent_with_custom_law_coupling(self):
        # goldbeter's sub-networks touch only through kinetic-law
        # modifiers; the linter must see those edges.
        assert not lint_model(goldbeter_mitotic()).by_rule("RBM004")


class TestDuplicates:
    def test_rbm005_fires_on_literal_copy(self):
        model = simple_chain()
        model.add("A -> B @ 2.0")
        findings = lint_model(model).by_rule("RBM005")
        assert len(findings) == 1
        assert "silently sum" in findings[0].message

    def test_rbm005_distinguishes_kinetic_laws(self):
        # Same stoichiometry under different laws is legitimate
        # (goldbeter has two C -> 0 degradations, basal and enzymatic).
        assert not lint_model(goldbeter_mitotic()).by_rule("RBM005")


class TestZeroFlux:
    def test_rbm006_fires_and_is_error(self):
        model = ReactionBasedModel("frozen")
        model.add_species("A", 0.0)
        model.add_species("B", 0.0)
        model.add("A -> B @ 1.0")
        findings = lint_model(model).by_rule("RBM006")
        assert len(findings) == 1
        assert findings[0].severity == "error"

    def test_rbm006_silent_when_seeded_by_inflow(self):
        model = ReactionBasedModel("inflow")
        model.add_species("A", 0.0)
        model.add_species("B", 0.0)
        model.add(" -> A @ 1.0")
        model.add("A -> B @ 1.0")
        assert not lint_model(model).by_rule("RBM006")


class TestDegenerateRates:
    def test_rbm007_fires_below_double_precision(self):
        model = ReactionBasedModel("tiny")
        model.add_species("A", 1.0)
        model.add_species("B", 0.0)
        model.add("A -> B @ 1e5")
        model.add("B -> A @ 1e-30")
        findings = lint_model(model).by_rule("RBM007")
        assert len(findings) == 1
        assert "k[1]" in findings[0].message

    def test_rbm007_silent_on_moderate_spread(self):
        assert not lint_model(robertson()).by_rule("RBM007")


class TestEmptyPool:
    def test_rbm008_fires_on_zero_total_cycle(self):
        model = ReactionBasedModel("empty-pool")
        model.add_species("A", 0.0)
        model.add_species("B", 0.0)
        model.add("A -> B @ 1.0")
        model.add("B -> A @ 1.0")
        findings = lint_model(model).by_rule("RBM008")
        assert len(findings) == 1
        assert "A" in findings[0].message and "B" in findings[0].message

    def test_rbm008_silent_on_seeded_pool(self):
        model = simple_chain()  # same cycle, A(0) = 1
        assert not lint_model(model).by_rule("RBM008")


class TestStiffnessRisk:
    def test_rbm009_fires_on_robertson(self):
        report = lint_model(robertson())
        findings = report.by_rule("RBM009")
        assert len(findings) == 1
        assert findings[0].severity == "info"
        assert report.metadata["stiffness_risk_decades"] > \
            STIFFNESS_RISK_DECADES

    def test_rbm009_silent_on_decay_chain(self):
        report = lint_model(decay_chain(4))
        assert not report.by_rule("RBM009")
        assert report.metadata["stiffness_risk_decades"] < \
            STIFFNESS_RISK_DECADES


class TestCuratedModels:
    @pytest.mark.parametrize("factory", ALL_CURATED,
                             ids=lambda f: getattr(f, "__name__", "decay"))
    def test_curated_models_clean_at_warning(self, factory):
        """ISSUE satellite: the shipped models pass their own linter.

        robertson and schloegl do emit RBM009 *info* findings — they are
        stiffness stress tests, the rate spread is the point — but no
        curated model may produce a warning or an error.
        """
        report = lint_model(factory())
        offending = report.at_or_above("warning")
        assert not offending, report.render_text()


class TestGate:
    def test_gate_passes_and_returns_report(self):
        report = lint_gate(dimerization())
        assert "stiffness_risk_decades" in report.metadata

    def test_gate_raises_at_threshold(self):
        model = ReactionBasedModel("frozen")
        model.add_species("A", 0.0)
        model.add_species("B", 0.0)
        model.add("A -> B @ 1.0")
        with pytest.raises(LintError, match="RBM006"):
            lint_gate(model)  # RBM006 is an error-severity finding

    def test_gate_threshold_configurable(self):
        model = simple_chain()
        model.add_species("Ghost", 1.0)  # RBM001 warning only
        lint_gate(model)  # default fail_on="error" passes
        with pytest.raises(LintError, match="RBM001"):
            lint_gate(model, fail_on="warning")


class TestAnalysisHooks:
    def test_psa_lint_hook_blocks_broken_model(self):
        from repro import ParameterRange, SweepTarget, run_psa_1d
        model = ReactionBasedModel("frozen")
        model.add_species("A", 0.0)
        model.add_species("B", 0.0)
        model.add("A -> B @ 1.0")
        target = SweepTarget.rate_constant(
            model, 0, ParameterRange(0.1, 10.0, log=True))
        with pytest.raises(LintError):
            run_psa_1d(model, target, 4, (0.0, 1.0), lint=True)

    def test_sa_lint_hook_passes_sound_model(self):
        from repro import ParameterRange, run_sobol_sa
        model = decay_chain(3)
        result = run_sobol_sa(
            model, species=["X0"],
            ranges=[ParameterRange(0.5, 2.0)],
            output_species="X2", base_samples=8, t_span=(0.0, 1.0),
            bootstrap=10, lint=True)
        assert result.n_simulations > 0

    def test_pe_lint_hook_blocks_broken_model(self):
        from repro import FreeParameter, ParameterEstimation
        model = ReactionBasedModel("frozen")
        model.add_species("A", 0.0)
        model.add_species("B", 0.0)
        model.add("A -> B @ 1.0")
        with pytest.raises(LintError):
            ParameterEstimation(
                model, [FreeParameter(0, 0.1, 10.0)], ["B"],
                np.array([0.0, 1.0]), np.zeros((2, 1)), lint=True)
