"""Unit and property tests for the compiled ODE systems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.model import (Hill, MichaelisMenten, ODESystem,
                         ReactionBasedModel)
from repro.synth import generate_symmetric

from .conftest import finite_difference_jacobian


class TestFlux:
    def test_mass_action_flux_values(self, toy_system, toy_model):
        state = np.array([[1.0, 2.0, 0.5, 0.3]])
        constants = toy_model.rate_constants()
        flux = toy_system.flux(state, constants)[0]
        # A+B -> C: 0.5 * 1 * 2; C -> A+B: 0.2 * 0.5; 2A -> D: 0.1 * 1;
        # 0 -> A: 0.01; D -> 0: 0.3 * 0.3.
        assert flux == pytest.approx([1.0, 0.1, 0.1, 0.01, 0.09])

    def test_second_order_same_species_uses_square(self):
        model = ReactionBasedModel("sq")
        model.add_species("A", 3.0)
        model.add("2 A -> B @ 2.0")
        system = ODESystem.from_model(model)
        flux = system.flux(np.array([[3.0, 0.0]]), np.array([2.0]))
        assert flux[0, 0] == pytest.approx(2.0 * 9.0)

    def test_high_order_generic_path(self):
        model = ReactionBasedModel("cubic")
        model.add_species("X", 2.0)
        model.add_species("Y", 3.0)
        model.add("2 X + Y -> 3 X @ 0.5")
        system = ODESystem.from_model(model)
        flux = system.flux(np.array([[2.0, 3.0, 0.0][:2]]), np.array([0.5]))
        assert flux[0, 0] == pytest.approx(0.5 * 4.0 * 3.0)

    def test_michaelis_menten_flux(self):
        model = ReactionBasedModel("mm")
        model.add_species("S", 1.0)
        model.add("S -> P", rate_constant=2.0, law=MichaelisMenten(km=0.5))
        system = ODESystem.from_model(model)
        flux = system.flux(np.array([[1.0, 0.0]]), np.array([2.0]))
        assert flux[0, 0] == pytest.approx(2.0 * 1.0 / 1.5)

    def test_hill_flux_half_saturation(self):
        model = ReactionBasedModel("hill")
        model.add_species("S", 0.5)
        model.add("S -> P", rate_constant=4.0, law=Hill(km=0.5, n=3.0))
        system = ODESystem.from_model(model)
        flux = system.flux(np.array([[0.5, 0.0]]), np.array([4.0]))
        assert flux[0, 0] == pytest.approx(2.0)   # half of Vmax at S = km

    def test_batched_constants_broadcast(self, toy_system, toy_model):
        constants = toy_model.rate_constants()
        states = np.tile([1.0, 2.0, 0.5, 0.3], (3, 1))
        shared = toy_system.flux(states, constants)
        stacked = toy_system.flux(states, np.tile(constants, (3, 1)))
        assert np.allclose(shared, stacked)


class TestPolicies:
    @pytest.mark.parametrize("policy", ["hybrid", "coarse", "fine"])
    def test_policies_agree_on_toy_model(self, toy_system, toy_model,
                                         policy):
        rng = np.random.default_rng(0)
        states = rng.random((5, toy_model.n_species))
        constants = toy_model.rate_constants()
        expected = toy_system.rhs(states, constants, "hybrid")
        assert np.allclose(toy_system.rhs(states, constants, policy),
                           expected)

    def test_unknown_policy_rejected(self, toy_system, toy_model):
        with pytest.raises(ModelError):
            toy_system.rhs(np.ones((1, 4)), toy_model.rate_constants(),
                           policy="warp")

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_policies_agree_on_random_models(self, seed):
        """All three granularity policies compute identical derivatives."""
        model = generate_symmetric(8, seed=seed)
        system = ODESystem.from_model(model)
        rng = np.random.default_rng(seed)
        states = rng.random((3, model.n_species))
        constants = model.rate_constants()
        hybrid = system.rhs(states, constants, "hybrid")
        assert np.allclose(system.rhs(states, constants, "coarse"), hybrid,
                           rtol=1e-12, atol=1e-12)
        assert np.allclose(system.rhs(states, constants, "fine"), hybrid,
                           rtol=1e-12, atol=1e-12)


class TestRHS:
    def test_rhs_matches_matrix_formula(self, toy_system, toy_model):
        """dX/dt = (B - A)^T (K o X^A), the paper's Eq. 2."""
        rng = np.random.default_rng(1)
        state = rng.random(toy_model.n_species)
        constants = toy_model.rate_constants()
        matrices = toy_model.matrices
        monomials = np.prod(
            state[None, :] ** matrices.reactants, axis=1)
        expected = matrices.net.T @ (constants * monomials)
        assert np.allclose(toy_system.rhs_single(state, constants), expected)

    def test_conservation_respected_by_rhs(self, dimer_model):
        system = ODESystem.from_model(dimer_model)
        laws = dimer_model.conservation_law_basis()
        rng = np.random.default_rng(2)
        states = rng.random((6, dimer_model.n_species))
        derivative = system.rhs(states, dimer_model.rate_constants())
        assert np.allclose(derivative @ laws.T, 0.0, atol=1e-12)

    def test_scipy_adapters(self, toy_system, toy_model):
        constants = toy_model.rate_constants()
        fun = toy_system.as_scipy_rhs(constants)
        jac = toy_system.as_scipy_jacobian(constants)
        state = np.array([1.0, 2.0, 0.5, 0.3])
        assert np.allclose(fun(0.0, state),
                           toy_system.rhs_single(state, constants))
        assert jac(0.0, state).shape == (4, 4)


class TestJacobian:
    def test_jacobian_matches_finite_differences(self, toy_system,
                                                 toy_model):
        constants = toy_model.rate_constants()
        state = np.array([1.0, 2.0, 0.5, 0.3])
        analytic = toy_system.jacobian_single(state, constants)
        numeric = finite_difference_jacobian(
            lambda x: toy_system.rhs_single(x, constants), state)
        assert np.allclose(analytic, numeric, atol=1e-6)

    def test_jacobian_with_generic_and_saturating_terms(self):
        model = ReactionBasedModel("mixed")
        model.add_species("X", 0.7)
        model.add_species("Y", 0.4)
        model.add_species("Z", 0.2)
        model.add("2 X + Y -> 3 X @ 0.5")                  # order 3
        model.add("Y -> Z", rate_constant=1.5,
                  law=MichaelisMenten(km=0.3))
        model.add("Z -> X", rate_constant=2.0, law=Hill(km=0.4, n=2.0))
        system = ODESystem.from_model(model)
        constants = model.rate_constants()
        state = np.array([0.7, 0.4, 0.2])
        analytic = system.jacobian_single(state, constants)
        numeric = finite_difference_jacobian(
            lambda x: system.rhs_single(x, constants), state)
        assert np.allclose(analytic, numeric, atol=1e-5)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_jacobian_property_on_random_models(self, seed):
        """Analytic Jacobians match finite differences for random RBMs."""
        model = generate_symmetric(6, seed=seed)
        system = ODESystem.from_model(model)
        rng = np.random.default_rng(seed + 1)
        state = rng.random(model.n_species) + 0.1
        constants = model.rate_constants()
        analytic = system.jacobian_single(state, constants)
        numeric = finite_difference_jacobian(
            lambda x: system.rhs_single(x, constants), state)
        scale = np.max(np.abs(numeric)) + 1.0
        assert np.allclose(analytic, numeric, atol=1e-4 * scale)

    def test_batched_jacobian_rows_independent(self, toy_system, toy_model):
        rng = np.random.default_rng(3)
        states = rng.random((4, toy_model.n_species))
        constants = toy_model.rate_constants()
        batched = toy_system.jacobian(states, constants)
        for b in range(4):
            single = toy_system.jacobian_single(states[b], constants)
            assert np.allclose(batched[b], single)

    def test_jacobian_operator_is_deterministic(self, toy_system,
                                                toy_model):
        rng = np.random.default_rng(4)
        states = rng.random((2, toy_model.n_species))
        constants = toy_model.rate_constants()
        first = toy_system.jacobian(states, constants)
        second = toy_system.jacobian(states, constants)
        assert np.array_equal(first, second)
