"""Model exchange: SBML subset <-> BioSimWare-style folder.

Demonstrates the interoperability layer: the stiff Robertson benchmark
is serialized to an SBML-subset document, converted into the
simulator's native folder format (together with a ready-to-run sweep
batch), read back, and shown to produce bit-identical dynamics.

Run:  python examples/model_exchange.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import SolverOptions, perturbed_batch, simulate
from repro.io import (read_batch, read_model, read_t_vector,
                      sbml_to_biosimware, write_model, write_sbml)
from repro.models import robertson


def main() -> None:
    model = robertson()
    options = SolverOptions(max_steps=100_000)
    grid = np.array([0.0, 1e-2, 1.0, 1e2, 1e4])

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)

        # SBML round trip.
        sbml_path = write_sbml(model, tmp / "robertson.xml")
        print(f"wrote SBML document      : {sbml_path.name} "
              f"({sbml_path.stat().st_size} bytes)")
        folder = sbml_to_biosimware(sbml_path, tmp / "robertson")
        print(f"converted to folder      : "
              f"{sorted(p.name for p in folder.iterdir())}")

        # Ship a sweep batch with the model, BioSimWare-style.
        batch = perturbed_batch(model.nominal_parameterization(), 16,
                                np.random.default_rng(0))
        write_model(model, folder, batch=batch, t_vector=grid)
        loaded_model = read_model(folder)
        loaded_batch = read_batch(folder)
        loaded_grid = read_t_vector(folder)
        print(f"reloaded model           : N={loaded_model.n_species}, "
              f"M={loaded_model.n_reactions}, "
              f"batch={loaded_batch.size} parameterizations")

        # Dynamics through the round trip are identical.
        original = simulate(model, (0, 1e4), grid, batch, options=options)
        reloaded = simulate(loaded_model, (0, 1e4), loaded_grid,
                            loaded_batch, options=options)
        deviation = np.max(np.abs(original.y - reloaded.y))
        print(f"max trajectory deviation : {deviation:.2e}")
        assert deviation < 1e-12
        print("round trip preserved the dynamics exactly")


if __name__ == "__main__":
    main()
