"""Resilient campaigns: retry escalation, quarantine, crash resume.

A realistic large sweep never finishes cleanly: some parameter points
are unintegrable, the machine gets preempted, the time budget runs out.
This example walks the full degradation ladder on a PSA-2D map of the
Lotka-Volterra model using deterministic fault injection:

1. a persistent fault (NaN right-hand side for two rows) climbs the
   dopri5 -> radau5 -> bdf retry ladder and lands in the quarantine
   log, while the map renders the dead cells as '?';
2. a transient launch failure is recovered by the first retry rung —
   nothing is lost and nothing is quarantined;
3. a mid-campaign crash is resumed from the JSON checkpoint journal,
   reproducing the uninterrupted map bit-for-bit;
4. an injected deadline degrades the campaign to a partial result
   instead of raising.

Run:  python examples/resilient_campaign.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (CampaignConfig, FaultPlan, ParameterRange, SweepTarget,
                   default_retry_policy, run_campaign, simulate)
from repro.core import endpoint_metric, run_psa_2d
from repro.errors import CampaignInterrupted
from repro.model import perturbed_batch
from repro.models import lotka_volterra

GRID = 6
T_SPAN = (0.0, 4.0)
T_EVAL = np.linspace(*T_SPAN, 17)


def quarantine_demo(model) -> None:
    print("== 1. persistent fault -> retry ladder -> quarantine ==")
    target_x = SweepTarget.rate_constant(model, 0, ParameterRange(0.5, 1.5))
    target_y = SweepTarget.initial_concentration(model, "Y2",
                                                 ParameterRange(2.0, 8.0))
    psa = run_psa_2d(model, target_x, target_y, GRID, GRID, T_SPAN, T_EVAL,
                     metric=endpoint_metric(model, "Y1"),
                     retry_policy=default_retry_policy(),
                     fault_plan=FaultPlan(nan_rows=(8, 27)))
    print(f"retry ladder: {default_retry_policy().describe()}")
    print(psa.quarantine.summary())
    print(psa.render_map())
    print()


def recovery_demo(model, batch) -> None:
    print("== 2. transient launch failure -> recovered by retry ==")
    result = simulate(model, T_SPAN, T_EVAL, batch,
                      retry_policy=default_retry_policy(),
                      fault_plan=FaultPlan(fail_launches=(0,)))
    report = result.engine_report
    print(f"retried {report.n_retried_rows} row-attempts, recovered "
          f"{report.n_recovered_rows}/{batch.size}; "
          f"all_success={result.all_success}, "
          f"quarantined={result.n_quarantined}")
    print()


def resume_demo(model, batch, journal: Path) -> None:
    print("== 3. mid-campaign crash -> resume from journal ==")
    config = CampaignConfig(chunk_size=8, checkpoint_path=journal)
    reference = run_campaign(model, T_SPAN, T_EVAL, batch,
                             config=CampaignConfig(chunk_size=8))
    try:
        run_campaign(model, T_SPAN, T_EVAL, batch, config=config,
                     fault_plan=FaultPlan(crash_after_launches=2))
    except CampaignInterrupted as error:
        print(f"crashed: {error} (journal: {error.checkpoint_path})")
    resumed = run_campaign(model, T_SPAN, T_EVAL, batch, config=config)
    identical = np.array_equal(resumed.result.y, reference.result.y,
                               equal_nan=True)
    print(f"resumed: {resumed.summary()}")
    print(f"bit-for-bit identical to the uninterrupted run: {identical}")
    print()


def deadline_demo(model, batch) -> None:
    print("== 4. deadline -> graceful partial result ==")
    partial = run_campaign(model, T_SPAN, T_EVAL, batch,
                           config=CampaignConfig(chunk_size=8),
                           fault_plan=FaultPlan(deadline_after_chunks=2))
    print(f"{partial.summary()}; "
          f"{int(partial.pending_mask.sum())} row(s) never started")


def main() -> None:
    model = lotka_volterra()
    rng = np.random.default_rng(1)
    batch = perturbed_batch(model.nominal_parameterization(), 32, rng)

    quarantine_demo(model)
    recovery_demo(model, batch)
    with tempfile.TemporaryDirectory() as tmp:
        resume_demo(model, batch, Path(tmp) / "campaign.json")
    deadline_demo(model, batch)


if __name__ == "__main__":
    main()
