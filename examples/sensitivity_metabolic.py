"""Sobol sensitivity analysis of a metabolic network with isoforms.

Reproduces the paper family's SA workflow: the initial concentrations
of the dominant hexokinase isoform (HK2) and its enzyme-substrate
complexes are Saltelli-sampled, every design point is simulated in one
batch, and first-/total-order Sobol indices quantify how much each
species drives the ribose-5-phosphate (R5P) read-out.

Run:  python examples/sensitivity_metabolic.py
"""

import time

import numpy as np

from repro import ParameterRange, SolverOptions, run_sobol_sa
from repro.models import (SA_OUTPUT_SPECIES, SA_TARGET_SPECIES,
                          metabolic_network)

BASE_SAMPLES = 128          # Saltelli design: 128 * (3 + 2) = 640 sims


def main() -> None:
    model = metabolic_network()
    print(f"model: {model.name}  N={model.n_species} species, "
          f"M={model.n_reactions} reactions")
    print(f"targets: initial concentrations of {SA_TARGET_SPECIES}")
    print(f"read-out: final {SA_OUTPUT_SPECIES} after 5 time units\n")

    started = time.perf_counter()
    result = run_sobol_sa(
        model,
        species=SA_TARGET_SPECIES,
        ranges=[ParameterRange(1e-6, 2e-4, log=True)] * 3,
        output_species=SA_OUTPUT_SPECIES,
        base_samples=BASE_SAMPLES,
        t_span=(0.0, 5.0),
        t_eval=np.linspace(0.0, 5.0, 11),
        options=SolverOptions(max_steps=100_000),
        bootstrap=100,
        seed=0,
    )
    elapsed = time.perf_counter() - started

    print(f"{result.n_simulations} simulations in {elapsed:.2f} s "
          f"({result.n_simulations / elapsed:.0f} sims/s)\n")
    print("Sobol indices (95% confidence half-widths):")
    print(result.table())
    print("\nmost influential targets (by total-order index):")
    for label, total in result.ranking():
        print(f"  {label:20s} ST = {total:.3f}")


if __name__ == "__main__":
    main()
