"""Quickstart: build a reaction-based model and simulate a batch.

Demonstrates the three-step workflow of the library:

1. define an RBM (species + reactions with kinetic constants),
2. generate a batch of perturbed parameterizations (the unit of work a
   parameter-space analysis dispatches),
3. simulate the whole batch in one call on the GPU-style engine and
   inspect the trajectories.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ReactionBasedModel, perturbed_batch, simulate
from repro.bench import format_table


def main() -> None:
    # 1. An enzymatic production loop with a degradation drain.
    model = ReactionBasedModel("quickstart")
    model.add_species("S", 10.0)      # substrate
    model.add_species("E", 1.0)       # enzyme
    model.add("S + E -> P + E @ 0.4")     # catalyzed conversion
    model.add("P -> 0 @ 0.15")            # product decay
    model.add("0 -> S @ 0.5")             # substrate feed
    print(model.summary())
    print()

    # 2. 64 parameterizations: kinetic constants perturbed +-25 %
    #    log-uniformly around the nominal values.
    batch = perturbed_batch(model.nominal_parameterization(), 64,
                            np.random.default_rng(seed=1))

    # 3. One batched launch simulates all 64 in parallel.
    grid = np.linspace(0.0, 25.0, 26)
    result = simulate(model, (0.0, 25.0), grid, batch)

    print(f"engine       : {result.engine}")
    print(f"batch size   : {result.batch_size}")
    print(f"all success  : {result.all_success}")
    print(f"methods used : {sorted(set(result.raw.methods()))}")
    print(f"wall clock   : {result.elapsed_seconds * 1e3:.1f} ms")
    print()

    # Mean and spread of the product P across the batch.
    product = result.species("P")
    rows = [(f"{t:5.1f}", f"{product[:, i].mean():.4f}",
             f"{product[:, i].std():.4f}")
            for i, t in enumerate(grid[::5])]
    print(format_table(["time", "mean P", "std P"], rows))


if __name__ == "__main__":
    main()
