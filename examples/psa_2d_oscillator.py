"""PSA-2D: oscillation-amplitude map of the Brusselator.

The flagship analysis of the paper family: sweep two parameters of an
oscillatory model on a grid, simulate every point as one batch, and map
where sustained oscillations live. The Brusselator has the analytic
Hopf boundary b = 1 + a^2, so the computed map can be checked by eye
against theory (the printed '#' region should sit above the parabola).

Also reports how many simulations the batched engine completes in the
time the sequential LSODA loop needs for its first few — the "time
budget" comparison the paper family runs on its PSA-2D workload.

Run:  python examples/psa_2d_oscillator.py
"""

import time

import numpy as np

from repro import (ParameterRange, SolverOptions, SweepTarget,
                   amplitude_metric, run_psa_2d)
from repro.core import SequentialSimulator
from repro.core.psa import build_sweep_batch
from repro.models import brusselator, oscillates

GRID = 12           # 12 x 12 = 144 simulations
T_END = 60.0


def main() -> None:
    model = brusselator()
    options = SolverOptions(max_steps=100_000)
    target_a = SweepTarget.rate_constant(model, 0,
                                         ParameterRange(0.4, 1.8))
    target_b = SweepTarget.rate_constant(model, 2,
                                         ParameterRange(0.4, 5.5))
    grid = np.linspace(0.0, T_END, 301)

    started = time.perf_counter()
    psa = run_psa_2d(model, target_a, target_b, GRID, GRID, (0.0, T_END),
                     grid, metric=amplitude_metric(model, "X"),
                     options=options)
    batched_seconds = time.perf_counter() - started
    print(f"batched engine: {GRID * GRID} simulations in "
          f"{batched_seconds:.2f} s\n")

    print("oscillation-amplitude map  (# oscillating, . steady; "
          "| marks the analytic Hopf boundary b = 1 + a^2)")
    print("      a:", "  ".join(f"{a:4.2f}" for a in psa.values_x))
    for j in reversed(range(GRID)):
        b_value = psa.values_y[j]
        cells = []
        for i in range(GRID):
            observed = "#" if psa.metric_map[i, j] > 0 else "."
            boundary = "|" if abs(b_value - (1 + psa.values_x[i] ** 2)) \
                < 0.25 else " "
            cells.append(f"  {observed}{boundary}  ")
        print(f"b={b_value:4.2f} " + "".join(cells))

    agreement = sum(
        (psa.metric_map[i, j] > 0) == oscillates(psa.values_x[i],
                                                 psa.values_y[j])
        for i in range(GRID) for j in range(GRID))
    print(f"\nagreement with the analytic boundary: "
          f"{agreement}/{GRID * GRID} cells")

    # Time-budget comparison against the sequential LSODA loop.
    batch = build_sweep_batch(
        model, [target_a, target_b],
        np.stack(np.meshgrid(psa.values_x, psa.values_y,
                             indexing="ij"), axis=-1).reshape(-1, 2))
    sequential = SequentialSimulator(model, options, "lsoda")
    result = sequential.simulate((0.0, T_END), grid, batch,
                                 time_budget_seconds=batched_seconds)
    completed = sum(s == "success" for s in result.statuses())
    print(f"in the same {batched_seconds:.2f} s, the sequential LSODA "
          f"loop completed {completed}/{GRID * GRID} simulations")


if __name__ == "__main__":
    main()
