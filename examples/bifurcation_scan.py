"""Bifurcation scan and screening of the Brusselator.

Three analyses on one oscillator, all batched:

1. a Morris elementary-effects screening ranks which constants drive
   the long-run X concentration (cheap, r (D+1) simulations);
2. a one-parameter bifurcation scan over b combines the steady-state
   solver (Newton + stability) with amplitude measurement and brackets
   the Hopf point — analytically at b = 1 + a^2 = 2;
3. the PSA-2D ASCII heat map renders the amplitude landscape.

Run:  python examples/bifurcation_scan.py
"""

import numpy as np

from repro import (ParameterRange, SolverOptions, SweepTarget,
                   amplitude_metric, run_psa_2d)
from repro.core import run_bifurcation_scan, run_morris_screening
from repro.models import brusselator

OPTIONS = SolverOptions(max_steps=200_000)


def main() -> None:
    model = brusselator(a=1.0)

    # 1. Morris screening of all four constants.
    targets = [SweepTarget.rate_constant(model, i,
                                         ParameterRange(0.5, 2.0))
               for i in range(model.n_reactions)]
    screening = run_morris_screening(
        model, targets, output_species="X", n_trajectories=12,
        t_span=(0.0, 40.0), t_eval=np.linspace(0, 40, 81),
        options=OPTIONS)
    print("Morris screening of the Brusselator constants "
          f"({screening.n_simulations} simulations):")
    print(screening.table())
    print()

    # 2. Bifurcation scan over the conversion rate b.
    target_b = SweepTarget.rate_constant(model, 2,
                                         ParameterRange(1.0, 3.5))
    scan = run_bifurcation_scan(model, target_b, "X", 11, (0.0, 80.0),
                                options=OPTIONS)
    print("bifurcation scan over b (analytic Hopf at b = 2):")
    print(scan.table())
    print(f"Hopf bracketed in: {scan.hopf_intervals()}\n")

    # 3. Amplitude heat map over (a, b).
    target_a = SweepTarget.rate_constant(model, 0,
                                         ParameterRange(0.4, 1.8))
    target_b2 = SweepTarget.rate_constant(model, 2,
                                          ParameterRange(0.4, 5.5))
    psa = run_psa_2d(model, target_a, target_b2, 14, 14, (0.0, 60.0),
                     np.linspace(0, 60, 301),
                     metric=amplitude_metric(model, "X"),
                     options=OPTIONS)
    print("amplitude heat map (the bright region sits above "
          "b = 1 + a^2):")
    print(psa.render_map())


if __name__ == "__main__":
    main()
