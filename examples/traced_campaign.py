"""Telemetry: hierarchical tracing and kernel metrics end to end.

Where does a campaign's wall-clock actually go — compiling kernels,
stepping, dense output, merging? And how many steps, Newton iterations
and retries did the batch really take? This example instruments the
full stack:

1. a traced :class:`~repro.gpu.BatchSimulator` run shows the span
   hierarchy (launch -> retry rung -> kernel phases) and the typed
   metrics registry on the engine report;
2. a checkpointed campaign is crashed by fault injection and resumed —
   both runs append into *one* trace file that still validates as a
   single well-formed tree;
3. the trace is exported as a Chrome ``trace_event`` document,
   loadable in ``chrome://tracing`` or https://ui.perfetto.dev.

The same recording is available without code via the CLI::

    python -m repro trace record MODEL --out trace.jsonl
    python -m repro trace export trace.jsonl --out trace.json

Run:  python examples/traced_campaign.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (CampaignConfig, FaultPlan, Tracer, default_retry_policy,
                   read_trace_jsonl, run_campaign, validate_trace,
                   write_chrome_trace)
from repro.errors import CampaignInterrupted
from repro.gpu import BatchSimulator
from repro.model import perturbed_batch
from repro.models import lotka_volterra
from repro.telemetry import render_summary

T_SPAN = (0.0, 5.0)
T_EVAL = np.linspace(*T_SPAN, 21)


def traced_engine_demo(model, batch) -> None:
    print("== 1. span hierarchy + kernel metrics of one engine run ==")
    tracer = Tracer()
    simulator = BatchSimulator(model, max_batch_per_launch=8,
                               retry_policy=default_retry_policy(),
                               fault_plan=FaultPlan(fail_launches=(0,)),
                               tracer=tracer)
    simulator.simulate(T_SPAN, T_EVAL, batch)
    for span in tracer.spans:
        print(f"{span.duration * 1e3:9.3f} ms  {span.span_id}")
    print()
    print(simulator.last_report.metrics.render())
    print()


def crash_resume_demo(model, batch, workdir: Path) -> Path:
    print("== 2. crash, resume, one coherent trace ==")
    trace_path = workdir / "campaign_trace.jsonl"
    config = CampaignConfig(chunk_size=8,
                            checkpoint_path=workdir / "journal.json")
    try:
        run_campaign(model, T_SPAN, T_EVAL, batch, config=config,
                     fault_plan=FaultPlan(crash_after_launches=2),
                     telemetry=trace_path)
    except CampaignInterrupted as crash:
        print(f"injected crash: {crash}")
    resumed = run_campaign(model, T_SPAN, T_EVAL, batch, config=config,
                           telemetry=trace_path)
    print(resumed.summary())
    spans = read_trace_jsonl(trace_path)
    problems = validate_trace(spans)
    print(f"trace validates: {not problems} "
          f"({len(spans)} spans, {len(problems)} problems)")
    print()
    print(render_summary(spans))
    print()
    print(resumed.metrics.render())
    print()
    return trace_path


def export_demo(trace_path: Path) -> None:
    print("== 3. Chrome trace export ==")
    out = trace_path.with_suffix(".json")
    write_chrome_trace(read_trace_jsonl(trace_path), out)
    print(f"wrote {out} — load it in chrome://tracing or "
          "https://ui.perfetto.dev")


def main() -> None:
    model = lotka_volterra()
    rng = np.random.default_rng(11)
    batch = perturbed_batch(model.nominal_parameterization(), 32, rng,
                            spread=0.1)
    traced_engine_demo(model, batch)
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = crash_resume_demo(model, batch, Path(tmp))
        export_demo(trace_path)


if __name__ == "__main__":
    main()
