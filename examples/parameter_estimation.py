"""Parameter estimation of a kinase cascade with FST-PSO.

The paper family's PE workflow: given "observed" dynamics (here:
synthetic data generated from known ground-truth constants), a Fuzzy
Self-Tuning PSO searches log-space for kinetic constants whose
simulated dynamics match the observations. Every swarm iteration is
one batched simulation launch — the workload the accelerated engine is
built for.

Run:  python examples/parameter_estimation.py
"""

import time

import numpy as np

from repro import FreeParameter, ParameterEstimation, synthetic_target
from repro.models import OBSERVED_SPECIES, PARAMETER_NAMES, TRUE_CONSTANTS, cascade


def main() -> None:
    # Ground truth and synthetic observations.
    truth = cascade(TRUE_CONSTANTS)
    times, observed = synthetic_target(truth, OBSERVED_SPECIES, (0.0, 8.0),
                                       n_points=25)
    print(f"observed species : {OBSERVED_SPECIES}")
    print(f"observation grid : {times.size} points over [0, 8]\n")

    # Start from a deliberately wrong parameterization and free the
    # first four constants.
    wrong = cascade(tuple(0.2 * k for k in TRUE_CONSTANTS))
    free = [FreeParameter(i, 1e-2, 1e2) for i in range(4)]
    estimation = ParameterEstimation(wrong, free, OBSERVED_SPECIES, times,
                                     observed)

    started = time.perf_counter()
    result = estimation.estimate("fstpso", swarm_size=32, n_iterations=40,
                                 seed=2)
    elapsed = time.perf_counter() - started

    print(f"swarm evaluations : {result.n_simulations} simulations in "
          f"{elapsed:.1f} s ({result.n_simulations / elapsed:.0f} sims/s)")
    print(f"final fitness     : {result.fitness:.5f} "
          "(mean relative deviation from the observations)\n")
    print(result.constants_table(true_values=TRUE_CONSTANTS[:4],
                                 names=PARAMETER_NAMES[:4]))
    print("\nfitness convergence (best per iteration):")
    history = result.optimization.converged_history
    for i in range(0, len(history), 8):
        print(f"  iteration {i:3d}: {history[i]:.5f}")
    print(f"  iteration {len(history) - 1:3d}: {history[-1]:.5f}")


if __name__ == "__main__":
    main()
