"""Concurrency-safety static analysis (`repro lint --conc`).

Self-applies the concurrency analyzer to the installed package (clean
against the committed EMPTY baseline), then seeds a deliberately
broken toy campaign service — a coroutine that runs a whole blocking
campaign on the event-loop thread, a supervisor that swallows
``asyncio.CancelledError``, a shared counter written from the loop
and a worker thread without a lock, and a bare ``acquire`` whose
exception edge leaks the lock — and watches the ``CNC`` findings
fire. Finishes with the in-code waiver pragma and the stale-waiver
``LNT000`` meta-check.
"""

import tempfile
import textwrap
from pathlib import Path

from repro.lint import CONC_RULES, iter_rules, lint_conc


def show_registry():
    print("=== conc rule registry ===")
    conc = [rule for rule in iter_rules() if rule.family == "conc"]
    for rule in conc:
        print(f"  {rule.rule_id}  {rule.severity:<8} {rule.summary}")
    assert len(conc) == len(CONC_RULES)


def self_apply():
    print("\n=== self-application ===")
    report = lint_conc()
    print(report.render_text())
    print(f"files analyzed : {len(report.metadata['files'])}")
    print(f"waived         : {report.metadata['waived']} "
          f"(in-code pragmas; the committed baseline is empty)")


def seed(root: Path, relpath: str, source: str) -> Path:
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def broken_toy_service(root: Path):
    print("\n=== seeded broken service ===")
    seed(root, "service/toy.py", """
        import threading

        from repro.resilience import run_campaign


        class Stats:
            def __init__(self):
                self.completed = 0

            def bump(self):
                self.completed += 1        # no lock: CNC005


        def worker(stats):
            stats.bump()


        async def handle_submit(model, t_span, stats):
            # a full blocking campaign on the loop thread: CNC001
            result = run_campaign(model, t_span)
            stats.bump()
            thread = threading.Thread(target=worker, args=(stats,))
            thread.start()
            return result


        async def supervise(job):
            try:
                await job()
            except BaseException:          # swallows cancel: CNC003
                pass


        _LOCK = threading.Lock()


        def flush(journal):
            _LOCK.acquire()                # leak on exception: CNC009
            journal.write()
            _LOCK.release()
    """)
    report = lint_conc(sorted(root.rglob("*.py")), root=root)
    for finding in report.findings:
        print(f"  {finding.render()}")
    fired = {finding.rule_id for finding in report.findings}
    assert {"CNC001", "CNC003", "CNC005", "CNC009"} <= fired


def waivers(root: Path):
    print("\n=== waivers and staleness ===")
    path = seed(root, "service/waived.py", """
        import threading

        _LOCK = threading.Lock()


        def flush(journal):
            _LOCK.acquire()  # lint: skip=CNC009 -- released by journal
            journal.write(on_done=_LOCK.release)


        def benign():  # lint: skip=CNC006 -- excused wait is long gone
            return 1
    """)
    report = lint_conc([path], root=root)
    print(f"  waived: {report.metadata['waived']} finding(s)")
    for finding in report.by_rule("LNT000"):
        print(f"  {finding.render()}")
    assert report.by_rule("LNT000"), "the stale pragma must surface"


def main():
    show_registry()
    self_apply()
    with tempfile.TemporaryDirectory() as scratch:
        broken_toy_service(Path(scratch) / "toy")
        waivers(Path(scratch) / "waivers")
    print("\nall concurrency-lint demonstrations passed")


if __name__ == "__main__":
    main()
