"""Rule-based modeling: combinatorial network expansion.

The large reaction networks this simulator targets are usually derived
from compact rule-based descriptions (the paper family's
autophagy/translation switch: 7 molecule types, 29 rules -> 173
species, 6581 reactions). This example builds a multisite
phosphorylation rule model, expands it to closure at several site
counts to show the exponential blow-up, and then simulates the derived
large-scale RBM on the batched engine — the exact workload the
fine-grained parallelization exists for.

Run:  python examples/rule_expansion.py
"""

import time

import numpy as np

from repro import SolverOptions, perturbed_batch, simulate
from repro.bench import format_table
from repro.rules import multisite_cascade


def main() -> None:
    print("expansion growth (16 rules at n=8, distributive kinase):")
    rows = []
    for n_sites in (2, 4, 6, 8):
        rule_model = multisite_cascade(n_sites)
        started = time.perf_counter()
        flat = rule_model.expand()
        elapsed = time.perf_counter() - started
        rows.append((n_sites, len(rule_model.rules), flat.n_species,
                     flat.n_reactions, f"{elapsed * 1e3:.1f} ms"))
    print(format_table(
        ["sites", "rules", "species", "reactions", "expansion"], rows))

    print("\nordered (processive) kinase for comparison — reachability "
          "collapses the network:")
    ordered = multisite_cascade(8, ordered=True).expand()
    print(f"  8 sites, ordered: {ordered.n_species} species, "
          f"{ordered.n_reactions} reactions (staircase states only)\n")

    # Simulate the largest derived network as a parameter sweep batch.
    model = multisite_cascade(8).expand()
    batch = perturbed_batch(model.nominal_parameterization(), 32,
                            np.random.default_rng(0))
    grid = np.linspace(0.0, 5.0, 11)
    started = time.perf_counter()
    result = simulate(model, (0.0, 5.0), grid, batch,
                      options=SolverOptions(max_steps=100_000))
    elapsed = time.perf_counter() - started
    print(f"simulated the derived {model.n_species}-species / "
          f"{model.n_reactions}-reaction RBM, 32-parameterization batch, "
          f"in {elapsed:.2f} s ({set(result.statuses())})")

    top = "S_" + "_".join(f"s{i}p" for i in range(8))
    occupancy = result.species(top)[:, -1]
    print(f"fully-phosphorylated fraction at t=5: "
          f"mean {occupancy.mean():.4f}, spread "
          f"[{occupancy.min():.4f}, {occupancy.max():.4f}] "
          "across the perturbed batch")


if __name__ == "__main__":
    main()
