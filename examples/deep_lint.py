"""Dataflow-level determinism & contract analysis (`repro.lint.deep`).

Self-applies the deep analyzer to the installed package (clean against
the committed baseline), then seeds a scratch tree with the classic
regressions the rules exist for — the width-dependent ``tensordot``
stage combination, an unseeded RNG draw on the campaign path, wall
clock flowing into a result fingerprint, a dropped status handler —
and watches DET/CON findings fire. Finishes with the baseline ratchet:
an accepted finding is subtracted, and once the defect is fixed the
leftover baseline entry resurfaces as an ``LNT001`` staleness warning.
"""

import tempfile
import textwrap
from pathlib import Path

from repro.lint import (DeepConfig, iter_rules, lint_deep,
                        render_rule_table, write_baseline)


def show_registry():
    print("=== rule registry ===")
    print(render_rule_table())
    deep = [rule for rule in iter_rules() if rule.family == "deep"]
    print(f"({len(deep)} deep rules; every rule carries a doc "
          f"paragraph — see `repro lint --list-rules --format json`)")


def self_apply():
    print("\n=== self-application ===")
    report = lint_deep()
    print(report.render_text())
    print(f"files analyzed : {len(report.metadata['files'])}")
    print(f"baselined      : {report.metadata.get('baselined', 0)} "
          f"(the committed baseline is empty — zero accepted debt)")


def seed(root: Path, relpath: str, source: str) -> Path:
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def seeded_regressions(root: Path):
    print("\n=== seeded regressions ===")
    seed(root, "gpu/batch_demo.py", """
        import numpy as np

        def combine_stages(weights, stages):
            # the PR-3 regression: BLAS contraction over the batch
            # axis rounds differently per launch width
            return np.tensordot(weights, stages, axes=(0, 0))
    """)
    seed(root, "resilience/driver.py", """
        import numpy as np
        import time, hashlib

        def run_campaign(batch):
            rng = np.random.default_rng()      # unseeded on hot path
            jitter = rng.standard_normal(batch.shape[0])
            stamp = time.time()                 # wall clock ...
            tag = hashlib.sha256(str(stamp).encode())  # ... hashed
            return jitter, tag.hexdigest()
    """)
    seed(root, "status.py", """
        STATUS_NAMES = {DROPPED: "dropped"}
        DROPPED = 7
    """)
    report = lint_deep(sorted(root.rglob("*.py")), root=root)
    for finding in report.findings:
        print(f"  {finding.render()}")
    fired = {finding.rule_id for finding in report.findings}
    assert {"DET001", "DET004", "DET005", "CON001"} <= fired


def baseline_ratchet(root: Path):
    print("\n=== baseline ratchet ===")
    kernel = seed(root, "gpu/batch_legacy.py", """
        import numpy as np

        def combine(weights, stages):
            return np.dot(weights, stages)
    """)
    files = [kernel]
    dirty = lint_deep(files, root=root)
    baseline = root / "baseline.json"
    count = write_baseline(dirty, baseline)
    print(f"accepted {count} finding(s) into {baseline.name}")
    accepted = lint_deep(files, root=root, baseline_path=baseline)
    print(f"with baseline  : {len(accepted.findings)} finding(s), "
          f"{accepted.metadata['baselined']} baselined")
    # Fix the defect; the baseline entry now matches nothing and the
    # ratchet reports it: a baseline may only shrink.
    kernel.write_text("def combine(w, s):\n    return w[0] * s[0]\n")
    stale = lint_deep(files, root=root, baseline_path=baseline)
    for finding in stale.by_rule("LNT001"):
        print(f"  {finding.render()}")


def stale_waivers(root: Path):
    print("\n=== stale waivers (CON004) ===")
    waived = seed(root, "gpu/batch_waived.py", """
        import numpy as np

        def combine(weights, stages):
            # lint: skip=DET001 -- the loop this excused is gone
            return (weights[:, None] * stages).sum(axis=0)
    """)
    report = lint_deep([waived], root=root,
                       config=DeepConfig(kernel_globs=("gpu/*.py",)))
    for finding in report.by_rule("CON004"):
        print(f"  {finding.render()}")


def main():
    show_registry()
    self_apply()
    with tempfile.TemporaryDirectory() as scratch:
        seeded_regressions(Path(scratch) / "regressions")
        baseline_ratchet(Path(scratch) / "ratchet")
        stale_waivers(Path(scratch) / "waivers")
    print("\ndone.")


if __name__ == "__main__":
    main()
