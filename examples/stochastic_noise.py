"""Stochastic vs deterministic simulation: intrinsic noise and volume.

Runs the dimerization module with the exact Gillespie SSA at several
system volumes and compares the ensembles against the deterministic
(ODE) limit: the means converge to the ODE trajectory and the relative
fluctuations shrink like 1/sqrt(Omega). Also shows tau-leaping
compressing thousands of exact events into a handful of leaps at large
populations.

Run:  python examples/stochastic_noise.py
"""

import time

import numpy as np

from repro import simulate
from repro.bench import format_table
from repro.models import dimerization
from repro.stochastic import StochasticSimulator


def main() -> None:
    model = dimerization(bind=2.0, unbind=1.0, initial=1.0)
    grid = np.linspace(0.0, 4.0, 21)
    deterministic = simulate(model, (0.0, 4.0), grid)
    ode_final = deterministic.y[0, -1, 0]
    print(f"model: {model.name}; deterministic A(4) = {ode_final:.4f}\n")

    rows = []
    for volume in (20.0, 200.0, 2000.0):
        simulator = StochasticSimulator(model, volume=volume, method="ssa",
                                        seed=0)
        ensemble = simulator.simulate((0.0, 4.0), grid, n_replicates=200)
        mean_final = ensemble.ensemble_mean()[-1, 0]
        std_final = ensemble.ensemble_std()[-1, 0]
        rows.append((f"{volume:g}",
                     f"{mean_final:.4f}",
                     f"{abs(mean_final - ode_final):.4f}",
                     f"{std_final / max(mean_final, 1e-12):.4f}",
                     f"{ensemble.n_events.mean():.0f}"))
    print(format_table(
        ["volume", "SSA mean A(4)", "|mean - ODE|",
         "rel. noise", "events/replica"], rows))
    print("\nnoise shrinks ~ 1/sqrt(volume); the mean converges to the "
          "ODE limit.\n")

    # tau-leaping acceleration at large populations.
    volume = 20_000.0
    for method in ("ssa", "tau-leaping"):
        simulator = StochasticSimulator(model, volume=volume, method=method,
                                        seed=1)
        started = time.perf_counter()
        result = simulator.simulate((0.0, 4.0), grid, n_replicates=10)
        elapsed = time.perf_counter() - started
        work = (result.n_events + result.n_leaps).mean()
        print(f"{method:12s} @ volume {volume:g}: {elapsed:6.2f} s, "
              f"{work:9.0f} steps/replica, "
              f"mean A(4) = {result.ensemble_mean()[-1, 0]:.4f}")


if __name__ == "__main__":
    main()
