"""Observability: live /metrics, per-tenant SLOs, calibration.

What does operating the campaign service actually look like? This
example runs the full loop an operator would:

1. **calibrate** — probe launches fit a
   :class:`~repro.telemetry.CalibrationReport` (predicted vs observed
   launch cost), which the server then uses for admission;
2. **serve + storm** — a real TCP server with two tenants: ``prod``
   (tight SLO: 99% of jobs, under 30 s) and ``research`` (loose SLO),
   with scheduler-level fault injection and a few hopeless deadlines
   thrown in so the error budgets actually burn;
3. **scrape** — plain HTTP ``GET /metrics`` against the same port the
   job protocol runs on, exactly what Prometheus (or ``repro top``)
   would fetch, including per-tenant burn-rate series and breach
   counters.

The same views are available without code::

    python -m repro calibrate MODEL --out calib.json
    python -m repro serve --calibration calib.json --slo-target 0.99
    python -m repro top --once

Run:  python examples/monitored_service.py
"""

import asyncio
import tempfile
import threading
from pathlib import Path

from repro import FaultPlan, TenantSLO
from repro.io import write_model
from repro.models import lotka_volterra
from repro.service import Client, ServiceConfig, scrape_metrics
from repro.service.server import serve_async
from repro.telemetry import parse_prometheus_text
from repro.telemetry.calibration import calibrate_workload

T_SPAN = (0.0, 2.0)


def calibrate_demo(model, workdir: Path) -> Path:
    print("== 1. perfmodel calibration ==")
    table = calibrate_workload(model, t_span=T_SPAN, widths=(8, 16),
                               repeats=2)
    report = table.fit()
    print(report.render())
    path = report.save(workdir / "calib.json")
    print(f"saved -> {path}\n")
    return path


def storm(model_folder: Path, host: str, port: int) -> None:
    with Client(host, port, timeout=120.0) as client:
        jobs = []
        for _ in range(4):
            jobs.append(client.submit(str(model_folder), t_span=T_SPAN,
                                      tenant="prod", chunk_size=16))
        for index in range(4):
            # Half the research jobs carry deadlines they cannot make.
            doomed = index % 2 == 1
            jobs.append(client.submit(
                str(model_folder), t_span=T_SPAN, tenant="research",
                chunk_size=16,
                deadline_seconds=1.0e-3 if doomed else None))
        outcomes: dict = {}
        for job_id in jobs:
            job = client.wait(job_id, timeout=120)
            key = (job["tenant"], job["state"])
            outcomes[key] = outcomes.get(key, 0) + 1
        for (tenant, state), count in sorted(outcomes.items()):
            print(f"  {tenant:<9} {state:<10} x{count}")


def scrape_demo(host: str, port: int) -> None:
    print("\n== 3. the /metrics exposition ==")
    text = scrape_metrics(host, port)
    samples = parse_prometheus_text(text)
    print(f"{len(text.splitlines())} lines, {len(samples)} metric "
          f"families; highlights:")
    wanted = ("repro_service_slo_burn_rate",
              "repro_service_slo_breaches_total",
              "repro_live_job_outcomes_total",
              "repro_service_jobs_faults_total",
              "repro_kernel_steps_accepted_total",
              "repro_live_job_latency_seconds")
    for line in text.splitlines():
        if line.startswith(wanted):
            print(f"  {line}")


def main() -> None:
    model = lotka_volterra()
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        calibration_path = calibrate_demo(model, workdir)
        model_folder = write_model(model, workdir / "lv")

        print("== 2. two-tenant storm with faults and SLOs ==")
        config = ServiceConfig(
            max_running_jobs=2,
            slos={"prod": TenantSLO(target=0.99,
                                    latency_objective_seconds=30.0),
                  "research": TenantSLO(target=0.7)},
            calibration_path=str(calibration_path))
        # Kill the third admitted job's first attempt: the supervisor
        # retries it, and the fault shows up in the metrics.
        faults = FaultPlan(sched_kill_jobs=(2,))
        bound = {}
        ready = threading.Event()

        def on_ready(addr):
            bound["addr"] = addr
            ready.set()

        thread = threading.Thread(
            target=lambda: asyncio.run(
                serve_async("127.0.0.1", 0, config=config,
                            ready=on_ready, fault_plan=faults)),
            daemon=True)
        thread.start()
        ready.wait(15)
        host, port = bound["addr"]
        print(f"serving on {host}:{port} "
              f"(metrics at http://{host}:{port}/metrics)")
        storm(model_folder, host, port)
        scrape_demo(host, port)
        with Client(host, port) as client:
            client.shutdown()
        thread.join(15)
    print("\n(point `repro top --once` at a live server for the "
          "rendered view)")


if __name__ == "__main__":
    main()
