"""Static analysis of the model zoo (`repro.lint`).

Lints every curated model with the structural rules RBM001-RBM009,
shows what the linter catches on a deliberately broken model, runs the
kernel vectorization self-lint (KRN001-KRN005) over the shipped batch
solvers, and demonstrates the router's stiffness-risk prefilter: a
benign batch skips the Jacobian power-iteration probe entirely.
"""

import numpy as np

from repro import ReactionBasedModel, stiffness_risk_score
from repro.errors import LintError
from repro.gpu import BatchSimulator
from repro.lint import lint_gate, lint_kernels, lint_model
from repro.models import (brusselator, decay_chain, dimerization,
                          goldbeter_mitotic, lotka_volterra, robertson,
                          schloegl)
from repro.model import perturbed_batch


def lint_the_zoo():
    print("=== model zoo ===")
    factories = (brusselator, lambda: decay_chain(4), dimerization,
                 goldbeter_mitotic, lotka_volterra, robertson, schloegl)
    for factory in factories:
        report = lint_model(factory())
        risk = report.metadata["stiffness_risk_decades"]
        print(f"{report.subject:28s} {len(report)} finding(s), "
              f"stiffness risk {risk:4.1f} decades")
        for finding in report.findings:
            print(f"    {finding.render()}")


def lint_a_broken_model():
    print("\n=== a deliberately broken model ===")
    model = ReactionBasedModel("broken-demo")
    model.add_species("A", 1.0)
    model.add_species("B", 0.0)
    model.add_species("X", 0.0)       # consumed but never produced
    model.add_species("Ghost", 2.0)   # referenced by nothing
    model.add("A -> B @ 1.0")
    model.add("A -> B @ 2.0")         # duplicate: fluxes silently sum
    model.add("X -> B @ 5.0")         # can never fire
    print(lint_model(model).render_text())

    # lint_gate is what run_psa_1d(..., lint=True) calls internally.
    try:
        lint_gate(model)
    except LintError as error:
        print(f"\nlint_gate refuses the sweep:\n  {error}")


def self_lint_kernels():
    print("\n=== kernel self-lint (gpu/batch_*.py) ===")
    print(lint_kernels().render_text())


def router_prefilter_demo():
    print("\n=== router prefilter ===")
    for factory, label in ((lambda: decay_chain(4), "decay chain"),
                           (robertson, "Robertson")):
        model = factory()
        batch = perturbed_batch(model.nominal_parameterization(), 32,
                                np.random.default_rng(0))
        risk = stiffness_risk_score(batch.rate_constants)
        engine = BatchSimulator(model)
        engine.simulate((0.0, 1.0), np.array([0.0, 1.0]), batch)
        decision = engine.last_report.routing[0]
        probe = "skipped" if decision.probe_skipped else "ran"
        print(f"{label:12s}: risk {risk:4.1f} decades -> "
              f"power-iteration probe {probe}")


if __name__ == "__main__":
    lint_the_zoo()
    lint_a_broken_model()
    self_lint_kernels()
    router_prefilter_demo()
