"""Numerical-integrity guards and memory-pressure degradation.

A batch that *finishes* is not necessarily *right*: a row can drift off
its conservation manifold, go negative, or blow past the device memory
when the sweep is scaled up. This example drills the guard subsystem on
models with derived conservation laws, using deterministic fault
injection:

1. conservation laws are extracted from the stoichiometric left null
   space — nothing is declared by hand;
2. an injected RHS bias (invisible to step-error control) is caught by
   the invariant monitor, defeats the whole retry ladder, and lands in
   quarantine as a typed ``invariant-drift`` violation;
3. a PSA over a drifting batch masks the poisoned cell exactly like a
   solver failure;
4. an injected over-budget launch is split by the memory governor and
   re-merged bit-identically to the unsplit run.

Run:  python examples/guarded_campaign.py
"""

import numpy as np

from repro import (BatchSimulator, FaultPlan, GuardConfig, MemoryGovernor,
                   ParameterRange, SweepTarget, default_retry_policy)
from repro.core import endpoint_metric, run_psa_1d
from repro.model import perturbed_batch
from repro.models import dimerization, robertson

T_SPAN = (0.0, 4.0)
T_EVAL = np.linspace(*T_SPAN, 17)


def law_demo(model) -> None:
    print(f"== 1. derived conservation laws ({model.name}) ==")
    laws = model.conservation_law_basis()
    net = model.matrices.net.astype(float)
    for i, law in enumerate(laws):
        weights = ", ".join(f"{w:+.3f} {name}" for w, name in
                            zip(law, model.species.names))
        print(f"law {i}: {weights} = const "
              f"(max |S.w| = {np.abs(net @ law).max():.2e})")
    print()


def drift_demo(model, batch) -> None:
    print("== 2. injected drift -> invariant monitor -> quarantine ==")
    simulator = BatchSimulator(model, method="dopri5",
                               guard_config=GuardConfig(),
                               retry_policy=default_retry_policy(),
                               fault_plan=FaultPlan(drift_rows=(3,),
                                                    drift_rate=0.5))
    result = simulator.simulate(T_SPAN, T_EVAL, batch)
    report = simulator.last_report
    print(f"statuses: {result.statuses()}")
    print(report.guard_log.summary())
    print(report.quarantine.summary())
    print()


def masking_demo(model) -> None:
    print("== 3. drifting row masked from a PSA sweep ==")
    target = SweepTarget.rate_constant(model, 0, ParameterRange(0.5, 2.0))
    psa = run_psa_1d(model, target, 8, T_SPAN, T_EVAL,
                     metric=endpoint_metric(model, model.species.names[0]),
                     guard_config=GuardConfig(),
                     retry_policy=default_retry_policy(),
                     fault_plan=FaultPlan(drift_rows=(5,), drift_rate=0.5))
    cells = ["?" if not np.isfinite(v) else f"{v:.2f}"
             for v in psa.metric_values]
    print(f"metric row: {' '.join(cells)}")
    print(f"quarantined rows: {psa.quarantine.rows()}")
    print()


def governor_demo(model, batch) -> None:
    print("== 4. memory pressure -> split launch, bit-identical ==")
    baseline = BatchSimulator(model, method="dopri5").simulate(
        T_SPAN, T_EVAL, batch)
    governed = BatchSimulator(
        model, method="dopri5", memory_governor=MemoryGovernor(),
        fault_plan=FaultPlan(oom_launches=(0,), oom_fit_rows=5))
    result = governed.simulate(T_SPAN, T_EVAL, batch)
    for event in governed.last_report.memory_events:
        print(event.describe())
    identical = np.array_equal(baseline.y, result.y, equal_nan=True)
    print(f"bit-identical to the unsplit run: {identical}")


def main() -> None:
    model = dimerization()
    rng = np.random.default_rng(4)
    batch = perturbed_batch(model.nominal_parameterization(), 16, rng)

    law_demo(robertson())
    law_demo(model)
    drift_demo(model, batch)
    masking_demo(model)
    governor_demo(model, batch)


if __name__ == "__main__":
    main()
